"""Setup shim for environments without the wheel package (offline PEP 660
editable installs need it); `python setup.py develop` works regardless."""
from setuptools import setup

setup()
