"""Bench: regenerate Table 3 (memory performance vs miss penalty)."""

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_table3(benchmark, settings):
    result = run_once(benchmark, run_experiment, "table3", settings)
    print()
    print(result)
    slopes = result.data["cpr_slopes"]
    sizes = sorted(int(k) for k in slopes)
    # "For small caches, with their high miss ratios, the cycles per
    # reference is a strong function of the miss penalty": the
    # sensitivity falls monotonically with cache size.
    values = [slopes[str(s)] for s in sizes]
    assert values == sorted(values, reverse=True)
    # Cycles/reference rises with the penalty within every size class.
    cells = result.data["cells"]
    by_size = {}
    for key, row in cells.items():
        size, penalty = key.split("@")
        by_size.setdefault(size, []).append(
            (int(penalty), row["cycles_per_reference"])
        )
    for rows in by_size.values():
        rows.sort()
        cprs = [c for _p, c in rows]
        assert cprs == sorted(cprs)
