"""Bench: regenerate Figure 3-1 (miss and traffic ratios vs size)."""

import numpy as np

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_fig3_1(benchmark, settings):
    result = run_once(benchmark, run_experiment, "fig3_1", settings)
    print()
    print(result)
    miss = np.array(result.data["read_miss_ratio"])
    # Larger caches are better, with diminishing improvements.
    assert (np.diff(miss) < 0).all()
    assert -np.diff(miss)[-1] < -np.diff(miss)[0]
    # The two write-traffic curves are ordered: counting every word of
    # a dirty victim exceeds counting only the dirty words.
    full = np.array(result.data["write_traffic_ratio_full"])
    dirty = np.array(result.data["write_traffic_ratio_dirty"])
    assert (full >= dirty).all()
    # RISC traces show lower miss rates than VAX traces, and the
    # instruction-side gap is the larger one (paper: 29-46% vs 11.5-18%).
    family = result.data["family"]
    if len(family) == 2:
        assert family["risc"]["load_miss_ratio"] < family["vax"]["load_miss_ratio"]
        assert (
            family["risc"]["ifetch_miss_ratio"]
            < family["vax"]["ifetch_miss_ratio"]
        )
