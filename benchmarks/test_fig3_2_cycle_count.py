"""Bench: regenerate Figure 3-2 (cycle counts vs size and cycle time)."""

import numpy as np

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_fig3_2(benchmark, settings):
    result = run_once(benchmark, run_experiment, "fig3_2", settings)
    print()
    print(result)
    counts = np.array(result.data["normalized_cycles"])
    # Cycle counts fall as the clock slows (the paper's "illusion of
    # improved performance") and as caches grow.
    assert (np.diff(counts, axis=1) <= 1e-9).all()
    assert (np.diff(counts, axis=0) <= 1e-9).all()
    # The spread across the experiment exceeds the spread at the
    # smallest cache (paper: 3.2x vs 1.5x).
    assert result.data["spread_total"] > result.data["spread_smallest"] > 1.1
    # Quantization: the read penalty steps 8 -> 9 cycles at the 56 ns
    # boundary.
    penalties = result.data["read_penalties"]
    if 56.0 in penalties and 60.0 in penalties:
        assert penalties[56.0] == 9 and penalties[60.0] == 8
