"""Bench: regenerate Figure 5-2 (exec time vs block size and memory)."""

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_fig5_2(benchmark, settings):
    result = run_once(benchmark, run_experiment, "fig5_2", settings)
    print()
    print(result)
    # "Assuming a reasonable choice of block size, the execution time
    # only doubles across the entire range of memory systems" — small
    # impact compared with the speed/size axes.
    assert 1.2 < result.data["memory_range_spread"] < 3.0
    # Slower memories are never faster, block size held at each
    # memory's own best.
    def parse(key):
        latency, rate = key.split("cyc@")
        return int(latency), float(rate)

    best = {parse(k): v for k, v in result.data["best_exec"].items()}
    fastest_memory = (min(l for l, _r in best), max(r for _l, r in best))
    slowest_memory = (max(l for l, _r in best), min(r for _l, r in best))
    assert best[slowest_memory] >= best[fastest_memory]
