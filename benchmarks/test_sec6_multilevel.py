"""Bench: Section 6's multilevel-hierarchy study (engine-driven)."""

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_sec6(benchmark, settings):
    result = run_once(benchmark, run_experiment, "sec6", settings)
    print()
    print(result)
    # The L2 always helps at a fast clock, and helps the small L1 most —
    # which is what lets a multilevel design keep the L1 small and fast.
    assert result.data["l2_gain_small_l1"] > result.data["l2_gain_large_l1"]
    assert result.data["l2_gain_large_l1"] > 1.0
    # With an L2, the optimal L1 never grows.
    assert (
        result.data["best_l1_total_with_l2"]
        <= result.data["best_l1_total_no_l2"]
    )
