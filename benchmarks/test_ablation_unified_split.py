"""Ablation: split (Harvard) versus unified L1 of equal total size.

The paper's base system is split so the pipelined CPU can issue
instruction+data couplets simultaneously; a unified cache serializes the
pair.  This bench measures both effects at equal total capacity: the
unified cache usually wins slightly on miss ratio (capacity is shared
where it is needed) but loses on cycles because it single-ports the
couplet — the structural reason for the paper's Harvard choice.
"""

from repro.core.geometry import CacheGeometry
from repro.core.metrics import geometric_mean
from repro.core.policy import CachePolicy, ReplacementKind
from repro.sim.config import L1Spec, SystemConfig, baseline_config
from repro.sim.engine import simulate
from repro.trace.suite import build_suite
from repro.units import KB

from conftest import run_once


def unified_config(total_bytes: int) -> SystemConfig:
    return SystemConfig(
        l1=L1Spec(
            d_geometry=CacheGeometry(size_bytes=total_bytes, block_words=4),
            unified=True,
            policy=CachePolicy(replacement=ReplacementKind.RANDOM),
        ),
    )


def test_unified_vs_split(benchmark, settings):
    suite = build_suite(
        length=min(settings.trace_length, 25_000),
        names=settings.trace_names[:2], seed=settings.seed,
    )

    def sweep():
        table = {}
        for total_kb in (8, 32):
            split = baseline_config(cache_size_bytes=total_kb * KB // 2)
            unified = unified_config(total_kb * KB)
            split_stats = [simulate(split, t) for t in suite.values()]
            unified_stats = [simulate(unified, t) for t in suite.values()]
            table[total_kb] = {
                "split_exec": geometric_mean(
                    s.execution_time_ns for s in split_stats
                ),
                "unified_exec": geometric_mean(
                    s.execution_time_ns for s in unified_stats
                ),
                "split_miss": geometric_mean(
                    max(s.read_miss_ratio, 1e-9) for s in split_stats
                ),
                "unified_miss": geometric_mean(
                    max(s.read_miss_ratio, 1e-9) for s in unified_stats
                ),
            }
        return table

    table = run_once(benchmark, sweep)
    print("\nunified vs split ablation (equal total size):")
    for total_kb, row in table.items():
        print(f"  {total_kb}KB total: split exec {row['split_exec']:.3e} "
              f"miss {row['split_miss']:.4f} | unified exec "
              f"{row['unified_exec']:.3e} miss {row['unified_miss']:.4f}")
    for row in table.values():
        # The split organization wins on execution time at equal size —
        # simultaneous couplet issue beats the unified cache's port
        # serialization even when the unified miss ratio is comparable.
        assert row["split_exec"] < row["unified_exec"]
