"""Ablation: miss-penalty-reduction techniques (§5's list).

Early continuation and load forwarding "all have the effect of
increasing the performance optimal block size" by shrinking the
CPU-visible part of the miss penalty.  This bench measures both effects
on the engine: the speedup at a fixed block size, and the shift of the
best block size.
"""

from repro.core.metrics import geometric_mean
from repro.core.policy import CachePolicy, MissHandling, ReplacementKind
from repro.sim.config import baseline_config
from repro.sim.engine import simulate
from repro.trace.suite import build_suite
from repro.units import KB

from conftest import run_once

BLOCKS = [4, 16, 64]
MODES = [
    MissHandling.BLOCKING,
    MissHandling.EARLY_CONTINUATION,
    MissHandling.LOAD_FORWARD,
]


def test_fetch_policies(benchmark, settings):
    suite = build_suite(
        length=min(settings.trace_length, 25_000),
        names=settings.trace_names[:2], seed=settings.seed,
    )

    def sweep():
        table = {}
        for mode in MODES:
            policy = CachePolicy(
                replacement=ReplacementKind.RANDOM, miss_handling=mode
            )
            for block_words in BLOCKS:
                config = baseline_config(
                    cache_size_bytes=16 * KB, block_words=block_words
                ).with_policy(policy)
                table[(mode, block_words)] = geometric_mean(
                    simulate(config, t).execution_time_ns
                    for t in suite.values()
                )
        return table

    table = run_once(benchmark, sweep)
    print("\nmiss-handling ablation (16KB caches):")
    for mode in MODES:
        row = "  ".join(
            f"{block}W {table[(mode, block)]:.3e}" for block in BLOCKS
        )
        print(f"  {mode.value:<20} {row}")
    for block_words in BLOCKS:
        blocking = table[(MissHandling.BLOCKING, block_words)]
        for mode in MODES[1:]:
            assert table[(mode, block_words)] <= blocking
    # The techniques matter more at large blocks (they hide the grown
    # transfer term), shifting the optimum upward.
    gain_small = (
        table[(MissHandling.LOAD_FORWARD, 4)]
        / table[(MissHandling.BLOCKING, 4)]
    )
    gain_large = (
        table[(MissHandling.LOAD_FORWARD, 64)]
        / table[(MissHandling.BLOCKING, 64)]
    )
    assert gain_large < gain_small
