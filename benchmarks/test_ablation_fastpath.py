"""Ablation: the two-phase fastpath vs the reference engine.

The paper amortized exploration cost through macro-expansion; our
equivalent is the functional-pass + replay split.  This bench measures
the speedup that justifies the added machinery and re-checks exact
agreement on the bench workload.  The win grows with the number of
timing variations priced per organization — a full speed-size sweep
replays each pass ~16 times.
"""

import time

from repro.sim.config import baseline_config
from repro.sim.engine import simulate
from repro.sim.fastpath import assemble_stats, functional_pass, replay
from repro.trace.suite import build_trace
from repro.units import KB

from conftest import run_once

CYCLE_TIMES = [20.0, 28.0, 40.0, 56.0, 60.0, 80.0]


def test_fastpath_speedup_and_equality(benchmark, settings):
    trace = build_trace(
        settings.trace_names[0], length=settings.trace_length,
        seed=settings.seed,
    )
    config = baseline_config(cache_size_bytes=16 * KB)

    def engine_sweep():
        return [
            simulate(config.with_cycle_ns(t), trace).cycles
            for t in CYCLE_TIMES
        ]

    def fast_sweep():
        stream = functional_pass(config, trace)
        return [
            assemble_stats(
                stream, replay(stream, config.memory, t), t
            ).cycles
            for t in CYCLE_TIMES
        ]

    t0 = time.perf_counter()
    engine_cycles = engine_sweep()
    engine_elapsed = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast_cycles = run_once(benchmark, fast_sweep)
    fast_elapsed = time.perf_counter() - t0

    assert fast_cycles == engine_cycles, "fastpath must be cycle-exact"
    speedup = engine_elapsed / max(fast_elapsed, 1e-9)
    print(f"\nfastpath ablation: engine {engine_elapsed:.2f}s, "
          f"fastpath {fast_elapsed:.2f}s for {len(CYCLE_TIMES)} clocks "
          f"-> {speedup:.1f}x")
    assert speedup > 1.5
