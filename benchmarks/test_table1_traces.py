"""Bench: regenerate Table 1 (trace descriptions)."""

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_table1(benchmark, settings):
    result = run_once(benchmark, run_experiment, "table1", settings)
    print()
    print(result)
    stats = result.data["stats"]
    assert len(stats) == len(settings.trace_names)
    # Table 1 structure: every trace multiprogrammed, non-trivial
    # footprints, warm boundaries set.
    for name, row in stats.items():
        assert row["processes"] >= 3
        assert row["unique_kwords"] > 1.0
        assert row["warm_boundary"] > 0
