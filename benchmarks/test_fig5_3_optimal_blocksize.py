"""Bench: regenerate Figure 5-3 (optimal block size vs memory params)."""

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_fig5_3(benchmark, settings):
    result = run_once(benchmark, run_experiment, "fig5_3", settings)
    print()
    print(result)
    optima = result.data["optima"]
    # Optimal block size grows with latency (more cycles to amortize)
    # and with transfer rate (cheaper words).
    by_rate = {}
    for key, value in optima.items():
        latency, rate = key.split("cyc@")
        by_rate.setdefault(float(rate), []).append((int(latency), value))
    for rate, rows in by_rate.items():
        rows.sort()
        values = [v for _l, v in rows]
        assert values == sorted(values), f"not monotone in latency at {rate}"
    # Latency increments cost a modest fraction each.  The paper quotes
    # 3-6% per 80ns step; the reduced grid steps 160ns at a time, and
    # the synthetic suite misses a little more, so allow up to ~35%.
    assert all(c > -0.01 for c in result.data["latency_costs"])
    assert max(result.data["latency_costs"]) < 0.35
