"""Ablation: replacement policy under the paper's associativity sweep.

The paper uses random replacement "regardless of the set size".  This
bench compares random against LRU and FIFO at four-way associativity to
show the choice does not change the §4 story: LRU is a little better,
FIFO a little worse, and the break-even conclusions are insensitive.
"""

from repro.core.metrics import geometric_mean
from repro.core.policy import ReplacementKind
from repro.sim.config import baseline_config
from repro.sim.fastpath import fast_simulate
from repro.trace.suite import build_suite
from repro.units import KB

from conftest import run_once

KINDS = [ReplacementKind.RANDOM, ReplacementKind.LRU, ReplacementKind.FIFO]


def test_replacement_policies(benchmark, settings):
    suite = build_suite(
        length=settings.trace_length, names=settings.trace_names,
        seed=settings.seed,
    )

    def sweep():
        results = {}
        for kind in KINDS:
            config = baseline_config(
                cache_size_bytes=4 * KB, assoc=4, replacement=kind
            )
            stats = [fast_simulate(config, t) for t in suite.values()]
            results[kind] = {
                "miss": geometric_mean(
                    max(s.read_miss_ratio, 1e-9) for s in stats
                ),
                "exec": geometric_mean(
                    s.execution_time_ns for s in stats
                ),
            }
        return results

    results = run_once(benchmark, sweep)
    print("\nreplacement ablation (4KB caches, 4-way):")
    for kind in KINDS:
        print(f"  {kind.value:<8} miss {results[kind]['miss']:.4f}  "
              f"exec {results[kind]['exec']:.3e} ns")
    # LRU beats FIFO; random lands in the same neighbourhood (within
    # 15% miss ratio of LRU) — the paper's choice is not load-bearing.
    assert results[ReplacementKind.LRU]["miss"] <= \
        results[ReplacementKind.FIFO]["miss"]
    ratio = results[ReplacementKind.RANDOM]["miss"] / \
        results[ReplacementKind.LRU]["miss"]
    assert ratio < 1.2
