"""Bench: regenerate Figures 4-3/4/5 (break-even cycle-time maps)."""


from repro.core.associativity import AS_MUX_SELECT_NS
from repro.experiments.registry import run_experiment

from conftest import run_once


def test_fig4_345(benchmark, settings):
    result = run_once(benchmark, run_experiment, "fig4_345", settings)
    print()
    print(result)
    summaries = result.data["summaries"]
    # "The numbers are almost uniformly small": nowhere does the
    # break-even reach the 11 ns select-to-data-out time of the AS
    # multiplexor — TTL discrete caches should stay direct mapped.
    for assoc, summary in summaries.items():
        assert summary["max_breakeven_ns"] < AS_MUX_SELECT_NS
    # The 2-way and 4-way maps differ by little (paper: at most 2.4 ns).
    if 2 in summaries and 4 in summaries:
        gap = abs(
            summaries[4]["max_breakeven_ns"] - summaries[2]["max_breakeven_ns"]
        )
        assert gap < 5.0
