"""Bench: regenerate Figure 5-4 (optimal block size vs la x tr)."""

import numpy as np

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_fig5_4(benchmark, settings):
    result = run_once(benchmark, run_experiment, "fig5_4", settings)
    print()
    print(result)
    points = result.data["points"]
    products = np.log2([p["product"] for p in points])
    optima = np.log2([p["optimal_block_words"] for p in points])
    # The optima collapse onto a rising function of the product (the
    # first-order law): strong rank correlation.
    assert np.corrcoef(products, optima)[0, 1] > 0.8
    # The balance-line crossover: small products sit above BS = la*tr,
    # large ones below.
    assert points[0]["optimal_block_words"] > points[0]["balance_block_words"]
    assert points[-1]["optimal_block_words"] < points[-1]["balance_block_words"]
