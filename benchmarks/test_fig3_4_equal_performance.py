"""Bench: regenerate Figure 3-4 (lines of equal performance)."""

import numpy as np

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_fig3_4(benchmark, settings):
    result = run_once(benchmark, run_experiment, "fig3_4", settings)
    print()
    print(result)
    slopes = np.array(result.data["slopes"], dtype=float)
    # Slopes (ns of cycle time per size doubling) fall as caches grow:
    # the asymptotic flattening that caps worthwhile cache size.  Use a
    # non-anomalous clock column (40 ns) and allow local wiggle; the
    # small-vs-large ordering is the paper's claim.
    mid = settings.cycle_times_ns.index(40.0)
    column = slopes[:, mid]
    column = column[~np.isnan(column)]
    assert len(column) >= 2
    assert column[0] == column.max()
    assert column[-1] == column.min()
    assert column[0] > 2 * column[-1]
    # Iso-performance lines: a bigger cache affords a slower clock.
    for line in result.data["iso_lines"]:
        cycles = [c for _s, c in line["points"]]
        assert cycles == sorted(cycles)
    # The size band where growing stops paying exists within the grid.
    assert result.data["stop_at"] is not None
    # The worked RAM-swap example favours the larger, slower machine at
    # small sizes (paper: +7.3%).
    swap = result.data["ram_swap"]
    if swap is not None:
        assert swap["improvement"] > 0
