"""Bench: regenerate Table 2 (memory access cycle counts) — exact."""

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_table2(benchmark, settings):
    result = run_once(benchmark, run_experiment, "table2", settings)
    print()
    print(result)
    # This artifact reproduces the paper cell for cell.
    assert result.data["mismatches"] == []
    assert result.data["computed"][20.0] == (14, 10, 6)
    assert result.data["computed"][60.0] == (8, 7, 2)
