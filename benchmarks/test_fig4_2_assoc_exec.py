"""Bench: regenerate Figure 4-2 (execution time vs size, set size, clock)."""

import numpy as np

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_fig4_2(benchmark, settings):
    result = run_once(benchmark, run_experiment, "fig4_2", settings)
    print()
    print(result)
    # Equal-clock improvement from associativity is larger for small
    # caches than for large ones ("for large caches, the improvement is
    # much less significant").
    assert result.data["small_improvement"] > result.data["large_improvement"]
    improvement = np.array(result.data["improvement_2way"])
    # And the large-cache improvement is small in absolute terms.
    assert improvement[-1, :].mean() < 0.05
