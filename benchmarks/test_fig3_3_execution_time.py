"""Bench: regenerate Figure 3-3 (execution time vs size and clock)."""

import numpy as np

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_fig3_3(benchmark, settings):
    result = run_once(benchmark, run_experiment, "fig3_3", settings)
    print()
    print(result)
    exec_norm = np.array(result.data["normalized_execution"])
    # Performance depends on both axes: execution time falls with size
    # at a fixed clock and rises with the clock at a fixed large size.
    assert (np.diff(exec_norm, axis=0) < 0).all()
    assert (np.diff(exec_norm[-1, :]) > 0).all()
    # "With small caches, incremental changes in the cache size have a
    # greater effect than changes in the cycle time, while at the larger
    # cache sizes the reverse is true."
    assert result.data["size_gain_small"] > result.data["size_gain_large"]
    assert result.data["size_gain_large"] < result.data["cycle_gain"]
