"""Ablation: write-back (the paper's choice) versus write-through.

The paper's base D-cache is "write back, with no fetch done on write
miss".  Write-through pushes every store into the write buffer, raising
memory write traffic and exposure to buffer-full and read-match stalls;
write-back pays only on dirty evictions.  This bench quantifies the gap
the paper's choice avoids.
"""

from repro.core.metrics import geometric_mean
from repro.core.policy import CachePolicy, ReplacementKind, WriteMissPolicy, WritePolicy
from repro.sim.config import baseline_config
from repro.sim.engine import simulate
from repro.trace.suite import build_suite
from repro.units import KB

from conftest import run_once


def test_write_policy(benchmark, settings):
    suite = build_suite(
        length=min(settings.trace_length, 25_000),
        names=settings.trace_names[:2], seed=settings.seed,
    )
    policies = {
        "write-back": CachePolicy(replacement=ReplacementKind.RANDOM),
        "write-through": CachePolicy(
            write_policy=WritePolicy.WRITE_THROUGH,
            write_miss=WriteMissPolicy.NO_ALLOCATE,
            replacement=ReplacementKind.RANDOM,
        ),
    }

    def sweep():
        results = {}
        for label, policy in policies.items():
            config = baseline_config(cache_size_bytes=8 * KB).with_policy(
                policy
            )
            stats = [simulate(config, t) for t in suite.values()]
            results[label] = {
                "exec": geometric_mean(
                    s.execution_time_ns for s in stats
                ),
                "mem_writes": sum(s.memory_writes for s in stats),
                "match_stalls": sum(s.buffer.match_stalls for s in stats),
            }
        return results

    results = run_once(benchmark, sweep)
    print("\nwrite-policy ablation (8KB caches):")
    for label, row in results.items():
        print(f"  {label:<14} exec {row['exec']:.3e} ns, "
              f"{row['mem_writes']} memory writes, "
              f"{row['match_stalls']} read-match stalls")
    wb = results["write-back"]
    wt = results["write-through"]
    # Write-through generates far more memory write operations and is
    # never faster on this memory system.
    assert wt["mem_writes"] > 2 * wb["mem_writes"]
    assert wt["exec"] >= wb["exec"]
