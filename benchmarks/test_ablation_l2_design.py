"""Ablation: second-level cache design space (§6's closing point).

"Designing a second cache between the CPU/cache and main memory poses
the same set of questions as the first level of caching, but with a
different set of parameters, constraints and goals."  This bench runs a
small L2 design sweep on the engine — size and access latency — with a
fixed small L1 at a fast clock, and checks the §6 structure: bigger L2s
help with diminishing returns, slower L2 arrays eat their own benefit,
and even a slow L2 beats none.
"""

from repro.core.geometry import CacheGeometry
from repro.core.metrics import geometric_mean
from repro.core.timing import MemoryTiming
from repro.sim.config import LowerLevelSpec, baseline_config
from repro.sim.engine import simulate
from repro.trace.suite import build_suite
from repro.units import KB

from conftest import run_once

L2_SIZES_KB = [64, 256, 1024]
L2_LATENCIES_NS = [40.0, 80.0]


def l2_spec(size_kb: int, latency_ns: float) -> LowerLevelSpec:
    return LowerLevelSpec(
        geometry=CacheGeometry(size_bytes=size_kb * KB, block_words=16),
        port=MemoryTiming(latency_ns=latency_ns, transfer_rate=1.0,
                          write_op_ns=0.0, recovery_ns=0.0),
    )


def test_l2_design_space(benchmark, settings):
    suite = build_suite(
        length=min(settings.trace_length, 25_000),
        names=settings.trace_names[:2], seed=settings.seed,
    )
    base = baseline_config(cache_size_bytes=2 * KB, cycle_ns=20.0)

    def sweep():
        results = {"none": geometric_mean(
            simulate(base, t).execution_time_ns for t in suite.values()
        )}
        for size_kb in L2_SIZES_KB:
            for latency_ns in L2_LATENCIES_NS:
                config = base.with_levels((l2_spec(size_kb, latency_ns),))
                results[(size_kb, latency_ns)] = geometric_mean(
                    simulate(config, t).execution_time_ns
                    for t in suite.values()
                )
        return results

    results = run_once(benchmark, sweep)
    print("\nL2 design sweep (4KB total L1 at 20ns):")
    print(f"  no L2: {results['none']:.3e} ns")
    for size_kb in L2_SIZES_KB:
        for latency_ns in L2_LATENCIES_NS:
            exec_ns = results[(size_kb, latency_ns)]
            print(f"  {size_kb:>5}KB @ {latency_ns:g}ns array: "
                  f"{exec_ns:.3e} ns "
                  f"({100 * (results['none'] / exec_ns - 1):+.0f}%)")
    # Any L2 beats none; growing the L2 never hurts at fixed latency;
    # the faster array wins at fixed size; and L2 size shows diminishing
    # returns — the first-level speed-size story, one level down.
    for key, exec_ns in results.items():
        if key != "none":
            assert exec_ns < results["none"]
    for latency_ns in L2_LATENCIES_NS:
        ladder = [results[(s, latency_ns)] for s in L2_SIZES_KB]
        assert ladder == sorted(ladder, reverse=True)
        gain_first = ladder[0] / ladder[1]
        gain_second = ladder[1] / ladder[2]
        assert gain_second < gain_first + 0.05
    for size_kb in L2_SIZES_KB:
        assert results[(size_kb, 40.0)] <= results[(size_kb, 80.0)]
