"""Smoke for the perf-ratchet loop: suite → record → store → diff.

Unlike the paper-artifact benches in this directory, this one exercises
the *harness* itself: it runs one real local bench suite under
pytest-benchmark, records the medians into a fresh history store beside
a synthetic baseline, and checks that the noise-band gate flags a
seeded 10% slowdown while waving an identical rerun through — the same
loop the CI perf-ratchet job runs against the persisted history.
"""

import dataclasses

from repro.sim.benchhistory import (
    BenchHistory,
    DiffPolicy,
    diff_history,
    run_bench_suites,
)

from conftest import run_once


def test_bench_history_ratchet_loop(benchmark, tmp_path):
    records, noise = run_once(
        benchmark, run_bench_suites, ["functional_pass"], 3, 4_000
    )
    assert all(record.value > 0 for record in records)
    assert all(value >= 0.0 for value in noise.values())

    history = BenchHistory(tmp_path / "bench-history.jsonl")
    # Three quiet baseline commits, then this run as the candidate.
    for commit in ("base1", "base2", "base3"):
        history.append([
            dataclasses.replace(record, commit=commit)
            for record in records
        ])
    history.append([
        dataclasses.replace(record, commit="candidate")
        for record in records
    ])
    policy = DiffPolicy(min_baseline=3)
    deltas = diff_history(
        history.load(), commit="candidate", policy=policy
    )
    assert deltas
    assert all(d.status == "ok" for d in deltas), (
        "bit-identical rerun must pass the gate"
    )

    # Seed a 10% slowdown on the wall-clock metric and re-diff.
    slow = [
        dataclasses.replace(
            record, commit="slowpoke", value=record.value * 1.10
        )
        for record in records if record.metric == "wall_s"
    ]
    history.append(slow)
    deltas = diff_history(history.load(), commit="slowpoke", policy=policy)
    flagged = {d.metric: d.status for d in deltas}
    assert flagged["wall_s"] == "regression"
