"""Bench: §6's technology-scaling invariance."""

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_scaling(benchmark, settings):
    result = run_once(benchmark, run_experiment, "scaling", settings)
    print()
    print(result)
    # Even scaling: fractional slopes invariant (within interpolation
    # noise); CPU-only scaling: slopes grow.
    assert result.data["even_scaling_max_deviation"] < 0.10
    assert result.data["cpu_only_mean_growth"] > 1.2
