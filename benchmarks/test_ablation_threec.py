"""Ablation: 3C decomposition of the associativity benefit.

Figure 4-1's miss-ratio drops are bounded by the conflict-miss share —
associativity cannot touch compulsory or capacity misses.  This bench
decomposes the misses of the Figure 4-1 sweep and verifies the §4
mechanics: conflicts shrink monotonically with set size while the other
two classes stay fixed, and the 1→2-way drop is explained by conflicts
removed.
"""

from repro.analysis.threec import conflict_removed_by_assoc
from repro.trace.suite import build_trace
from repro.units import KB

from conftest import run_once


def test_threec_decomposition(benchmark, settings):
    trace = build_trace(
        settings.trace_names[0], length=min(settings.trace_length, 30_000),
        seed=settings.seed,
    )

    def sweep():
        return {
            size: conflict_removed_by_assoc(
                trace, size_bytes=size, assocs=(1, 2, 4)
            )
            for size in (2 * KB, 8 * KB)
        }

    table = run_once(benchmark, sweep)
    print("\n3C decomposition (reads of one cache):")
    for size, by_assoc in table.items():
        for assoc, b in by_assoc.items():
            print(f"  {size // 1024}KB {assoc}-way: "
                  f"compulsory {b.compulsory}, capacity {b.capacity}, "
                  f"conflict {b.conflict} "
                  f"(miss {b.miss_ratio:.4f})")
    for by_assoc in table.values():
        conflicts = [by_assoc[a].conflict for a in (1, 2, 4)]
        assert conflicts == sorted(conflicts, reverse=True)
        assert len({by_assoc[a].compulsory for a in (1, 2, 4)}) == 1
        assert len({by_assoc[a].capacity for a in (1, 2, 4)}) == 1
        # The miss-ratio benefit of 1 -> 2 ways equals the conflicts
        # removed (identical compulsory+capacity).
        drop = by_assoc[1].total_misses - by_assoc[2].total_misses
        assert drop == by_assoc[1].conflict - by_assoc[2].conflict
