"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts and prints the
same rows/series the paper reports, then asserts the qualitative shape
(who wins, roughly by how much, where crossovers fall).  Timings come
from pytest-benchmark; each experiment is executed once per benchmark
(``pedantic`` with one round) because the workloads are deterministic
and far too heavy for statistical repetition.

Scaling knobs (environment):

* ``REPRO_FULL=1``     — paper-scale grids (slow; hours for everything);
* ``REPRO_BENCH_LEN``  — trace length in references (default 40 000);
* ``REPRO_BENCH_TRACES`` — comma-separated trace subset (default four of
  the eight, two per family).

The experiment layer memoizes its sweeps per settings object, so
benchmarks that share a grid (fig3_2/3_3/3_4/table3, or the fig5 family)
pay for it once per session.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentSettings

DEFAULT_TRACES = "mu3,mu10,rd2n4,rd1n5"


def bench_settings() -> ExperimentSettings:
    length = int(os.environ.get("REPRO_BENCH_LEN", "40000"))
    names = tuple(
        os.environ.get("REPRO_BENCH_TRACES", DEFAULT_TRACES).split(",")
    )
    return ExperimentSettings(trace_length=length, trace_names=names)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return bench_settings()


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, args=args, iterations=1, rounds=1)
