"""Bench: regenerate Figure 5-1 (block size vs miss ratio / exec time)."""

import numpy as np

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_fig5_1(benchmark, settings):
    result = run_once(benchmark, run_experiment, "fig5_1", settings)
    print()
    print(result)
    # The instruction stream has greater spatial locality, so its
    # miss-optimal block is at least as large as the data side's.
    assert result.data["miss_optimal_ifetch"] >= result.data["miss_optimal_data"] \
        or result.data["miss_optimal_ifetch"] == max(result.data["block_sizes"])
    # "The block size that optimizes system performance is significantly
    # smaller than that which minimizes the miss rate."
    assert result.data["performance_optimal"] < result.data["miss_optimal_data"]
    # The execution curve is U-shaped around its minimum.
    exec_norm = np.array(result.data["execution_norm"])
    k = int(np.argmin(exec_norm))
    assert (np.diff(exec_norm[: k + 1]) <= 1e-9).all()
    assert (np.diff(exec_norm[k:]) >= -1e-9).all()
