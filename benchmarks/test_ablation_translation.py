"""Ablation: virtual caches vs physical caches with a TLB.

The paper simulates virtual caches (PID in the tag) and lets translation
sit anywhere below; §4 notes the physical alternative constrains the
organization (only page-offset bits may index the cache during parallel
translation).  This bench quantifies what the virtual choice buys: the
cost of physical-mode page walks at several TLB sizes, plus the §4
organization constraint for the base system.
"""

from repro.core.metrics import geometric_mean
from repro.sim.config import TranslationSpec, baseline_config
from repro.sim.engine import simulate
from repro.trace.suite import build_suite
from repro.units import KB
from repro.vm.paging import min_assoc_for_physical_cache

from conftest import run_once

TLB_SIZES = [16, 64, 256]


def test_translation_cost(benchmark, settings):
    suite = build_suite(
        length=min(settings.trace_length, 25_000),
        names=settings.trace_names[:2], seed=settings.seed,
    )
    base = baseline_config(cache_size_bytes=8 * KB)

    def sweep():
        results = {"virtual": geometric_mean(
            simulate(base, t).execution_time_ns for t in suite.values()
        )}
        for entries in TLB_SIZES:
            config = base.with_translation(
                TranslationSpec(tlb_entries=entries)
            )
            results[entries] = geometric_mean(
                simulate(config, t).execution_time_ns
                for t in suite.values()
            )
        return results

    results = run_once(benchmark, sweep)
    print("\ntranslation ablation (8KB caches):")
    print(f"  virtual (paper's choice): {results['virtual']:.3e} ns")
    for entries in TLB_SIZES:
        overhead = results[entries] / results["virtual"] - 1
        print(f"  physical, {entries:>3}-entry TLB: {results[entries]:.3e} ns "
              f"({100 * overhead:+.1f}%)")
    # Physical mode pays for walks; bigger TLBs pay less.
    assert results[16] >= results[64] >= results[256]
    assert results[256] >= results["virtual"]
    # §4's constraint: a physically-indexed 64KB cache with 4KB pages
    # needs 16 ways (the IBM 3033 configuration).
    assert min_assoc_for_physical_cache(64 * KB, 4 * KB) == 16
