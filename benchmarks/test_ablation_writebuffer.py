"""Ablation: write-buffer depth.

The paper provides "a four block write buffer ... of sufficient depth
that it essentially never fills up".  This bench quantifies that claim:
a one-entry buffer stalls measurably, depth four is near the asymptote,
and deeper buffers buy almost nothing.
"""

from repro.core.metrics import geometric_mean
from repro.sim.config import baseline_config
from repro.sim.fastpath import fast_simulate
from repro.trace.suite import build_suite
from repro.units import KB

from conftest import run_once

DEPTHS = [1, 2, 4, 16]


def test_write_buffer_depth(benchmark, settings):
    suite = build_suite(
        length=settings.trace_length, names=settings.trace_names,
        seed=settings.seed,
    )

    def sweep():
        results = {}
        for depth in DEPTHS:
            config = baseline_config(
                cache_size_bytes=4 * KB, write_buffer_depth=depth
            )
            stats = [fast_simulate(config, t) for t in suite.values()]
            results[depth] = {
                "exec": geometric_mean(
                    s.execution_time_ns for s in stats
                ),
                "full_stalls": sum(s.buffer.full_stalls for s in stats),
            }
        return results

    results = run_once(benchmark, sweep)
    print("\nwrite-buffer depth ablation (4KB caches):")
    for depth in DEPTHS:
        row = results[depth]
        print(f"  depth {depth:>2}: exec {row['exec']:.3e} ns, "
              f"{row['full_stalls']} full stalls")
    # Deeper buffers are never slower, and stalls vanish by depth 4.
    execs = [results[d]["exec"] for d in DEPTHS]
    assert execs == sorted(execs, reverse=True)
    assert results[1]["full_stalls"] > results[4]["full_stalls"]
    # Depth 4 "essentially never fills up": going to 16 changes
    # execution time by well under 1%.
    assert results[4]["exec"] / results[16]["exec"] < 1.01
