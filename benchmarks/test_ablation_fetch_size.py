"""Ablation: sub-block placement (fetch size below block size).

The paper's footnote 2 carries fetch size as a first-class parameter
("called the transfer size by Smith"); its base experiments always
fetch whole blocks.  This bench exercises the sub-block machinery: a
large-block cache fetching small sectors keeps the tag economy of big
blocks while paying small-fetch miss penalties — the Hill & Smith
on-chip compromise — at the price of sub-block (valid-bit) misses.
"""

from repro.core.geometry import CacheGeometry
from repro.core.metrics import geometric_mean
from repro.core.policy import CachePolicy, ReplacementKind
from repro.sim.config import L1Spec, SystemConfig
from repro.sim.engine import simulate
from repro.trace.suite import build_suite
from repro.units import KB

from conftest import run_once


def config_with_fetch(block_words: int, fetch_words: int) -> SystemConfig:
    geometry = CacheGeometry(
        size_bytes=8 * KB, block_words=block_words, fetch_words=fetch_words
    )
    return SystemConfig(
        l1=L1Spec(
            d_geometry=geometry, i_geometry=geometry,
            policy=CachePolicy(replacement=ReplacementKind.RANDOM),
        ),
    )


def test_sub_block_fetch(benchmark, settings):
    suite = build_suite(
        length=min(settings.trace_length, 25_000),
        names=settings.trace_names[:2], seed=settings.seed,
    )
    variants = {
        "16W blocks, whole-block fetch": config_with_fetch(16, 16),
        "16W blocks, 4W sectors": config_with_fetch(16, 4),
        "4W blocks (baseline)": config_with_fetch(4, 4),
    }

    def sweep():
        return {
            label: geometric_mean(
                simulate(config, t).execution_time_ns
                for t in suite.values()
            )
            for label, config in variants.items()
        }

    results = run_once(benchmark, sweep)
    print("\nsub-block (sector) ablation, 8KB caches, 180ns memory:")
    for label, exec_ns in results.items():
        print(f"  {label:<32} {exec_ns:.3e} ns")
    # Sectoring beats whole-16W-block fetches (it avoids the bloated
    # transfer term the §5 analysis warns about).
    assert results["16W blocks, 4W sectors"] < \
        results["16W blocks, whole-block fetch"]
