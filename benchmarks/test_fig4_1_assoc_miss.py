"""Bench: regenerate Figure 4-1 (miss ratio vs size and set size)."""

import numpy as np

from repro.experiments.registry import run_experiment

from conftest import run_once


def test_fig4_1(benchmark, settings):
    result = run_once(benchmark, run_experiment, "fig4_1", settings)
    print()
    print(result)
    by_assoc = result.data["miss_by_assoc"]
    one_way = np.array(by_assoc[1])
    two_way = np.array(by_assoc[2])
    # Two-way beats direct mapped on average across the size axis.
    assert two_way.mean() < one_way.mean()
    # Gains above set size two are smaller than the 1 -> 2 step.
    if 4 in by_assoc:
        four_way = np.array(by_assoc[4])
        step_12 = (one_way - two_way).mean()
        step_24 = (two_way - four_way).mean()
        assert step_24 < step_12
