"""Command-line interface: ``repro-sim``.

Main subcommands:

* ``repro-sim experiment <id|all> [--full] [--length N] [--traces a,b]
  [--keep-going]`` — regenerate one of the paper's tables/figures (see
  DESIGN.md §5);
* ``repro-sim simulate [--size-kb N] [--assoc A] [--block-words W]
  [--cycle-ns T] [--trace NAME] [--engine] [--metrics] [--metrics-out F]
  [--trace-out F]`` — run one configuration on one trace and print its
  statistics; ``--metrics`` adds the cycle-attribution ledger (with the
  conservation invariant checked) and host profiling, ``--trace-out``
  dumps a Chrome ``trace_event`` timeline;
* ``repro-sim traces [--length N]`` — print the Table 1 analogue for the
  synthetic suite;
* ``repro-sim lint [paths] [--rule ID] [--format text|json]`` — static
  invariant checking (reprolint) over the repo's own source: wall-clock
  and entropy calls in simulation code, float cycle arithmetic, bare
  writes bypassing the atomic persistence primitive, silent exception
  swallowing, registry/schema drift (see ``docs/invariants.md``);
  ``--self-test`` runs every rule against its fixtures,
  ``--write-baseline`` ratchets pre-existing violations,
  ``--update-fingerprints`` refreshes the REPRO008 schema ratchet;
* ``repro-sim campaign run|enqueue|worker|drain|status|report|fsck
  <dir>`` — fault-tolerant sweep execution over a persisted campaign
  directory: ``run`` executes a (size x cycle-time) sweep with worker
  isolation, per-run timeouts and retries
  (``--jobs/--timeout/--retries/--keep-going``; add ``--metrics`` to
  persist per-run telemetry RunReports; ``--backend spool`` drives the
  sweep through the durable on-disk work queue so a killed coordinator
  loses nothing); ``enqueue`` only materializes the sweep into
  ``<dir>/spool/`` without executing it; ``worker`` runs one persistent
  lease-holding worker against an enqueued spool (launch any number, on
  any schedule; SIGTERM drains gracefully); ``drain`` runs workers until
  the spool empties and folds completions into the manifest; ``status``
  prints the manifest journal (plus spool occupancy when one exists;
  ``--json`` emits a machine-readable document with manifest counts and
  spool/fabric blocks);
  ``report`` aggregates stored RunReports (slowest runs, stall
  breakdowns, throughput percentiles); ``fsck`` validates every stored
  result's checksum, flags stray temp files and stale leases, and
  optionally quarantines/repairs (``--repair``);
* ``repro-sim bench run|record|diff|history`` — the continuous
  performance ratchet (see ``docs/internals.md``): ``run`` executes the
  local bench suites with ``--repeat`` repetitions and records
  per-metric medians; ``record`` ingests a raw ``BENCH_*.json``
  document into the common schema-versioned record and appends it to an
  append-only JSONL history; ``diff`` gates one commit's records
  against the baseline's median ± a MAD-derived noise band (exit 1 on
  regression; identical reruns always pass); ``history`` prints
  per-metric trajectories;
* ``repro-sim cache stats|gc|verify <dir>`` — maintain a persistent
  functional-pass cache (see ``docs/internals.md``): ``stats`` prints
  the on-disk footprint, ``gc`` evicts least-recently-modified entries
  down to ``--max-entries``/``--max-bytes`` budgets, ``verify``
  validates every entry's checksum (``--repair`` quarantines).  The
  ``simulate``, ``advise`` and ``campaign run`` subcommands accept
  ``--pass-cache DIR`` to reuse functional passes across invocations,
  and ``--stack-pass`` to collapse cold functional passes into one
  shared stack walk per trace (see ``docs/internals.md``); results are
  bit-identical either way.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.common import ExperimentSettings
from .experiments.registry import list_experiments, run_experiment
from .sim.config import baseline_config
from .sim.engine import simulate
from .sim.fastpath import fast_simulate
from .trace.dinero import read_din, write_din
from .trace.stats import compute_stats, stats_table
from .trace.suite import ALL_TRACES, DEFAULT_LENGTH, build_suite, build_trace
from .units import KB


def _settings_from(args: argparse.Namespace) -> ExperimentSettings:
    names = tuple(args.traces.split(",")) if args.traces else ALL_TRACES
    return ExperimentSettings(
        trace_length=args.length,
        trace_names=names,
        seed=args.seed,
        full=args.full,
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .experiments.common import failed_result

    settings = _settings_from(args)
    ids = list_experiments() if args.id == "all" else [args.id]
    failures = 0
    for experiment_id in ids:
        try:
            result = run_experiment(experiment_id, settings)
        except ReproError as exc:
            if not args.keep_going:
                raise
            result = failed_result(experiment_id, exc)
        if not result.ok:
            failures += 1
        print(f"== {result.experiment_id}: {result.title} ==")
        print(result.text)
        print()
    return 1 if failures else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .sim.telemetry import (
        CycleLedger, EventTracer, StageTimer, Telemetry, build_run_report,
    )

    timer = StageTimer()
    with timer.stage("trace"):
        trace = build_trace(args.trace, length=args.length, seed=args.seed)
    if args.spec:
        from .sim.specfiles import load_spec

        config = load_spec(args.spec, args.vary)
    else:
        config = baseline_config(
            cache_size_bytes=args.size_kb * KB,
            block_words=args.block_words,
            assoc=args.assoc,
            cycle_ns=args.cycle_ns,
        )
    runner = simulate if args.engine else fast_simulate
    if not args.engine:
        from .errors import ConfigurationError
        from .sim.fastpath import check_fastpath_supported

        try:
            check_fastpath_supported(config)
        except ConfigurationError:
            runner = simulate  # spec needs engine features
    if (args.sample or args.sample_validate) and runner is simulate:
        print("error: --sample requires the fastpath; it is incompatible "
              "with --engine and with spec files that need engine "
              "features", file=sys.stderr)
        return 2
    pass_cache = None
    if args.pass_cache:
        if runner is fast_simulate:
            from .sim.passcache import PassCache

            pass_cache = PassCache(args.pass_cache)
        else:
            print("note: --pass-cache applies to fastpath runs only; "
                  "this engine run bypasses it", file=sys.stderr)
    stack_stats = None
    if args.stack_pass:
        if runner is fast_simulate:
            from .sim.stackpass import StackPassStats

            stack_stats = StackPassStats()
        else:
            print("note: --stack-pass applies to fastpath runs only; "
                  "this engine run bypasses it", file=sys.stderr)
    if args.sample or args.sample_validate:
        return _simulate_sampled(
            args, config, trace, timer, pass_cache, stack_stats
        )
    want_metrics = args.metrics or args.metrics_out
    telemetry = None
    if want_metrics or args.trace_out:
        telemetry = Telemetry(
            ledger=CycleLedger() if want_metrics else None,
            tracer=EventTracer() if args.trace_out else None,
        )
    with timer.stage("simulate"):
        if stack_stats is not None:
            from .sim.stackpass import stack_fast_simulate

            stats = stack_fast_simulate(
                config, trace, cache=pass_cache, stats=stack_stats,
                telemetry=telemetry,
            )
        elif pass_cache is not None:
            from .sim.passcache import cached_fast_simulate

            stats = cached_fast_simulate(
                config, trace, cache=pass_cache, telemetry=telemetry
            )
        elif telemetry is not None:
            stats = runner(config, trace, telemetry=telemetry)
        else:
            stats = runner(config, trace)
    print(f"trace: {trace.name} ({len(trace)} references, "
          f"{stats.n_refs} measured)")
    print(f"warm-up: {len(trace) - stats.n_refs} reference(s) before the "
          f"boundary at reference {trace.warm_boundary}; statistics "
          f"snapshot at cycle {stats.warm_cycles} of {stats.total_cycles}")
    print(f"system: {config.describe()}")
    print(f"cycles: {stats.cycles}  ({stats.cycles_per_reference:.3f}/ref)")
    print(f"execution time: {stats.execution_time_ns / 1e6:.3f} ms")
    print(f"read miss ratio: {stats.read_miss_ratio:.4f} "
          f"(load {stats.load_miss_ratio:.4f}, "
          f"ifetch {stats.ifetch_miss_ratio:.4f})")
    print(f"traffic: read {stats.read_traffic_ratio:.3f} W/read, write "
          f"{stats.write_traffic_ratio_full:.3f}/"
          f"{stats.write_traffic_ratio_dirty:.3f} W/ref (full/dirty)")
    print(f"write buffer: {stats.buffer.pushes} pushes, "
          f"{stats.buffer.full_stalls} full stalls, "
          f"{stats.buffer.match_stalls} read-match stalls")
    if pass_cache is not None:
        counters = pass_cache.counters
        print(f"pass cache: {counters.hits} hit(s), "
              f"{counters.misses} miss(es), "
              f"{counters.bytes_read:,} B read, "
              f"{counters.bytes_written:,} B written")
    if stack_stats is not None:
        print(f"stack pass: {stack_stats.walks} shared walk(s), "
              f"{stack_stats.derived_streams} stream(s) derived, "
              f"{stack_stats.reused_streams} reused, "
              f"{stack_stats.fallback_passes} fallback pass(es)")
    if telemetry is not None and telemetry.ledger is not None:
        report = build_run_report(
            stats, telemetry.ledger, timer,
            run_identifier=f"{trace.name}-cli",
            simulator="engine" if runner is simulate else "fastpath",
            n_refs_total=len(trace), config=config,
            pass_cache=(
                pass_cache.counters.as_dict()
                if pass_cache is not None else None
            ),
            stack_pass=(
                stack_stats.as_dict()
                if stack_stats is not None else None
            ),
        )
        print("cycle attribution (measured):")
        print(telemetry.ledger.render(stats.cycles))
        print(f"host: {report.total_wall_s:.3f}s wall "
              f"({report.refs_per_sec:,.0f} refs/s), "
              f"peak RSS {report.peak_rss_kb or 0} KiB")
        if args.metrics_out:
            import json as _json

            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                _json.dump(report.to_dict(), handle, indent=1)
            print(f"metrics written to {args.metrics_out}")
        if not report.conserved:
            print("error: cycle-conservation invariant VIOLATED",
                  file=sys.stderr)
            return 1
    if telemetry is not None and telemetry.tracer is not None:
        telemetry.tracer.dump(args.trace_out)
        print(f"event trace written to {args.trace_out} "
              f"({len(telemetry.tracer)} event(s), "
              f"{telemetry.tracer.dropped} dropped)")
    return 0


def _simulate_sampled(
    args: argparse.Namespace, config, trace, timer, pass_cache, stack_stats
) -> int:
    """The ``simulate --sample`` path: a stratified estimate, not an
    exact run.  Shares the printed statistics shape with the exact path
    and adds the estimate's confidence interval and, under
    ``--sample-validate``, the true error."""
    import dataclasses as _dc

    from .errors import SamplingError
    from .sim.sampling import (
        SamplingPlan, SamplingStats, sampled_fast_simulate,
    )
    from .sim.telemetry import build_run_report

    try:
        plan = SamplingPlan.parse(args.sample)
        if args.sample_validate:
            plan = _dc.replace(plan, validate=True)
    except SamplingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if stack_stats is not None:
        print("note: --stack-pass applies to exact and sweep runs; this "
              "sampled single run uses scalar representative passes",
              file=sys.stderr)
    if args.trace_out:
        print("note: --trace-out needs an exact replay; the sampled run "
              "skips it", file=sys.stderr)
    sampling_stats = SamplingStats()
    with timer.stage("simulate"):
        try:
            estimate = sampled_fast_simulate(
                config, trace, plan, cache=pass_cache,
                stats=sampling_stats,
            )
        except SamplingError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    stats = estimate.stats
    print(f"trace: {trace.name} ({len(trace)} references, "
          f"{stats.n_refs} measured)")
    print(f"system: {config.describe()}")
    print(f"sampling: {plan.describe()}; {estimate.n_clusters} cluster(s) "
          f"over {estimate.n_intervals} interval(s)")
    print(f"sampling: {estimate.refs_sampled:,} of "
          f"{estimate.refs_full:,} refs simulated "
          f"({estimate.refs_reduction:.1f}x fewer)")
    print(f"cycles (estimated): {stats.cycles}  "
          f"({stats.cycles_per_reference:.3f}/ref)")
    print(f"execution time (estimated): "
          f"{stats.execution_time_ns / 1e6:.3f} ms")
    print(f"read miss ratio (estimated): {estimate.read_miss_ratio:.4f} "
          f"± {estimate.ci_half_width:.4f} "
          f"(z={plan.confidence_z:g}, bound {plan.ci_bound:g})")
    print(f"traffic (estimated): read {stats.read_traffic_ratio:.3f} "
          f"W/read, write {stats.write_traffic_ratio_full:.3f}/"
          f"{stats.write_traffic_ratio_dirty:.3f} W/ref (full/dirty)")
    if estimate.true_read_miss_ratio is not None:
        print(f"validation: true read miss ratio "
              f"{estimate.true_read_miss_ratio:.4f}, "
              f"abs error {estimate.abs_error:.4f}; "
              f"true cycles {estimate.true_cycles}")
    if pass_cache is not None:
        counters = pass_cache.counters
        print(f"pass cache: {counters.hits} hit(s), "
              f"{counters.misses} miss(es), "
              f"{counters.bytes_read:,} B read, "
              f"{counters.bytes_written:,} B written")
    if args.metrics or args.metrics_out:
        block = dict(sampling_stats.as_dict())
        block["ci_half_width"] = round(estimate.ci_half_width, 6)
        block["refs_reduction"] = round(estimate.refs_reduction, 3)
        if estimate.abs_error is not None:
            block["abs_error"] = round(estimate.abs_error, 6)
        report = build_run_report(
            stats, None, timer,
            run_identifier=f"{trace.name}-cli-sampled",
            simulator="fastpath",
            n_refs_total=len(trace), config=config,
            pass_cache=(
                pass_cache.counters.as_dict()
                if pass_cache is not None else None
            ),
            sampling=block,
        )
        print(f"host: {report.total_wall_s:.3f}s wall "
              f"({report.refs_per_sec:,.0f} refs/s), "
              f"peak RSS {report.peak_rss_kb or 0} KiB")
        if args.metrics_out:
            import json as _json

            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                _json.dump(report.to_dict(), handle, indent=1)
            print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    suite = build_suite(length=args.length, seed=args.seed)
    print(stats_table([compute_stats(t) for t in suite.values()]))
    return 0


def _cmd_din(args: argparse.Namespace) -> int:
    """Simulate an external din/dinp trace file, or export a synthetic
    trace to din format."""
    if args.export:
        trace = build_trace(args.export, length=args.length, seed=args.seed)
        write_din(trace, args.path, with_pids=True)
        print(f"wrote {len(trace)} references to {args.path} (dinp format)")
        return 0
    trace = read_din(args.path, name=args.path,
                     warm_boundary=args.warm_boundary)
    config = baseline_config(
        cache_size_bytes=args.size_kb * KB,
        block_words=args.block_words,
        assoc=args.assoc,
        cycle_ns=args.cycle_ns,
    )
    stats = fast_simulate(config, trace)
    print(f"trace: {args.path} ({len(trace)} references)")
    print(f"system: {config.describe()}")
    print(f"read miss ratio: {stats.read_miss_ratio:.4f}")
    print(f"cycles/reference: {stats.cycles_per_reference:.3f}")
    print(f"execution time: {stats.execution_time_ns / 1e6:.3f} ms")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Reproduction of 'Performance Tradeoffs in Cache Design' "
            "(Przybylski, Horowitz & Hennessy, ISCA 1988)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument(
        "id",
        help=f"experiment id or 'all'; one of: {', '.join(list_experiments())}",
    )
    exp.add_argument("--full", action="store_true",
                     help="paper-scale grids (slow)")
    exp.add_argument("--length", type=int, default=120_000,
                     help="trace length in references")
    exp.add_argument("--traces", default="",
                     help="comma-separated subset of trace names")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--keep-going", action="store_true",
                     help="render failed experiments as flagged "
                          "placeholders instead of aborting the batch")
    exp.set_defaults(func=_cmd_experiment)

    simp = sub.add_parser("simulate", help="run one configuration")
    simp.add_argument("--trace", default="mu3", choices=ALL_TRACES)
    simp.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    simp.add_argument("--size-kb", type=int, default=64,
                      help="size of EACH split cache in KB")
    simp.add_argument("--assoc", type=int, default=1)
    simp.add_argument("--block-words", type=int, default=4)
    simp.add_argument("--cycle-ns", type=float, default=40.0)
    simp.add_argument("--engine", action="store_true",
                      help="use the reference engine instead of the fastpath")
    simp.add_argument("--spec", default="",
                      help="JSON system specification file (overrides the "
                           "size/assoc/block/cycle flags)")
    simp.add_argument("--vary", action="append", default=[],
                      help="variation file applied on top of --spec "
                           "(repeatable, applied in order)")
    simp.add_argument("--seed", type=int, default=0)
    simp.add_argument("--metrics", action="store_true",
                      help="collect the cycle-attribution ledger and "
                           "host profiling metrics; verifies the "
                           "cycle-conservation invariant")
    simp.add_argument("--metrics-out", default="",
                      help="write the RunReport metrics document (JSON) "
                           "to this path (implies --metrics)")
    simp.add_argument("--trace-out", default="",
                      help="write a Chrome trace_event JSON timeline of "
                           "misses and stalls to this path")
    simp.add_argument("--pass-cache", default="",
                      help="directory of a persistent functional-pass "
                           "cache to reuse across invocations "
                           "(fastpath runs only)")
    simp.add_argument("--stack-pass", action="store_true",
                      help="derive the functional pass through the "
                           "shared stack-walk machinery (fastpath runs "
                           "only; bit-identical results, reported in "
                           "the stack_pass metrics block)")
    simp.add_argument("--sample", default="",
                      help="estimate from representative trace "
                           "intervals instead of an exact run: a "
                           "sampling-plan spec ('1' for defaults, or "
                           "e.g. 'interval=20000,k=8,ci=0.02'); "
                           "fastpath only")
    simp.add_argument("--sample-validate", action="store_true",
                      help="with --sample: also run the exact pass and "
                           "report the estimate's true absolute "
                           "miss-ratio error")
    simp.set_defaults(func=_cmd_simulate)

    tr = sub.add_parser("traces", help="describe the synthetic trace suite")
    tr.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    tr.add_argument("--seed", type=int, default=0)
    tr.set_defaults(func=_cmd_traces)

    din = sub.add_parser(
        "din", help="simulate a din/dinp trace file, or export one"
    )
    din.add_argument("path", help="trace file to read (or write)")
    din.add_argument("--export", default="", choices=("",) + ALL_TRACES,
                     help="write this synthetic trace to PATH instead")
    din.add_argument("--length", type=int, default=DEFAULT_LENGTH,
                     help="length when exporting")
    din.add_argument("--warm-boundary", type=int, default=0)
    din.add_argument("--size-kb", type=int, default=64)
    din.add_argument("--assoc", type=int, default=1)
    din.add_argument("--block-words", type=int, default=4)
    din.add_argument("--cycle-ns", type=float, default=40.0)
    din.add_argument("--seed", type=int, default=0)
    din.set_defaults(func=_cmd_din)

    adv = sub.add_parser(
        "advise",
        help="rank buildable (size, cycle) rungs from a RAM ladder",
    )
    adv.add_argument(
        "rungs", nargs="+",
        help="rungs as TOTALKB:CYCLENS, e.g. 16:40 64:50 256:60",
    )
    adv.add_argument("--length", type=int, default=60_000)
    adv.add_argument("--traces", default="mu3,rd2n4")
    adv.add_argument("--seed", type=int, default=0)
    adv.add_argument("--pass-cache", default="",
                     help="directory of a persistent functional-pass "
                          "cache backing the advisor's sweep")
    adv.add_argument("--replay-jobs", type=int, default=1,
                     help="worker processes sharding the batch-replay "
                          "grid pricing across event streams")
    adv.add_argument("--scalar-replay", action="store_true",
                     help="price the grid with the scalar replay() "
                          "loop instead of the batch replay kernel")
    adv.add_argument("--stack-pass", action="store_true",
                     help="collapse the sweep's cold functional passes "
                          "into one shared stack walk per trace "
                          "(bit-identical results)")
    adv.add_argument("--sample", default="",
                     help="price the advisor's sweep on representative "
                          "trace intervals (stratified estimates with "
                          "confidence bounds): a sampling-plan spec, "
                          "'1' for defaults")
    adv.add_argument("--sample-validate", action="store_true",
                     help="with --sample: periodically re-run exact "
                          "passes and report the worst true "
                          "miss-ratio error")
    adv.set_defaults(func=_cmd_advise)

    rep = sub.add_parser(
        "report",
        help="run every experiment and write a markdown report",
    )
    rep.add_argument("-o", "--output", default="paper_report.md")
    rep.add_argument("--full", action="store_true")
    rep.add_argument("--length", type=int, default=120_000)
    rep.add_argument("--traces", default="")
    rep.add_argument("--seed", type=int, default=0)
    rep.set_defaults(func=_cmd_report)

    lint = sub.add_parser(
        "lint",
        help="static invariant checks (reprolint) over the source tree",
    )
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint (default: src)")
    lint.add_argument("--rule", action="append", default=[],
                      help="run only this rule id (repeatable)")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text")
    lint.add_argument("--self-test", action="store_true",
                      help="check every rule catches its fixture "
                           "violations and stays silent on clean code")
    lint.add_argument("--baseline", default="",
                      help="baseline file (default: "
                           "<root>/lint-baseline.json)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="accept all current violations into the "
                           "baseline (ratchet starting point)")
    lint.add_argument("--update-fingerprints", action="store_true",
                      help="regenerate the REPRO008 schema fingerprint "
                           "file after a deliberate schema change")
    lint.add_argument("--no-cache", action="store_true",
                      help="disable the per-file content-hash result "
                           "cache (.reprolint-cache.json)")
    lint.add_argument("--graph-stats", action="store_true",
                      help="print project-graph statistics (modules, "
                           "call edges, summary counts, cache reuse) "
                           "after the run")
    lint.add_argument("--why", default="",
                      metavar="RULE[:PATH]",
                      help="explain an interprocedural rule: print the "
                           "call chain(s) behind REPRO012/REPRO013 (or "
                           "the REPRO014 findings) for modules "
                           "matching PATH, then exit")
    lint.set_defaults(func=_cmd_lint)

    camp = sub.add_parser(
        "campaign",
        help="fault-tolerant sweep execution over a results directory",
    )
    csub = camp.add_subparsers(dest="campaign_command", required=True)

    crun = csub.add_parser(
        "run", help="execute a (size x cycle time) sweep resiliently"
    )
    crun.add_argument("directory", help="campaign results directory")
    crun.add_argument("--sizes-kb", default="4,16,64",
                      help="comma-separated per-cache sizes in KB")
    crun.add_argument("--cycles-ns", default="20,40,80",
                      help="comma-separated cycle times in ns")
    crun.add_argument("--assoc", type=int, default=1)
    crun.add_argument("--block-words", type=int, default=4)
    crun.add_argument("--traces", default="",
                      help="comma-separated subset of trace names")
    crun.add_argument("--length", type=int, default=120_000)
    crun.add_argument("--seed", type=int, default=0)
    crun.add_argument("--jobs", type=int, default=1,
                      help="concurrent isolated worker processes")
    crun.add_argument("--timeout", type=float, default=None,
                      help="per-run wall-clock timeout in seconds")
    crun.add_argument("--retries", type=int, default=2,
                      help="retries after a failed attempt "
                           "(max attempts = retries + 1)")
    crun.add_argument("--keep-going", action="store_true",
                      help="finish the sweep even when runs exhaust "
                           "their retries; failures stay journaled in "
                           "the manifest")
    crun.add_argument("--engine", action="store_true",
                      help="use the reference engine (supports "
                           "cooperative timeout cancellation)")
    crun.add_argument("--metrics", action="store_true",
                      help="collect per-run telemetry RunReports under "
                           "<dir>/metrics/ and write a sweep summary")
    crun.add_argument("--pass-cache", default="",
                      help="directory of a persistent functional-pass "
                           "cache shared by the sweep's workers "
                           "(incompatible with --engine)")
    crun.add_argument("--stack-pass", action="store_true",
                      help="precompute the sweep's functional passes "
                           "with one shared stack walk per trace before "
                           "dispatching workers (requires --pass-cache; "
                           "incompatible with --engine)")
    crun.add_argument("--sample", default="",
                      help="run every sweep job as a stratified "
                           "interval-sampling estimate: a sampling-plan "
                           "spec, '1' for defaults (fastpath pool "
                           "backend only; incompatible with --engine, "
                           "--metrics and --backend spool)")
    crun.add_argument("--sample-validate", action="store_true",
                      help="with --sample: every job also runs the "
                           "exact pass and refuses estimates whose "
                           "error bound is exceeded")
    crun.add_argument("--backend", choices=("pool", "spool"),
                      default="pool",
                      help="execution fabric: 'pool' (in-process worker "
                           "pool) or 'spool' (durable on-disk work "
                           "queue under <dir>/spool/; killing the "
                           "coordinator loses nothing and re-running "
                           "resumes)")
    crun.set_defaults(func=_cmd_campaign_run)

    cenq = csub.add_parser(
        "enqueue",
        help="materialize a sweep into <dir>/spool/ without running it",
    )
    cenq.add_argument("directory", help="campaign results directory")
    cenq.add_argument("--sizes-kb", default="4,16,64",
                      help="comma-separated per-cache sizes in KB")
    cenq.add_argument("--cycles-ns", default="20,40,80",
                      help="comma-separated cycle times in ns")
    cenq.add_argument("--assoc", type=int, default=1)
    cenq.add_argument("--block-words", type=int, default=4)
    cenq.add_argument("--traces", default="",
                      help="comma-separated subset of trace names")
    cenq.add_argument("--length", type=int, default=120_000)
    cenq.add_argument("--seed", type=int, default=0)
    cenq.add_argument("--engine", action="store_true",
                      help="workers will use the reference engine")
    cenq.add_argument("--pass-cache", default="",
                      help="workers will share this functional-pass "
                           "cache directory (incompatible with "
                           "--engine)")
    cenq.set_defaults(func=_cmd_campaign_enqueue)

    cwork = csub.add_parser(
        "worker",
        help="run one persistent lease-holding worker against an "
             "enqueued spool (SIGTERM drains gracefully)",
    )
    cwork.add_argument("directory", help="campaign results directory")
    cwork.add_argument("--name", default="",
                       help="worker identity recorded in leases "
                            "(default: host:pid)")
    cwork.add_argument("--ttl", type=float, default=30.0,
                       help="lease time-to-live in seconds; a heartbeat "
                            "stalled this long forfeits the lease")
    cwork.add_argument("--heartbeat", type=float, default=None,
                       help="renew the lease every N seconds from a "
                            "background thread while a job runs")
    cwork.add_argument("--max-jobs", type=int, default=None,
                       help="exit after publishing this many jobs")
    cwork.add_argument("--timeout", type=float, default=None,
                       help="per-run wall-clock timeout in seconds")
    cwork.add_argument("--retries", type=int, default=2,
                       help="retries after a failed attempt "
                            "(max attempts = retries + 1)")
    cwork.add_argument("--metrics", action="store_true",
                       help="persist per-run telemetry RunReports")
    cwork.set_defaults(func=_cmd_campaign_worker)

    cdrain = csub.add_parser(
        "drain",
        help="run workers until the spool empties; fold completions "
             "into the manifest",
    )
    cdrain.add_argument("directory", help="campaign results directory")
    cdrain.add_argument("--jobs", type=int, default=1,
                        help="concurrent workers draining the spool")
    cdrain.add_argument("--ttl", type=float, default=30.0,
                        help="lease time-to-live in seconds")
    cdrain.add_argument("--heartbeat", type=float, default=None,
                        help="background lease renewal period in "
                             "seconds")
    cdrain.add_argument("--timeout", type=float, default=None,
                        help="per-run wall-clock timeout in seconds")
    cdrain.add_argument("--retries", type=int, default=2,
                        help="retries after a failed attempt")
    cdrain.add_argument("--metrics", action="store_true",
                        help="persist per-run telemetry RunReports")
    cdrain.set_defaults(func=_cmd_campaign_drain)

    cstat = csub.add_parser(
        "status", help="print the campaign manifest journal"
    )
    cstat.add_argument("directory")
    cstat.add_argument("--json", action="store_true",
                       help="machine-readable output: manifest counts "
                            "plus spool/fabric blocks when a spool "
                            "exists")
    cstat.set_defaults(func=_cmd_campaign_status)

    crep = csub.add_parser(
        "report",
        help="aggregate stored RunReport metrics: slowest runs, stall "
             "breakdowns, throughput percentiles",
    )
    crep.add_argument("directory")
    crep.add_argument("--slowest", type=int, default=5,
                      help="how many slowest runs to list")
    crep.set_defaults(func=_cmd_campaign_report)

    cfsck = csub.add_parser(
        "fsck", help="validate every stored result's checksum"
    )
    cfsck.add_argument("directory")
    cfsck.add_argument("--repair", action="store_true",
                       help="quarantine corrupt files and delete stray "
                            "temp files instead of only reporting them")
    cfsck.set_defaults(func=_cmd_campaign_fsck)

    cache = sub.add_parser(
        "cache",
        help="maintain a persistent functional-pass cache directory",
    )
    cachesub = cache.add_subparsers(dest="cache_command", required=True)

    cstats = cachesub.add_parser(
        "stats", help="print the cache's on-disk footprint"
    )
    cstats.add_argument("directory", help="pass-cache directory")
    cstats.set_defaults(func=_cmd_cache_stats)

    cgc = cachesub.add_parser(
        "gc",
        help="evict least-recently-modified entries to fit budgets",
    )
    cgc.add_argument("directory", help="pass-cache directory")
    cgc.add_argument("--max-entries", type=int, default=None,
                     help="keep at most this many entries")
    cgc.add_argument("--max-bytes", type=int, default=None,
                     help="keep at most this many bytes of entries")
    cgc.set_defaults(func=_cmd_cache_gc)

    cverify = cachesub.add_parser(
        "verify",
        help="validate every entry's checksum and payload shape",
    )
    cverify.add_argument("directory", help="pass-cache directory")
    cverify.add_argument("--repair", action="store_true",
                         help="quarantine corrupt entries and delete "
                              "stray temp files instead of only "
                              "reporting them")
    cverify.set_defaults(func=_cmd_cache_verify)

    bench = sub.add_parser(
        "bench",
        help="run, record and ratchet benchmark measurements "
             "(append-only JSONL history with a MAD noise-band gate)",
    )
    benchsub = bench.add_subparsers(dest="bench_command", required=True)

    def _bench_identity_args(p) -> None:
        p.add_argument("--commit", default="",
                       help="commit id for new records (default: "
                            "REPRO_BENCH_COMMIT or git rev-parse)")
        p.add_argument("--host", default="",
                       help="host fingerprint override (default: "
                            "platform-derived)")

    brun = benchsub.add_parser(
        "run",
        help="run local bench suites with N repetitions; report (and "
             "optionally append) per-metric medians",
    )
    brun.add_argument("--suites", default="all",
                      help="comma-separated suite names (default: all)")
    brun.add_argument("--repeat", type=int, default=3,
                      help="repetitions per suite; the recorded value "
                           "is the median")
    brun.add_argument("--length", type=int, default=20_000,
                      help="trace length in references")
    brun.add_argument("--seed", type=int, default=0,
                      help="replacement seed")
    brun.add_argument("--history", default="",
                      help="append records to this JSONL history file")
    _bench_identity_args(brun)
    brun.set_defaults(func=_cmd_bench_run)

    brec = benchsub.add_parser(
        "record",
        help="ingest one raw BENCH_*.json document into common "
             "records ('-' reads stdin)",
    )
    brec.add_argument("raw", help="raw bench JSON path, or '-'")
    brec.add_argument("--history", default="",
                      help="append records to this JSONL history file")
    brec.add_argument("--out", default="",
                      help="also write the normalized records to this "
                           "JSON file (atomic)")
    brec.add_argument("--suite", default="",
                      help="suite name override (default: the "
                           "document's 'bench' key)")
    brec.add_argument("--repetitions", type=int, default=1,
                      help="repetitions the raw values summarize")
    _bench_identity_args(brec)
    brec.set_defaults(func=_cmd_bench_record)

    bdiff = benchsub.add_parser(
        "diff",
        help="gate one commit's records against the history's noise "
             "band; exit 1 on regression",
    )
    bdiff.add_argument("--history", required=True,
                       help="JSONL history file")
    bdiff.add_argument("--commit", default="",
                       help="candidate commit (default: the history's "
                            "last record)")
    bdiff.add_argument("--mad-scale", type=float, default=4.0,
                       help="noise-band width in MADs")
    bdiff.add_argument("--rel-floor", type=float, default=0.05,
                       help="minimum band as a fraction of the "
                            "baseline median")
    bdiff.add_argument("--min-baseline", type=int, default=1,
                       help="prior records needed before a metric "
                            "gates (fewer report 'new')")
    bdiff.add_argument("--host", default="",
                       help="compare against baselines from this host "
                            "fingerprint (default: the current host's)")
    bdiff.add_argument("--any-host", action="store_true",
                       help="compare against the whole history "
                            "regardless of which host recorded it")
    bdiff.set_defaults(func=_cmd_bench_diff)

    bhist = benchsub.add_parser(
        "history", help="print per-metric trajectories from a history"
    )
    bhist.add_argument("--history", required=True,
                       help="JSONL history file")
    bhist.add_argument("--metric", default="",
                       help="only this metric (name or suite.name)")
    bhist.add_argument("--last", type=int, default=10,
                       help="show at most this many recent records "
                            "per metric")
    bhist.set_defaults(func=_cmd_bench_history)
    return parser


def _parse_float_list(raw: str, flag: str) -> List[float]:
    from .errors import ConfigurationError

    values = []
    for item in raw.split(","):
        item = item.strip()
        if not item:
            raise ConfigurationError(f"{flag}: empty value in {raw!r}")
        try:
            values.append(float(item))
        except ValueError:
            raise ConfigurationError(f"{flag}: invalid number {item!r}")
    return values


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .lint import (
        Baseline, all_rules, find_repo_root, lint_paths, load_config,
        run_self_test,
    )
    from .lint.framework import collect_sources
    from .lint.rules_structure import write_fingerprints

    if args.self_test:
        ok, report = run_self_test()
        print(report)
        return 0 if ok else 1

    paths = [Path(p) for p in (args.paths or ["src"])]
    for path in paths:
        if not path.exists():
            print(f"repro-sim lint: error: no such path: {path}",
                  file=sys.stderr)
            return 2
    root = find_repo_root(paths[0])
    config = load_config(root)
    rules = all_rules(config)
    if args.rule:
        known = {r.rule_id for r in rules}
        unknown = [r for r in args.rule if r not in known]
        if unknown:
            print(
                f"repro-sim lint: error: unknown rule(s) "
                f"{', '.join(unknown)}; available: "
                f"{', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
        rules = [r for r in rules if r.rule_id in args.rule]

    if args.update_fingerprints:
        sources = collect_sources(paths, root)
        schemas = write_fingerprints(
            sources, config, root / config.fingerprints_path
        )
        print(f"fingerprints for {len(schemas)} schema(s) written to "
              f"{config.fingerprints_path}")
        return 0

    if args.why:
        from .lint.rules_interproc import explain_why

        rule_spec, _, path_filter = args.why.partition(":")
        try:
            chains = explain_why(
                collect_sources(paths, root), config,
                rule_spec.strip(), path_filter.strip() or None,
            )
        except ValueError as exc:
            print(f"repro-sim lint: error: {exc}", file=sys.stderr)
            return 2
        if chains:
            print("\n".join(chains))
        else:
            scope = f" under {path_filter.strip()}" if path_filter \
                else ""
            print(f"no {rule_spec.strip()} chains{scope} in the "
                  f"analyzed files")
        return 0

    baseline_path = (
        Path(args.baseline) if args.baseline
        else root / "lint-baseline.json"
    )
    result = lint_paths(
        paths, root=root, config=config, rules=rules,
        use_cache=not args.no_cache,
        baseline_path=baseline_path,
    )
    if args.write_baseline:
        sources = {s.rel: s for s in collect_sources(paths, root)}
        pairs = [
            (v, sources[v.path].source_line(v.line)
             if v.path in sources else "")
            for v in list(result.violations) + list(result.baselined)
        ]
        Baseline.from_violations(pairs).save(baseline_path)
        print(f"{len(pairs)} violation(s) baselined to {baseline_path}")
        return 0
    graph_stats = None
    if args.graph_stats:
        from .lint.projectgraph import build_project_graph

        graph = build_project_graph(
            collect_sources(paths, root), config
        )
        graph_stats = graph.stats
    if args.format == "json":
        payload = result.to_dict()
        if graph_stats is not None:
            payload["graph"] = graph_stats.to_dict()
        print(_json.dumps(payload, indent=1))
    else:
        print(result.render())
        if graph_stats is not None:
            print(graph_stats.render())
    return 0 if result.clean else 1


def _spool_spec_from_args(args: argparse.Namespace):
    """Build the durable SweepSpec the spool subcommands share."""
    from .sim.workqueue import SweepSpec

    if args.pass_cache and args.engine:
        from .errors import ConfigurationError

        raise ConfigurationError(
            "--pass-cache caches fastpath functional passes and cannot "
            "be combined with --engine"
        )
    simulator = "engine" if args.engine else (
        "cached" if args.pass_cache else "fastpath"
    )
    return SweepSpec(
        sizes_kb=tuple(_parse_float_list(args.sizes_kb, "--sizes-kb")),
        cycles_ns=tuple(_parse_float_list(args.cycles_ns, "--cycles-ns")),
        assoc=args.assoc,
        block_words=args.block_words,
        trace_names=tuple(
            t.strip() for t in args.traces.split(",")
        ) if args.traces else (),
        length=args.length,
        seed=args.seed,
        simulator=simulator,
        pass_cache_dir=args.pass_cache,
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from .errors import CampaignError, ConfigurationError
    from .sim.campaign import Campaign
    from .sim.resilience import CampaignExecutor, RetryPolicy, sweep_jobs

    try:
        names = tuple(
            t.strip() for t in args.traces.split(",")
        ) if args.traces else ALL_TRACES
        suite = build_suite(length=args.length, names=names, seed=args.seed)
        configs = [
            baseline_config(
                cache_size_bytes=int(size_kb * KB),
                block_words=args.block_words,
                assoc=args.assoc,
                cycle_ns=cycle_ns,
            )
            for size_kb in _parse_float_list(args.sizes_kb, "--sizes-kb")
            for cycle_ns in _parse_float_list(args.cycles_ns, "--cycles-ns")
        ]
    except ConfigurationError as exc:
        print(f"repro-sim campaign run: error: {exc}", file=sys.stderr)
        return 2
    if args.pass_cache and args.engine:
        print("repro-sim campaign run: error: --pass-cache caches "
              "fastpath functional passes and cannot be combined with "
              "--engine", file=sys.stderr)
        return 2
    if args.stack_pass:
        if args.engine:
            print("repro-sim campaign run: error: --stack-pass "
                  "precomputes fastpath functional passes and cannot "
                  "be combined with --engine", file=sys.stderr)
            return 2
        if not args.pass_cache:
            print("repro-sim campaign run: error: --stack-pass needs "
                  "--pass-cache to hand the precomputed streams to the "
                  "sweep's workers", file=sys.stderr)
            return 2
    sample_spec = args.sample or ("1" if args.sample_validate else "")
    if sample_spec:
        if args.engine:
            print("repro-sim campaign run: error: --sample estimates "
                  "through the fastpath and cannot be combined with "
                  "--engine", file=sys.stderr)
            return 2
        if args.backend == "spool":
            print("repro-sim campaign run: error: --sample is not "
                  "supported on the spool backend yet; use the pool "
                  "backend", file=sys.stderr)
            return 2
        if args.metrics:
            print("repro-sim campaign run: error: --sample produces "
                  "estimates with no cycle ledger; per-run --metrics "
                  "RunReports cannot check conservation on them",
                  file=sys.stderr)
            return 2
        from .errors import SamplingError
        from .sim.sampling import SamplingPlan

        try:
            plan = SamplingPlan.parse(sample_spec)
        except SamplingError as exc:
            print(f"repro-sim campaign run: error: {exc}",
                  file=sys.stderr)
            return 2
        print(f"sampling: {plan.describe()}"
              + (" (validating every run)" if args.sample_validate
                 else ""))
    if sample_spec:
        import functools

        from .sim.sampling import sampled_simulate

        simulate_fn = functools.partial(
            sampled_simulate, plan_spec=sample_spec,
            cache_dir=args.pass_cache, validate=args.sample_validate,
        )
    elif args.pass_cache:
        import functools

        from .sim.passcache import cached_fast_simulate

        simulate_fn = functools.partial(
            cached_fast_simulate, cache_dir=args.pass_cache,
        )
    else:
        simulate_fn = simulate if args.engine else fast_simulate
    if args.stack_pass:
        # One shared walk per trace fills the pass cache up front; the
        # workers below then find every stream already materialized.
        from .core.sweep import run_functional_passes
        from .sim.passcache import PassCache
        from .sim.stackpass import StackPassStats

        stack_stats = StackPassStats()
        run_functional_passes(
            [
                (config, trace, args.seed)
                for config in configs
                for trace in suite.values()
            ],
            cache=PassCache(args.pass_cache),
            strategy="stack",
            stack_stats=stack_stats,
        )
        print(f"stack pass: {stack_stats.walks} shared walk(s), "
              f"{stack_stats.derived_streams} stream(s) derived, "
              f"{stack_stats.reused_streams} reused, "
              f"{stack_stats.fallback_passes} fallback pass(es)")
    jobs = sweep_jobs(
        configs, list(suite.values()), simulate_fn=simulate_fn,
        seed=args.seed,
    )
    campaign = Campaign(args.directory)
    if args.backend == "spool":
        # Persist the sweep description so independently-launched
        # `campaign worker` processes can rebuild the same job list.
        from .sim.workqueue import WorkQueue

        try:
            WorkQueue.for_campaign(campaign).save_spec(
                _spool_spec_from_args(args)
            )
        except (CampaignError, ConfigurationError) as exc:
            print(f"repro-sim campaign run: error: {exc}", file=sys.stderr)
            return 2
    executor = CampaignExecutor(
        campaign,
        jobs=args.jobs,
        timeout_s=args.timeout,
        retry=RetryPolicy(max_attempts=args.retries + 1),
        keep_going=args.keep_going,
        collect_metrics=args.metrics,
        backend=args.backend,
    )
    try:
        report = executor.run_sweep(jobs)
    except CampaignError as exc:
        print(executor.manifest.render())
        print(f"campaign aborted: {exc}")
        return 1
    print(report.render())
    if executor.fabric:
        fabric = executor.fabric
        print(f"fabric: {fabric.get('workers', 0)} worker(s), "
              f"{fabric.get('leases_issued', 0)} lease(s) issued, "
              f"{fabric.get('leases_reclaimed', 0)} reclaimed, "
              f"{fabric.get('jobs_poisoned', 0)} poisoned")
    return 0 if report.all_ok else 1


def _cmd_campaign_enqueue(args: argparse.Namespace) -> int:
    from .errors import CampaignError, ConfigurationError
    from .sim.campaign import Campaign
    from .sim.workqueue import WorkQueue

    campaign = Campaign(args.directory)
    queue = WorkQueue.for_campaign(campaign)
    try:
        ids = queue.enqueue(_spool_spec_from_args(args))
    except (CampaignError, ConfigurationError) as exc:
        print(f"repro-sim campaign enqueue: error: {exc}",
              file=sys.stderr)
        return 2
    print(f"spooled {len(ids)} job(s) into {queue.directory}")
    print(queue.render_status())
    return 0


def _cmd_campaign_worker(args: argparse.Namespace) -> int:
    from .errors import CampaignError
    from .sim.campaign import Campaign
    from .sim.resilience import RetryPolicy
    from .sim.workqueue import SpoolWorker, WorkQueue

    campaign = Campaign(args.directory)
    queue = WorkQueue.for_campaign(campaign)
    try:
        spec = queue.load_spec()
    except CampaignError as exc:
        print(f"repro-sim campaign worker: error: {exc}", file=sys.stderr)
        return 2
    jobs = spec.build_jobs()
    ids = queue.enqueue_jobs(jobs)  # idempotent: completes the spool
    jobs_by_id = {
        identifier: (index, job)
        for index, (identifier, job) in enumerate(zip(ids, jobs))
    }
    worker = SpoolWorker(
        queue,
        campaign,
        jobs_by_id,
        name=args.name,
        ttl_s=args.ttl,
        heartbeat_s=args.heartbeat,
        timeout_s=args.timeout,
        retry=RetryPolicy(max_attempts=args.retries + 1),
        collect_metrics=args.metrics,
    )
    worker.install_signal_handlers()
    processed = worker.run(max_jobs=args.max_jobs)
    queue.sync_manifest(campaign)
    print(f"worker {worker.name}: published {processed} job(s) in "
          f"{worker.lifetime_s:.1f}s")
    print(queue.render_status())
    return 0


def _cmd_campaign_drain(args: argparse.Namespace) -> int:
    from .errors import CampaignError
    from .sim.campaign import Campaign
    from .sim.resilience import RetryPolicy
    from .sim.workqueue import WorkQueue, drain_spool

    campaign = Campaign(args.directory)
    try:
        manifest = drain_spool(
            campaign,
            workers=args.jobs,
            ttl_s=args.ttl,
            heartbeat_s=args.heartbeat,
            timeout_s=args.timeout,
            retry=RetryPolicy(max_attempts=args.retries + 1),
            collect_metrics=args.metrics,
        )
    except CampaignError as exc:
        print(f"repro-sim campaign drain: error: {exc}", file=sys.stderr)
        return 2
    print(manifest.render())
    print(WorkQueue.for_campaign(campaign).render_status())
    return 0 if not manifest.incomplete() else 1


def _campaign_status_doc(campaign, manifest) -> dict:
    """Machine-readable campaign status, from durable state only.

    Everything here comes off disk (manifest journal, stored results,
    spool occupancy, published done records) — never from the
    observer-local counters of a live :class:`WorkQueue`, which are
    zeros in a fresh status process.
    """
    doc = {
        "directory": str(campaign.directory),
        "counts": manifest.counts(),
        "runs": len(manifest.runs),
        "stored_results": len(campaign),
        "complete": bool(manifest.runs) and not manifest.incomplete(),
    }
    if campaign.spool_dir.is_dir():
        from .sim.workqueue import WorkQueue

        queue = WorkQueue.for_campaign(campaign)
        done = queue.done_records()
        doc["spool"] = queue.status()
        doc["fabric"] = {
            "done_records": len(done),
            "max_lease_epoch": max((r.epoch for r in done), default=0),
            "total_attempts": sum(r.attempts for r in done),
            "quarantines": sum(r.quarantines for r in done),
        }
    return doc


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    import json as json_mod

    from .sim.campaign import Campaign
    from .sim.resilience import CampaignManifest

    campaign = Campaign(args.directory)
    manifest = CampaignManifest.for_campaign(campaign)
    if args.json:
        doc = _campaign_status_doc(campaign, manifest)
        print(json_mod.dumps(doc, indent=2, sort_keys=True))
        if not manifest.runs:
            return 0
        return 0 if doc["complete"] else 1
    if not manifest.runs:
        print(f"{args.directory}: no manifest "
              f"({len(campaign)} result file(s) on disk)")
    else:
        print(manifest.render())
        stored = len(campaign)
        if stored != len(manifest.runs):
            print(f"note: {stored} result file(s) on disk vs "
                  f"{len(manifest.runs)} journaled run(s)")
    if campaign.spool_dir.is_dir():
        from .sim.workqueue import WorkQueue

        print(WorkQueue.for_campaign(campaign).render_status())
    if not manifest.runs:
        return 0
    return 0 if not manifest.incomplete() else 1


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from .errors import CorruptResultError
    from .sim.campaign import Campaign
    from .sim.telemetry import RunReport, aggregate_reports, render_summary

    campaign = Campaign(args.directory)
    reports = []
    skipped = 0
    for payload in campaign.load_reports():
        try:
            reports.append(RunReport.from_dict(payload))
        except CorruptResultError as exc:
            skipped += 1
            print(f"note: skipping invalid run report: {exc}",
                  file=sys.stderr)
    if not reports:
        print(f"{args.directory}: no metrics stored "
              f"(run the sweep with --metrics)")
        return 1
    if skipped:
        print(f"note: {skipped} invalid run report(s) skipped",
              file=sys.stderr)
    summary = aggregate_reports(reports, slowest=args.slowest)
    print(render_summary(summary))
    return 0 if summary["all_conserved"] else 1


def _cmd_campaign_fsck(args: argparse.Namespace) -> int:
    from .sim.campaign import Campaign

    campaign = Campaign(args.directory)
    report = campaign.fsck(repair=args.repair)
    print(report.render())
    if report.clean or args.repair:
        return 0
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.registry import run_all

    settings = _settings_from(args)
    lines = [
        "# Reproduction report — Performance Tradeoffs in Cache Design",
        "",
        f"Traces: {', '.join(settings.trace_names)} at "
        f"{settings.trace_length} references; "
        f"{'full' if settings.full else 'reduced'} grids.",
        "",
    ]
    for result in run_all(settings):
        lines.append(f"## {result.experiment_id}: {result.title}")
        lines.append("")
        lines.append("```")
        lines.append(result.text)
        lines.append("```")
        lines.append("")
        print(f"done: {result.experiment_id}")
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
    print(f"report written to {args.output}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .core.advisor import LadderRung, advisor_table, recommend_design
    from .core.sweep import run_speed_size_sweep
    from .errors import SamplingError
    from .sim.replaykernel import KernelStats

    rungs = []
    for text in args.rungs:
        total_kb, cycle = text.split(":")
        rungs.append(LadderRung(int(total_kb) * KB, float(cycle)))
    suite = build_suite(
        length=args.length, names=tuple(args.traces.split(",")),
        seed=args.seed,
    )
    # Grid must bracket the ladder: derive axes from the rungs.
    sizes_each = sorted({max(r.total_size_bytes // 2, KB) for r in rungs})
    extended = sorted(
        {s // 2 for s in sizes_each} | set(sizes_each)
        | {s * 2 for s in sizes_each}
    )
    cycles = sorted({r.cycle_ns for r in rungs} | {20.0, 80.0})
    pass_cache = None
    if args.pass_cache:
        from .sim.passcache import PassCache

        pass_cache = PassCache(args.pass_cache)
    kernel_stats = KernelStats()
    stack_stats = None
    if args.stack_pass:
        from .sim.stackpass import StackPassStats

        stack_stats = StackPassStats()
    sampling = None
    sampling_stats = None
    if args.sample or args.sample_validate:
        import dataclasses

        from .sim.sampling import SamplingPlan, SamplingStats

        try:
            sampling = SamplingPlan.parse(args.sample or "1")
        except SamplingError as exc:
            print(f"repro-sim advise: error: {exc}", file=sys.stderr)
            return 2
        if args.sample_validate:
            sampling = dataclasses.replace(sampling, validate=True)
        sampling_stats = SamplingStats()
    try:
        grid = run_speed_size_sweep(
            suite, extended, cycles, seed=args.seed,
            pass_cache=pass_cache,
            use_replay_kernel=not args.scalar_replay,
            replay_jobs=args.replay_jobs,
            kernel_stats=kernel_stats,
            functional_strategy="stack" if args.stack_pass else "scalar",
            stack_stats=stack_stats,
            sampling=sampling,
            sampling_stats=sampling_stats,
        )
    except SamplingError as exc:
        print(f"repro-sim advise: error: {exc}", file=sys.stderr)
        return 1
    print(advisor_table(recommend_design(grid, rungs)))
    print(f"replay: {kernel_stats.batch_outcomes} batch outcome(s), "
          f"{kernel_stats.scalar_replays} scalar replay(s), "
          f"{kernel_stats.vectorized_events:,} vectorized / "
          f"{kernel_stats.scalar_events:,} scalar event(s)")
    if stack_stats is not None:
        print(f"stack pass: {stack_stats.walks} shared walk(s), "
              f"{stack_stats.derived_streams} stream(s) derived, "
              f"{stack_stats.reused_streams} reused, "
              f"{stack_stats.fallback_passes} fallback pass(es)")
    if sampling_stats is not None:
        line = (f"sampling: {sampling.describe()}; "
                f"{sampling_stats.selections} selection(s), "
                f"{sampling_stats.representatives} representative(s), "
                f"{sampling_stats.refs_sampled:,} / "
                f"{sampling_stats.refs_full:,} refs simulated")
        if sampling_stats.validations:
            line += (f", max true error "
                     f"{sampling_stats.true_error_max:.4f} over "
                     f"{sampling_stats.validations} validation(s)")
        print(line)
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    from .sim.passcache import PassCache

    stats = PassCache(args.directory).disk_stats()
    print(f"{args.directory}: {stats['entries']} entr"
          f"{'y' if stats['entries'] == 1 else 'ies'}, "
          f"{stats['bytes']:,} bytes, "
          f"{stats['quarantined']} quarantined file(s)")
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    from .sim.passcache import PassCache

    cache = PassCache(args.directory)
    if args.max_entries is None and args.max_bytes is None:
        print("repro-sim cache gc: error: pass --max-entries and/or "
              "--max-bytes", file=sys.stderr)
        return 2
    removed = cache.gc(
        max_entries=args.max_entries, max_bytes=args.max_bytes
    )
    stats = cache.disk_stats()
    print(f"evicted {len(removed)} entr"
          f"{'y' if len(removed) == 1 else 'ies'}; "
          f"{stats['entries']} remain ({stats['bytes']:,} bytes)")
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    from .sim.passcache import PassCache

    report = PassCache(args.directory).verify(repair=args.repair)
    print(report.render())
    if report.clean or args.repair:
        return 0
    return 1


def _bench_identity(args: argparse.Namespace):
    """(commit, host) for new bench records, honoring CLI overrides."""
    from .sim.benchhistory import current_commit, host_fingerprint

    commit = args.commit or current_commit()
    host = args.host or host_fingerprint()
    return commit, host


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError
    from .sim.benchhistory import (
        BENCH_SUITES,
        BenchHistory,
        run_bench_suites,
    )

    names = (
        sorted(BENCH_SUITES)
        if args.suites in ("", "all")
        else [s.strip() for s in args.suites.split(",") if s.strip()]
    )
    commit, host = _bench_identity(args)
    try:
        records, noise = run_bench_suites(
            names, repeat=args.repeat, length=args.length,
            seed=args.seed, commit=commit, host=host,
        )
    except ConfigurationError as exc:
        print(f"repro-sim bench run: error: {exc}", file=sys.stderr)
        return 2
    for record in records:
        spread = noise.get((record.suite, record.metric), 0.0)
        print(f"{record.suite}.{record.metric:<16} "
              f"{record.value:>12.6g} {record.unit:<7} "
              f"(median of {record.repetitions}, MAD {spread:.3g})")
    if args.history:
        written = BenchHistory(args.history).append(records)
        print(f"{written} record(s) appended to {args.history} "
              f"@ {commit or '(no commit)'}")
    return 0


def _cmd_bench_record(args: argparse.Namespace) -> int:
    import json as json_mod

    from .errors import CorruptResultError
    from .sim.benchhistory import (
        BenchHistory,
        ingest_raw_bench,
        record_to_dict,
    )
    from .sim.campaign import atomic_write_text

    if args.raw == "-":
        raw_text = sys.stdin.read()
    else:
        try:
            with open(args.raw, "r", encoding="utf-8") as handle:
                raw_text = handle.read()
        except OSError as exc:
            print(f"repro-sim bench record: error: {exc}", file=sys.stderr)
            return 2
    try:
        payload = json_mod.loads(raw_text)
    except json_mod.JSONDecodeError as exc:
        print(f"repro-sim bench record: error: malformed JSON: {exc}",
              file=sys.stderr)
        return 2
    commit, host = _bench_identity(args)
    try:
        records = ingest_raw_bench(
            payload, commit=commit, host=host,
            repetitions=args.repetitions, suite=args.suite,
        )
    except CorruptResultError as exc:
        print(f"repro-sim bench record: error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        from pathlib import Path

        doc = [record_to_dict(record) for record in records]
        atomic_write_text(
            Path(args.out), json_mod.dumps(doc, indent=2, sort_keys=True)
        )
    if args.history:
        try:
            BenchHistory(args.history).append(records)
        except CorruptResultError as exc:
            print(f"repro-sim bench record: error: {exc}", file=sys.stderr)
            return 2
    print(f"{len(records)} record(s) from suite "
          f"{records[0].suite!r} @ {commit or '(no commit)'}")
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError, CorruptResultError
    from .sim.benchhistory import (
        BenchHistory,
        DiffPolicy,
        diff_history,
        host_fingerprint,
        render_diff,
    )

    try:
        records = BenchHistory(args.history).load()
        policy = DiffPolicy(
            mad_scale=args.mad_scale,
            rel_floor=args.rel_floor,
            min_baseline=args.min_baseline,
        )
    except (CorruptResultError, ConfigurationError) as exc:
        print(f"repro-sim bench diff: error: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"{args.history}: no bench history")
        return 0
    if not args.any_host:
        # Timings from other machines are noise, not baseline: gate
        # against records from one host unless explicitly widened.
        host = args.host or host_fingerprint()
        records = [r for r in records if r.host == host]
        if not records:
            print(f"{args.history}: no bench history from host {host} "
                  f"(use --any-host to compare across hosts)")
            return 0
    commit = args.commit or records[-1].commit
    deltas = diff_history(records, commit=commit, policy=policy)
    print(render_diff(deltas, commit))
    regressions = [d for d in deltas if d.status == "regression"]
    return 1 if regressions else 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    from .errors import CorruptResultError
    from .sim.benchhistory import BenchHistory, sparkline

    try:
        series = BenchHistory(args.history).series()
    except CorruptResultError as exc:
        print(f"repro-sim bench history: error: {exc}", file=sys.stderr)
        return 2
    if not series:
        print(f"{args.history}: no bench history")
        return 0
    for (suite, metric), records in sorted(series.items()):
        if args.metric and f"{suite}.{metric}" != args.metric \
                and metric != args.metric:
            continue
        trend = sparkline(
            [r.value for r in records],
            width=args.last if args.last > 0 else len(records),
        )
        print(f"{suite}.{metric} ({records[-1].unit or '-'}, "
              f"{records[-1].direction})  {trend}:")
        for record in records[-args.last:]:
            print(f"  {record.commit or '(no commit)':<14} "
                  f"{record.value:>12.6g}  x{record.repetitions} "
                  f"on {record.host or '(unknown host)'}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
