"""Post-hoc analyses over traces and simulations: 3C miss
classification and per-process profiling."""

from .per_process import ProcessProfile, process_table, profile_processes
from .reuse import ReuseProfile, reuse_profile
from .threec import (
    ThreeCBreakdown,
    classify_read_misses,
    conflict_removed_by_assoc,
)

__all__ = [
    "ReuseProfile",
    "reuse_profile",
    "ProcessProfile",
    "process_table",
    "profile_processes",
    "ThreeCBreakdown",
    "classify_read_misses",
    "conflict_removed_by_assoc",
]
