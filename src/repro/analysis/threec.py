"""Three-C miss classification: compulsory / capacity / conflict.

Hill's decomposition (the paper cites his thesis [8] for the
associativity results) explains *why* the §4 curves look the way they
do: set associativity can only remove *conflict* misses, so its benefit
is bounded by the conflict share — which this module measures directly.

Definitions, per read reference:

* **compulsory** — the block has never been touched (an infinite cache
  would miss);
* **capacity** — not compulsory, but a fully-associative LRU cache of
  the same capacity misses too;
* **conflict** — the real (set-associative or direct-mapped) cache
  misses although the fully-associative cache of equal capacity hits.

Conflict counts can be negative in principle (random replacement or
Belady anomalies can make the real cache beat FA-LRU on some streams);
they are reported as-is rather than clamped, since that is itself
informative.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Set, Tuple

from ..cache.cache import Cache
from ..core.geometry import CacheGeometry
from ..core.policy import CachePolicy, ReplacementKind
from ..errors import AnalysisError
from ..trace.record import RefKind, Trace


@dataclass(frozen=True)
class ThreeCBreakdown:
    """Result of classifying one cache's read misses."""

    n_reads: int
    compulsory: int
    capacity: int
    conflict: int

    @property
    def total_misses(self) -> int:
        return self.compulsory + self.capacity + self.conflict

    @property
    def miss_ratio(self) -> float:
        return self.total_misses / self.n_reads if self.n_reads else 0.0

    @property
    def conflict_share(self) -> float:
        """Fraction of misses that associativity could remove."""
        total = self.total_misses
        return self.conflict / total if total else 0.0


class _FullyAssociativeLRU:
    """Minimal FA-LRU block cache for the capacity baseline."""

    def __init__(self, n_blocks: int) -> None:
        if n_blocks < 1:
            raise AnalysisError(f"capacity must be >= 1 block: {n_blocks}")
        self.n_blocks = n_blocks
        self._blocks: "OrderedDict[Tuple[int, int], None]" = OrderedDict()

    def access(self, key: Tuple[int, int]) -> bool:
        if key in self._blocks:
            self._blocks.move_to_end(key)
            return True
        self._blocks[key] = None
        if len(self._blocks) > self.n_blocks:
            self._blocks.popitem(last=False)
        return False


def classify_read_misses(
    trace: Trace,
    geometry: CacheGeometry,
    policy: Optional[CachePolicy] = None,
    kinds: Optional[Iterable[RefKind]] = None,
    seed: int = 0,
    honor_warm_boundary: bool = True,
) -> ThreeCBreakdown:
    """Classify the read misses of one cache over ``trace``.

    ``kinds`` filters the reference stream — pass ``(RefKind.IFETCH,)``
    for an instruction cache, ``(RefKind.LOAD,)`` (optionally with
    stores, which still disturb state) for a data cache, or leave unset
    for a unified view of all reads.  Stores are *applied* to the real
    cache (they change its state) but never classified.
    """
    policy = policy or CachePolicy(replacement=ReplacementKind.LRU)
    wanted: Set[int] = {
        int(k) for k in (kinds or (RefKind.IFETCH, RefKind.LOAD))
    }
    real = Cache(geometry, policy, seed=seed)
    fa = _FullyAssociativeLRU(geometry.n_blocks)
    touched: Set[Tuple[int, int]] = set()
    offset_bits = geometry.offset_bits
    store = int(RefKind.STORE)
    warm = trace.warm_boundary if honor_warm_boundary else 0
    n_reads = real_misses = compulsory = capacity = 0
    kinds_list, addrs_list, pids_list = trace.as_lists()
    for index, (kind, addr, pid) in enumerate(
        zip(kinds_list, addrs_list, pids_list)
    ):
        if kind not in wanted and kind != store:
            continue
        key = (pid, addr >> offset_bits)
        if kind == store:
            # Stores disturb all three models' state but are never
            # classified (the paper's miss metric is reads only).
            real.access_write(pid, addr)
            fa.access(key)
            touched.add(key)
            continue
        real_hit = real.access_read(pid, addr).hit
        fa_hit = fa.access(key)
        new_block = key not in touched
        touched.add(key)
        if index < warm:
            continue
        n_reads += 1
        if not real_hit:
            real_misses += 1
        # Classic 3C: compulsory and capacity are organization
        # independent — they count the infinite cache's and the FA-LRU
        # cache's misses.  Conflict is whatever the real cache adds.
        if new_block:
            compulsory += 1
        elif not fa_hit:
            capacity += 1
    return ThreeCBreakdown(
        n_reads=n_reads,
        compulsory=compulsory,
        capacity=capacity,
        conflict=real_misses - compulsory - capacity,
    )


def conflict_removed_by_assoc(
    trace: Trace,
    size_bytes: int,
    block_words: int = 4,
    assocs: Tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 0,
) -> dict:
    """Misses per set size, with the FA-LRU capacity floor.

    The §4 framing quantified: as associativity rises at constant
    capacity, conflict misses shrink toward the capacity floor.
    Returns ``{assoc: ThreeCBreakdown}``.
    """
    results = {}
    for assoc in assocs:
        geometry = CacheGeometry(
            size_bytes=size_bytes, block_words=block_words, assoc=assoc
        )
        results[assoc] = classify_read_misses(
            trace, geometry, seed=seed
        )
    return results
