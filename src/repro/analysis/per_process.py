"""Per-process cache behaviour inside a multiprogrammed trace.

The paper's traces "exhibit real multiprogramming behaviour"; its
simulator gathered hundreds of statistics per run.  This module recovers
the per-process view from a multiprogrammed simulation: which processes
miss, how much of the traffic each contributes, and how much of each
process's misses are self-inflicted versus caused by the *other*
processes flushing its blocks between quanta (the multiprogramming tax).

The tax is measured by re-running each process's references in
isolation (same organization, private cache) and differencing the miss
counts — the classic dedicated-versus-shared comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cache.cache import Cache
from ..errors import AnalysisError
from ..sim.config import SystemConfig
from ..trace.record import RefKind, Trace
from ..core.report import format_table


@dataclass
class ProcessProfile:
    """Cache behaviour of one process within (and without) the mix."""

    pid: int
    refs: int = 0
    reads: int = 0
    read_misses_shared: int = 0
    read_misses_private: int = 0

    @property
    def shared_miss_ratio(self) -> float:
        return self.read_misses_shared / self.reads if self.reads else 0.0

    @property
    def private_miss_ratio(self) -> float:
        return self.read_misses_private / self.reads if self.reads else 0.0

    @property
    def multiprogramming_tax(self) -> float:
        """Extra miss ratio attributable to sharing the cache."""
        return self.shared_miss_ratio - self.private_miss_ratio


def _run(
    trace: Trace,
    config: SystemConfig,
    seed: int,
    only_pid: Optional[int],
    field: str,
    profiles: Dict[int, ProcessProfile],
) -> None:
    l1 = config.l1
    policy = l1.policy
    if l1.unified:
        icache = dcache = Cache(l1.d_geometry, policy, seed=seed)
    else:
        assert l1.i_geometry is not None
        icache = Cache(l1.i_geometry, policy, seed=seed + 101)
        dcache = Cache(l1.d_geometry, policy, seed=seed)
    ifetch = int(RefKind.IFETCH)
    store = int(RefKind.STORE)
    warm = trace.warm_boundary
    kinds, addrs, pids = trace.as_lists()
    for index, (kind, addr, pid) in enumerate(zip(kinds, addrs, pids)):
        if only_pid is not None and pid != only_pid:
            continue
        profile = profiles.setdefault(pid, ProcessProfile(pid=pid))
        measured = index >= warm
        if measured and field == "shared":
            profile.refs += 1
        if kind == store:
            dcache.access_write(pid, addr)
            continue
        cache = icache if kind == ifetch else dcache
        hit = cache.access_read(pid, addr).hit
        if not measured:
            continue
        if field == "shared":
            profile.reads += 1
            if not hit:
                profile.read_misses_shared += 1
        elif not hit:
            profile.read_misses_private += 1


def profile_processes(
    trace: Trace, config: SystemConfig, seed: int = 0
) -> List[ProcessProfile]:
    """Profile every process of a multiprogrammed trace.

    Runs the shared simulation once, then one private run per process
    (same organization, the process alone), and returns profiles sorted
    by pid.
    """
    if len(trace) == 0:
        raise AnalysisError("empty trace")
    profiles: Dict[int, ProcessProfile] = {}
    _run(trace, config, seed, None, "shared", profiles)
    for pid in sorted(profiles):
        _run(trace, config, seed, pid, "private", profiles)
    return [profiles[pid] for pid in sorted(profiles)]


def process_table(profiles: List[ProcessProfile]) -> str:
    """Render the per-process profile as an aligned table."""
    rows = []
    for p in profiles:
        rows.append([
            p.pid, p.refs, p.reads,
            p.shared_miss_ratio, p.private_miss_ratio,
            p.multiprogramming_tax,
        ])
    return format_table(
        ["PID", "Refs", "Reads", "SharedMiss", "PrivateMiss", "MP tax"],
        rows,
        title="Per-process cache behaviour (shared mix vs private cache)",
        precision=4,
    )
