"""Reuse-distance (LRU stack distance) analysis.

Mattson's stack algorithm underlies every miss-ratio-versus-size curve
in the literature, including Figure 3-1's: for an LRU fully-associative
cache of C blocks, a reference misses exactly when its *reuse distance*
— the number of distinct blocks touched since its previous use — is at
least C.  One pass over a trace therefore yields the whole
miss-ratio-versus-capacity curve at block granularity.

The implementation is the classic O(N log N) reduction: keep each
block's last-use timestamp, mark those timestamps in a Fenwick (binary
indexed) tree, and the reuse distance of a reference is the count of
marked timestamps after its block's previous use.  The calibration
notes (docs/calibration.md) use these histograms to compare the
synthetic traces' locality against the shapes the paper's figures
require; `tests/analysis/test_reuse.py` pins the algorithm against a
brute-force oracle and against the fully-associative simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..trace.record import RefKind, Trace

#: Histogram bucket index reserved for first touches (infinite distance).
COLD = -1


class _Fenwick:
    """Binary indexed tree over time indices (prefix sums of marks)."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)
        self.size = size

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self.size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix(self, index: int) -> int:
        """Sum of marks at positions [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


@dataclass
class ReuseProfile:
    """Reuse-distance histogram of one reference stream.

    ``histogram[d]`` counts references whose distance is exactly ``d``
    distinct blocks; ``cold`` counts first touches.
    """

    histogram: Dict[int, int]
    cold: int
    n_refs: int
    block_words: int

    def miss_ratio_at(self, capacity_blocks: int) -> float:
        """Miss ratio of a fully-associative LRU cache of that capacity.

        A reference hits iff its reuse distance is strictly below the
        capacity; cold references always miss.
        """
        if capacity_blocks < 1:
            raise AnalysisError("capacity must be at least one block")
        if self.n_refs == 0:
            return 0.0
        misses = self.cold + sum(
            count for distance, count in self.histogram.items()
            if distance >= capacity_blocks
        )
        return misses / self.n_refs

    def miss_ratio_curve(
        self, capacities_blocks: Sequence[int]
    ) -> List[Tuple[int, float]]:
        """The miss-ratio-versus-capacity curve at the given points."""
        return [
            (capacity, self.miss_ratio_at(capacity))
            for capacity in sorted(capacities_blocks)
        ]

    @property
    def median_distance(self) -> Optional[int]:
        """Median finite reuse distance (None if everything is cold)."""
        total = sum(self.histogram.values())
        if total == 0:
            return None
        seen = 0
        for distance in sorted(self.histogram):
            seen += self.histogram[distance]
            if 2 * seen >= total:
                return distance
        return None


def reuse_profile(
    trace: Trace,
    block_words: int = 4,
    kinds: Optional[Sequence[RefKind]] = None,
    honor_warm_boundary: bool = False,
) -> ReuseProfile:
    """Compute the reuse-distance histogram of a trace.

    Distances are measured over ``(pid, block)`` identities at the given
    block granularity.  ``kinds`` filters which references are profiled
    (all three kinds by default — every access updates recency).  With
    ``honor_warm_boundary`` the histogram only counts references past the
    trace's warm boundary, while earlier references still establish
    recency (matching how the simulators measure).
    """
    if block_words < 1:
        raise AnalysisError(f"block size must be >= 1 word: {block_words}")
    offset_bits = max(0, block_words - 1).bit_length() if block_words > 1 else 0
    if (1 << offset_bits) != block_words:
        raise AnalysisError(f"block size must be a power of two: {block_words}")
    wanted = {int(k) for k in (kinds or
                               (RefKind.IFETCH, RefKind.LOAD, RefKind.STORE))}
    kinds_list, addrs_list, pids_list = trace.as_lists()
    n = len(kinds_list)
    tree = _Fenwick(n)
    last_use: Dict[Tuple[int, int], int] = {}
    histogram: Dict[int, int] = {}
    cold = 0
    counted = 0
    warm = trace.warm_boundary if honor_warm_boundary else 0
    marked = 0
    for index, (kind, addr, pid) in enumerate(
        zip(kinds_list, addrs_list, pids_list)
    ):
        key = (pid, addr >> offset_bits)
        previous = last_use.get(key)
        measure = kind in wanted and index >= warm
        if previous is None:
            if measure:
                cold += 1
                counted += 1
        else:
            if measure:
                # Distinct blocks touched after `previous`: marks in
                # (previous, index) — the block itself is at `previous`.
                distance = marked - tree.prefix(previous)
                histogram[distance] = histogram.get(distance, 0) + 1
                counted += 1
            tree.add(previous, -1)
            marked -= 1
        tree.add(index, +1)
        marked += 1
        last_use[key] = index
    return ReuseProfile(
        histogram=histogram,
        cold=cold,
        n_refs=counted,
        block_words=block_words,
    )
