"""Figure 3-1: miss ratios and traffic ratios versus total L1 size.

"Figure 3-1 confirms the widely held belief that larger caches are
better, but that beyond a certain size, the incremental improvements are
small."  The curves plotted: instruction and load read-miss ratios, read
traffic ratio (block size x miss ratio), and the *two* write traffic
ratios — all dirty-victim words versus only the dirty words themselves.

Shape checks the data should satisfy (asserted by the bench):

* every miss curve is non-increasing with diminishing deltas;
* the RISC traces show lower miss rates than the VAX traces, with the
  instruction-side gap the larger one (the paper reports 29–46% for
  instructions versus 11.5–18% for loads);
* the full-block write traffic curve dominates the dirty-words curve.
"""

from __future__ import annotations

from typing import Optional


from ..core.charts import ascii_chart
from ..core.report import format_table, size_labels
from ..core.sweep import run_point
from ..sim.config import baseline_config
from ..trace.suite import RISC_TRACES, VAX_TRACES
from .common import ExperimentResult, ExperimentSettings, speed_size_grid, suite_for

EXPERIMENT_ID = "fig3_1"
TITLE = "Miss ratio and traffic ratios vs total L1 size"


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    grid = speed_size_grid(settings, assoc=1)
    rows = []
    for i, total in enumerate(grid.total_sizes):
        rows.append([
            size_labels([total])[0],
            grid.read_miss_ratio[i],
            grid.load_miss_ratio[i],
            grid.ifetch_miss_ratio[i],
            grid.read_traffic_ratio[i],
            grid.write_traffic_ratio_full[i],
            grid.write_traffic_ratio_dirty[i],
        ])
    table = format_table(
        ["TotalL1", "ReadMiss", "LoadMiss", "IfetchMiss",
         "ReadTraffic", "WTrafFull", "WTrafDirty"],
        rows,
        title="Geometric means over the trace suite (direct mapped, 4W blocks)",
        precision=4,
    )
    # Family comparison at a representative mid size, as the paper does.
    suite = suite_for(settings)
    # Compare at a small-to-medium size, where the paper quotes the
    # family gaps ("for small and medium sized caches").
    mid_size = settings.sizes_each_bytes[1]
    config = baseline_config(cache_size_bytes=mid_size)
    family = {}
    for name, members in (("vax", VAX_TRACES), ("risc", RISC_TRACES)):
        selected = [suite[t] for t in members if t in suite]
        if selected:
            family[name] = run_point(config, selected, seed=settings.seed)
    extra = ""
    if len(family) == 2:
        load_gap = 1 - family["risc"].load_miss_ratio / family["vax"].load_miss_ratio
        ifetch_gap = (
            1 - family["risc"].ifetch_miss_ratio / family["vax"].ifetch_miss_ratio
        )
        extra = (
            f"\n\nRISC vs VAX at {mid_size // 1024}KB per cache: load miss "
            f"{100 * load_gap:.0f}% lower, instruction miss "
            f"{100 * ifetch_gap:.0f}% lower (paper: 11.5-18% and 29-46%)."
        )
    chart = ascii_chart(
        {
            "load": list(zip(grid.total_sizes, grid.load_miss_ratio)),
            "ifetch": list(zip(grid.total_sizes, grid.ifetch_miss_ratio)),
            "read": list(zip(grid.total_sizes, grid.read_miss_ratio)),
        },
        width=56, height=12, log_x=True, log_y=True,
        title="Miss ratios vs total L1 size (log-log)",
        x_label="total size (bytes)", y_label="miss ratio",
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=table + "\n\n" + chart + extra,
        data={
            "total_sizes": list(grid.total_sizes),
            "read_miss_ratio": grid.read_miss_ratio.tolist(),
            "load_miss_ratio": grid.load_miss_ratio.tolist(),
            "ifetch_miss_ratio": grid.ifetch_miss_ratio.tolist(),
            "read_traffic_ratio": grid.read_traffic_ratio.tolist(),
            "write_traffic_ratio_full": grid.write_traffic_ratio_full.tolist(),
            "write_traffic_ratio_dirty": grid.write_traffic_ratio_dirty.tolist(),
            "family": {
                k: {
                    "load_miss_ratio": v.load_miss_ratio,
                    "ifetch_miss_ratio": v.ifetch_miss_ratio,
                }
                for k, v in family.items()
            },
        },
    )
