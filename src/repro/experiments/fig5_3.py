"""Figure 5-3: performance-optimal block size vs memory characteristics.

For each (latency, transfer rate) pair, the optimal block size is
estimated by the paper's parabola fit "to the lowest three points".  The
published sensitivities around the optimum: an 80 ns (2-cycle) latency
increase costs 3–6% execution time, and halving the peak transfer rate
costs 3–13%, the two being largely independent of one another.
"""

from __future__ import annotations

from typing import Optional


from ..core.blocksize import optimal_block_size_words
from ..core.report import format_table
from .common import ExperimentResult, ExperimentSettings, blocksize_curves

EXPERIMENT_ID = "fig5_3"
TITLE = "Optimal block size vs memory characteristics"


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    curves = blocksize_curves(settings)
    latencies = sorted({k[0] for k in curves})
    rates = sorted({k[1] for k in curves}, reverse=True)
    rows = []
    optima = {}
    for latency in latencies:
        row = [f"{latency}cyc"]
        for rate in rates:
            curve = curves[(latency, rate)]
            opt = optimal_block_size_words(curve)
            optima[(latency, rate)] = opt
            row.append(opt)
        rows.append(row)
    table = format_table(
        ["Latency"] + [f"{r:g}W/c" for r in rates],
        rows,
        title="Performance-optimal block size (words, parabola fit)",
        precision=1,
    )
    # Sensitivity of best-block execution time to the memory parameters.
    best_exec = {
        k: float(c.execution_ns.min()) for k, c in curves.items()
    }
    latency_costs = []
    for rate in rates:
        for lo, hi in zip(latencies, latencies[1:]):
            latency_costs.append(
                best_exec[(hi, rate)] / best_exec[(lo, rate)] - 1.0
            )
    rate_costs = []
    for latency in latencies:
        ordered = sorted(rates, reverse=True)
        for fast, slow in zip(ordered, ordered[1:]):
            rate_costs.append(
                best_exec[(latency, slow)] / best_exec[(latency, fast)] - 1.0
            )
    text = (
        f"{table}\n\nLatency-step cost: {100 * min(latency_costs):.1f}% to "
        f"{100 * max(latency_costs):.1f}% per step (paper: 3-6% per 80ns). "
        f"Transfer-rate step cost: {100 * min(rate_costs):.1f}% to "
        f"{100 * max(rate_costs):.1f}% per step (paper: 3-13% per halving)."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "optima": {f"{k[0]}cyc@{k[1]:g}": v for k, v in optima.items()},
            "latency_costs": latency_costs,
            "rate_costs": rate_costs,
        },
    )
