"""Experiments regenerating every table and figure of the paper.

Each module reproduces one artifact (see DESIGN.md §5 for the index);
``registry.run_experiment("fig3_4")`` runs one, and the ``repro-sim``
CLI exposes them from the shell.
"""

from .common import (
    ExperimentResult,
    ExperimentSettings,
    blocksize_curves,
    clear_grid_cache,
    speed_size_grid,
    suite_for,
)
from .registry import EXPERIMENTS, list_experiments, run_all, run_experiment

__all__ = [
    "ExperimentResult",
    "ExperimentSettings",
    "blocksize_curves",
    "clear_grid_cache",
    "speed_size_grid",
    "suite_for",
    "EXPERIMENTS",
    "list_experiments",
    "run_all",
    "run_experiment",
]
