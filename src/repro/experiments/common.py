"""Shared settings, grids and caching for the experiment modules.

Every experiment accepts an :class:`ExperimentSettings`; the default is a
*reduced* configuration (shorter traces, coarser grids) that regenerates
every figure's shape in minutes on a laptop.  Set ``full=True`` — or the
environment variable ``REPRO_FULL=1`` — for the paper-scale grids.

The expensive speed–size sweeps are memoized per (settings, assoc) so
that Figures 3-1 through 3-4, 4-2 through 4-5 and Table 3 share their
underlying simulations, the way the paper's figures all read from one
raw-data archive.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from ..core.metrics import SpeedSizeGrid
from ..core.sweep import run_speed_size_sweep
from ..sim.telemetry import StageTimer, peak_rss_kb
from ..trace.record import Trace
from ..trace.suite import ALL_TRACES, build_suite
from ..units import KB


def _env_full() -> bool:
    return os.environ.get("REPRO_FULL", "") not in ("", "0", "false")


def _env_profile() -> bool:
    return os.environ.get("REPRO_PROFILE", "") not in ("", "0", "false")


#: Process-wide wall-clock accounting of the experiment pipeline's
#: expensive stages (trace generation, the memoized sweeps).  Always
#: accumulated — reading a perf_counter twice per *sweep* is free —
#: but only narrated to stderr when ``REPRO_PROFILE=1``.
PROFILE = StageTimer()


@contextmanager
def profile_stage(name: str):
    """Time one pipeline stage; narrate it under ``REPRO_PROFILE=1``."""
    before = PROFILE.stages.get(name, 0.0)
    with PROFILE.stage(name):
        yield
    if _env_profile():
        elapsed = PROFILE.stages[name] - before
        rss = peak_rss_kb()
        print(
            f"[profile] {name}: {elapsed:.3f}s"
            + (f", peak RSS {rss} KiB" if rss is not None else ""),
            file=sys.stderr,
        )


def _env_jobs() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def _env_pass_cache() -> str:
    """Directory of the persistent functional-pass cache, or ``""``.

    Set ``REPRO_PASS_CACHE=/path/to/dir`` to persist functional passes
    across experiment invocations (see :mod:`repro.sim.passcache`).
    """
    return os.environ.get("REPRO_PASS_CACHE", "")


def _env_stack_pass() -> bool:
    """Set ``REPRO_STACK_PASS=1`` to collapse each sweep's cold
    functional passes into one shared stack walk per trace (see
    :mod:`repro.sim.stackpass`).  Results are bit-identical either way.
    """
    return os.environ.get("REPRO_STACK_PASS", "") not in ("", "0", "false")


def _env_sample() -> str:
    """Set ``REPRO_SAMPLE`` to run every sweep on representative trace
    intervals (see :mod:`repro.sim.sampling`).  The value is a
    :meth:`~repro.sim.sampling.SamplingPlan.parse` spec — ``"1"`` for
    the defaults, or e.g. ``"interval=20000,k=8"``.  Unlike the stack
    pass, sampling changes the numbers: every figure becomes a
    stratified *estimate* with the plan's confidence bound.
    """
    return os.environ.get("REPRO_SAMPLE", "")


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment."""

    trace_length: int = 120_000
    trace_names: Tuple[str, ...] = ALL_TRACES
    seed: int = 0
    full: bool = field(default_factory=_env_full)
    n_jobs: int = field(default_factory=_env_jobs)
    pass_cache_dir: str = field(default_factory=_env_pass_cache)
    stack_pass: bool = field(default_factory=_env_stack_pass)
    sample: str = field(default_factory=_env_sample)

    @property
    def functional_strategy(self) -> str:
        """The :func:`repro.core.sweep.run_functional_passes` strategy."""
        return "stack" if self.stack_pass else "scalar"

    @property
    def sampling_plan(self):
        """The :class:`~repro.sim.sampling.SamplingPlan` behind the
        ``sample`` spec, or ``None`` when sampling is off."""
        if not self.sample:
            return None
        from ..sim.sampling import SamplingPlan

        return SamplingPlan.parse(self.sample)

    # ------------------------------------------------------------------
    # Grid definitions (reduced vs full)
    # ------------------------------------------------------------------
    @property
    def sizes_each_bytes(self) -> List[int]:
        """Per-cache sizes; the paper sweeps 2 KB–2 MB each."""
        if self.full:
            return [2 * KB * (2 ** k) for k in range(11)]  # 2KB..2MB
        return [2 * KB, 8 * KB, 32 * KB, 128 * KB, 512 * KB]

    @property
    def cycle_times_ns(self) -> List[float]:
        """CPU/cache cycle times; the paper sweeps 20–80 ns."""
        if self.full:
            return [float(t) for t in range(20, 81, 4)]
        return [20.0, 28.0, 40.0, 56.0, 60.0, 80.0]

    @property
    def assocs(self) -> List[int]:
        return [1, 2, 4, 8] if self.full else [1, 2, 4]

    @property
    def block_sizes_words(self) -> List[int]:
        if self.full:
            return [1, 2, 4, 8, 16, 32, 64, 128]
        return [2, 4, 8, 16, 32, 64]

    @property
    def latencies_ns(self) -> List[float]:
        """§5's memory latencies: 100–420 ns (3–11 cycles at 40 ns)."""
        if self.full:
            return [100.0, 180.0, 260.0, 340.0, 420.0]
        return [100.0, 260.0, 420.0]

    @property
    def transfer_rates(self) -> List[float]:
        """§5's backplane rates: 4 W/cycle down to 1 W per 4 cycles."""
        if self.full:
            return [4.0, 2.0, 1.0, 0.5, 0.25]
        return [4.0, 1.0, 0.25]

    def with_full(self, full: bool) -> "ExperimentSettings":
        return replace(self, full=full)


@dataclass
class ExperimentResult:
    """What every experiment returns: an id, a rendered report, and the
    structured numbers behind it (for tests and EXPERIMENTS.md).

    ``ok`` is False for a placeholder produced by a failed experiment in
    a keep-going batch (see :func:`failed_result`): the batch renders
    the failure explicitly instead of aborting the remaining artifacts.
    """

    experiment_id: str
    title: str
    text: str
    data: Dict[str, object]
    ok: bool = True

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


def failed_result(
    experiment_id: str, error: Exception
) -> ExperimentResult:
    """Placeholder for an experiment that failed in a keep-going batch."""
    return ExperimentResult(
        experiment_id=experiment_id,
        title="(failed)",
        text=f"FAILED: {type(error).__name__}: {error}",
        data={"error": str(error), "error_type": type(error).__name__},
        ok=False,
    )


def suite_for(settings: ExperimentSettings) -> Dict[str, Trace]:
    """The trace suite for a settings bundle (memoized by the suite)."""
    with profile_stage("build_suite"):
        return build_suite(
            length=settings.trace_length,
            names=settings.trace_names,
            seed=settings.seed,
        )


# Cache of speed-size grids keyed by (settings, assoc).  The settings
# dataclass is frozen and hashable, so this is a straight dict memo.
_GRID_CACHE: Dict[Tuple[ExperimentSettings, int], SpeedSizeGrid] = {}


def _pass_cache_for(settings: ExperimentSettings):
    """The settings' persistent pass cache, or ``None`` when unset."""
    if not settings.pass_cache_dir:
        return None
    from ..sim.passcache import PassCache

    return PassCache(settings.pass_cache_dir)


def speed_size_grid(
    settings: ExperimentSettings, assoc: int = 1
) -> SpeedSizeGrid:
    """The (size x cycle time) sweep for one associativity, memoized."""
    key = (settings, assoc)
    if key not in _GRID_CACHE:
        suite = suite_for(settings)
        with profile_stage(f"speed_size_sweep(assoc={assoc})"):
            _GRID_CACHE[key] = run_speed_size_sweep(
                suite,
                sizes_each_bytes=settings.sizes_each_bytes,
                cycle_times_ns=settings.cycle_times_ns,
                assoc=assoc,
                seed=settings.seed,
                n_jobs=settings.n_jobs,
                pass_cache=_pass_cache_for(settings),
                functional_strategy=settings.functional_strategy,
                sampling=settings.sampling_plan,
            )
    return _GRID_CACHE[key]


_BLOCKSIZE_CACHE: Dict[ExperimentSettings, Dict] = {}


def blocksize_curves(settings: ExperimentSettings) -> Dict:
    """The §5 block-size x memory-speed sweep, memoized per settings.

    Returns ``{(latency_cycles, transfer_rate): BlockSizeCurve}``.
    """
    from ..core.sweep import run_blocksize_sweep

    if settings not in _BLOCKSIZE_CACHE:
        suite = suite_for(settings)
        with profile_stage("blocksize_sweep"):
            _BLOCKSIZE_CACHE[settings] = run_blocksize_sweep(
                suite,
                block_sizes_words=settings.block_sizes_words,
                latencies_ns=settings.latencies_ns,
                transfer_rates=settings.transfer_rates,
                seed=settings.seed,
                n_jobs=settings.n_jobs,
                pass_cache=_pass_cache_for(settings),
                functional_strategy=settings.functional_strategy,
                sampling=settings.sampling_plan,
            )
    return _BLOCKSIZE_CACHE[settings]


def clear_grid_cache() -> None:
    """Drop memoized sweeps (tests use this to bound memory)."""
    _GRID_CACHE.clear()
    _BLOCKSIZE_CACHE.clear()
