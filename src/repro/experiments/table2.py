"""Table 2: memory access cycle counts versus cycle time.

The paper's Table 2 tabulates, for the base memory (180 ns read
operation, 100 ns write operation, 120 ns recovery, one word per cycle,
4-word blocks), the quantized read, write and recovery cycle counts at
cycle times from 20 ns to 60 ns.  This is the one artifact we reproduce
*exactly*, because it is pure arithmetic on the synchronous-quantization
model; the unit tests pin every published cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.report import format_table
from ..core.timing import MemoryTiming
from .common import ExperimentResult, ExperimentSettings

EXPERIMENT_ID = "table2"
TITLE = "Memory access cycle counts"

#: The paper's published rows: cycle time -> (read, write, recovery).
PAPER_TABLE2: Dict[float, Tuple[int, int, int]] = {
    20.0: (14, 10, 6),
    24.0: (13, 10, 5),
    28.0: (12, 9, 5),
    32.0: (11, 9, 4),
    36.0: (10, 8, 4),
    40.0: (10, 8, 3),
    48.0: (9, 8, 3),
    52.0: (9, 7, 3),
    60.0: (8, 7, 2),
}


def compute_row(
    memory: MemoryTiming, cycle_ns: float, block_words: int = 4
) -> Tuple[int, int, int]:
    """(read, write, recovery) cycle counts at one cycle time."""
    return (
        memory.read_cycles(block_words, cycle_ns),
        memory.write_cycles(block_words, cycle_ns),
        memory.recovery_cycles(cycle_ns),
    )


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    del settings  # purely analytic; settings carry nothing relevant
    memory = MemoryTiming()
    rows: List[List[object]] = []
    mismatches = []
    computed = {}
    for cycle_ns, expected in PAPER_TABLE2.items():
        got = compute_row(memory, cycle_ns)
        computed[cycle_ns] = got
        match = "ok" if got == expected else "MISMATCH"
        if got != expected:
            mismatches.append(cycle_ns)
        rows.append([f"{cycle_ns:g}", *got, *expected, match])
    text = format_table(
        ["Cycle(ns)", "Read", "Write", "Recov",
         "Read(paper)", "Write(paper)", "Recov(paper)", ""],
        rows,
        title=(
            "Read op 180ns, write op 100ns, recovery 120ns, "
            "1 W/cycle, 4 W blocks"
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={"computed": computed, "mismatches": mismatches},
    )
