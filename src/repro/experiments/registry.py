"""Registry mapping experiment ids to their run functions.

``repro-sim experiment <id>`` and the EXPERIMENTS.md generator both
resolve experiments here.  Ids follow the paper's artifact numbering.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError, ReproError
from .common import ExperimentResult, ExperimentSettings, failed_result
from . import (
    fig3_1,
    fig3_2,
    fig3_3,
    fig3_4,
    fig4_1,
    fig4_2,
    fig4_345,
    fig5_1,
    fig5_2,
    fig5_3,
    fig5_4,
    multilevel,
    scaling,
    table1,
    table2,
    table3,
)

RunFn = Callable[[Optional[ExperimentSettings]], ExperimentResult]

EXPERIMENTS: Dict[str, RunFn] = {
    module.EXPERIMENT_ID: module.run
    for module in (
        table1, table2,
        fig3_1, fig3_2, fig3_3, fig3_4,
        fig4_1, fig4_2, fig4_345,
        fig5_1, fig5_2, fig5_3, fig5_4,
        table3, multilevel, scaling,
    )
}


def list_experiments() -> List[str]:
    """All experiment ids, in paper order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str, settings: Optional[ExperimentSettings] = None
) -> ExperimentResult:
    """Run one experiment by id."""
    if experiment_id not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](settings)


def run_all(
    settings: Optional[ExperimentSettings] = None,
    keep_going: bool = False,
) -> List[ExperimentResult]:
    """Run every experiment (used to assemble EXPERIMENTS.md).

    With ``keep_going=True`` a failing experiment yields a placeholder
    :class:`ExperimentResult` (``ok=False``) flagging the failure, and
    the remaining artifacts still run — a partial report with the
    missing points marked beats no report at all.
    """
    results = []
    for experiment_id, run in EXPERIMENTS.items():
        try:
            results.append(run(settings))
        except ReproError as exc:
            if not keep_going:
                raise
            results.append(failed_result(experiment_id, exc))
    return results
