"""Figure 5-4: optimal block size as a function of the la x tr product.

Smith's first-order derivation says the block size minimizing mean read
time depends on the memory only through the product of latency (cycles)
and transfer rate (words/cycle).  Figure 5-4 plots the simulated optima
against that product and finds "the line segments line up quite well".
The dotted balance line BS = la x tr (transfer time equal to latency) is
*not* what the optima follow: below-the-line memories (poor DRAM, fast
bus) want smaller blocks than balance, above-the-line ones larger.
"""

from __future__ import annotations

from typing import Optional


from ..core.blocksize import product_law_points, product_law_spread
from ..core.charts import ascii_chart
from ..core.report import format_table
from .common import ExperimentResult, ExperimentSettings, blocksize_curves

EXPERIMENT_ID = "fig5_4"
TITLE = "Optimal block size vs the latency x transfer-rate product"


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    curves = blocksize_curves(settings)
    points = product_law_points(curves)
    rows = [
        [
            f"{p.latency_cycles}cyc",
            f"{p.transfer_rate:g}W/c",
            p.speed_product,
            p.optimal_block_words,
            p.balance_block_words,
            "above" if p.optimal_block_words > p.balance_block_words else "below",
        ]
        for p in points
    ]
    table = format_table(
        ["Latency", "Rate", "la*tr", "OptBlock(W)", "Balance(W)", "vs line"],
        rows,
        title="Optimal block size vs memory speed product",
        precision=2,
    )
    spread = product_law_spread(points)
    chart = ascii_chart(
        {
            "optimal": [
                (p.speed_product, p.optimal_block_words) for p in points
            ],
            "balance": [
                (p.speed_product, p.balance_block_words) for p in points
            ],
        },
        width=56, height=12, log_x=True, log_y=True,
        title="Figure 5-4: optimal block vs la*tr (with balance line)",
        x_label="la*tr", y_label="block words",
    )
    text = (
        f"{table}\n\n{chart}\n\nWorst relative spread of optima at equal la*tr: "
        f"{100 * spread:.0f}% — the optima collapse onto a function of the "
        "product, verifying the first-order law.  The optimal block does "
        "not follow the balance line BS = la*tr."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "points": [
                {
                    "latency_cycles": p.latency_cycles,
                    "transfer_rate": p.transfer_rate,
                    "product": p.speed_product,
                    "optimal_block_words": p.optimal_block_words,
                    "balance_block_words": p.balance_block_words,
                }
                for p in points
            ],
            "product_law_spread": spread,
        },
    )
