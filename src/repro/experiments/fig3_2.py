"""Figure 3-2: total cycle count versus cache size and cycle time.

"As the CPU/cache cycle time is varied over the range of 20ns through
80ns, the total cycle count for the traces decreases, giving the
illusion of improved performance" — because the fixed-nanosecond memory
costs fewer cycles at slower clocks.  The paper reports a factor of 3.2
spread across the whole experiment and 1.5 at 2 KB per cache.

This experiment renders the normalized cycle-count grid and reports the
quantization anomaly around 56 ns: the read penalty steps from 8 to 9
cycles between 60 ns and 56 ns, so the 56 ns design wastes a large
fraction of the memory access in synchronization.
"""

from __future__ import annotations

from typing import Optional


from ..core.report import cycle_labels, format_grid, size_labels
from ..core.timing import MemoryTiming
from .common import ExperimentResult, ExperimentSettings, speed_size_grid

EXPERIMENT_ID = "fig3_2"
TITLE = "Cycle count vs cache size and cycle time"


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    grid = speed_size_grid(settings, assoc=1)
    # Cycle counts normalized to the experiment's smallest count, which
    # the paper identifies as the largest cache at the slowest clock.
    cycle_counts = grid.cycles_per_reference
    normalized = cycle_counts / cycle_counts.min()
    table = format_grid(
        size_labels(grid.total_sizes),
        cycle_labels(grid.cycle_times_ns),
        normalized,
        corner="TotalL1",
        title="Cycle count per reference, normalized to the minimum",
    )
    spread_total = float(normalized.max())
    spread_smallest = float(
        cycle_counts[0, :].max() / cycle_counts[0, :].min()
    )
    memory = MemoryTiming()
    anomaly = ""
    anomaly_ratio = None
    penalties = {
        t: memory.read_cycles(4, t) for t in grid.cycle_times_ns
    }
    if 56.0 in penalties and 60.0 in penalties:
        j56 = grid.cycle_index(56.0)
        j60 = grid.cycle_index(60.0)
        # The paper's aside: "Decreasing the cycle time from 60ns to
        # 56ns slows the machine down close to 3%" for small caches.
        anomaly_ratio = float(
            grid.execution_ns[0, j56] / grid.execution_ns[0, j60]
        )
        verdict = (
            f"the smallest cache runs {100 * (anomaly_ratio - 1):.1f}% "
            "slower at 56ns than at 60ns"
            if anomaly_ratio > 1
            else "no inversion at this miss level"
        )
        anomaly = (
            f"\nQuantization: read penalty is {penalties[56.0]} cycles at "
            f"56ns vs {penalties[60.0]} at 60ns — {verdict} (paper: "
            "close to 3% slower; performance is not monotonic in cycle "
            "time)."
        )
    text = (
        f"{table}\n\nCycle-count spread: {spread_total:.2f}x across the "
        f"experiment, {spread_smallest:.2f}x at the smallest cache "
        "(paper: 3.2x and 1.5x)." + anomaly
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "total_sizes": list(grid.total_sizes),
            "cycle_times_ns": list(grid.cycle_times_ns),
            "normalized_cycles": normalized.tolist(),
            "spread_total": spread_total,
            "spread_smallest": spread_smallest,
            "read_penalties": penalties,
            "anomaly_ratio_56_60": anomaly_ratio,
        },
    )
