"""Figure 3-3: execution time versus cache size and cycle time.

"Total execution time is the product of cycle time and cycle count ...
the overall performance is strongly dependent on both the cache size and
cycle time.  With small caches, incremental changes in the cache size
have a greater effect than changes in the cycle time, while at the
larger cache sizes the reverse is true."

The rendered grid is normalized to its best point; the two sensitivity
claims above are quantified and reported (and asserted by the bench).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.report import cycle_labels, format_grid, size_labels
from .common import ExperimentResult, ExperimentSettings, speed_size_grid

EXPERIMENT_ID = "fig3_3"
TITLE = "Execution time vs cache size and cycle time"


def _sensitivities(grid) -> dict:
    """Relative execution-time change per size doubling versus per cycle
    step, at the small and large ends of the size axis."""
    exec_ns = grid.execution_ns
    n_sizes, n_cycles = exec_ns.shape
    mid_j = n_cycles // 2
    mid_i = n_sizes // 2

    def size_gain(i: int) -> float:
        doublings = np.log2(grid.total_sizes[i + 1] / grid.total_sizes[i])
        return float(
            (exec_ns[i, mid_j] / exec_ns[i + 1, mid_j] - 1.0) / doublings
        )

    def cycle_gain(j: int) -> float:
        dt = grid.cycle_times_ns[j + 1] / grid.cycle_times_ns[j]
        return float((exec_ns[mid_i, j + 1] / exec_ns[mid_i, j] - 1.0) / (dt - 1))

    # Average the cycle sensitivity over every clock step: individual
    # steps can be distorted (even negative) by the synchronous
    # quantization — the paper's 56 ns anomaly.
    mean_cycle_gain = float(
        np.mean([cycle_gain(j) for j in range(n_cycles - 1)])
    )
    return {
        "size_gain_small": size_gain(0),
        "size_gain_large": size_gain(n_sizes - 2),
        "cycle_gain": mean_cycle_gain,
    }


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    grid = speed_size_grid(settings, assoc=1)
    normalized = grid.normalized()
    table = format_grid(
        size_labels(grid.total_sizes),
        cycle_labels(grid.cycle_times_ns),
        normalized,
        corner="TotalL1",
        title="Execution time, normalized to the best design point",
    )
    sens = _sensitivities(grid)
    text = (
        f"{table}\n\nAt the middle clock, doubling a small cache buys "
        f"{100 * sens['size_gain_small']:.1f}% performance per doubling; "
        f"doubling a large one buys {100 * sens['size_gain_large']:.1f}%. "
        "Small caches reward size, large caches reward cycle time."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "total_sizes": list(grid.total_sizes),
            "cycle_times_ns": list(grid.cycle_times_ns),
            "normalized_execution": normalized.tolist(),
            **sens,
        },
    )
