"""§6's technology-scaling claim, run as an experiment.

"If the entire system scales evenly, the basic tradeoffs do not change.
If all the temporal parameters are divided by a common factor, the shape
and position of the curves remain the same while the slopes, expressed
in nanoseconds per doubling, scale down.  Expressed as a fraction of the
cycle time per doubling, the slopes remain constant."

We run the speed–size sweep twice: once at the base memory and clocks,
once with every nanosecond divided by two (clocks *and* memory).  The
experiment reports slopes in ns/doubling (should halve) and in
cycle-fractions (should match), plus the corollary: when only the CPU
scales and memory does not, the miss penalty in cycles grows and the
fractional slopes *increase* — the pressure toward multilevel
hierarchies.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.equal_performance import slope_ns_per_doubling
from ..core.report import format_table
from ..core.sweep import run_speed_size_sweep
from ..memory.buses import scaled_memory
from ..core.timing import MemoryTiming
from .common import ExperimentResult, ExperimentSettings, suite_for

EXPERIMENT_ID = "scaling"
TITLE = "Technology scaling of the speed-size tradeoff (§6)"


def _fraction_slopes(grid) -> List[float]:
    """Per-size slopes at the middle clock, as cycle-time fractions."""
    j = grid.n_cycles // 2
    t = grid.cycle_times_ns[j]
    out = []
    for i in range(grid.n_sizes - 1):
        slope = slope_ns_per_doubling(grid, i, j)
        out.append(slope / t if slope is not None else float("nan"))
    return out


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    traces = suite_for(settings)
    sizes = settings.sizes_each_bytes[:4]
    base_cycles = [20.0, 28.0, 40.0, 60.0, 80.0]
    base = run_speed_size_sweep(
        traces, sizes, base_cycles, seed=settings.seed
    )
    # Everything halves: clocks and memory nanoseconds.
    halved = run_speed_size_sweep(
        traces, sizes, [t / 2 for t in base_cycles],
        memory=scaled_memory(MemoryTiming(), 0.5), seed=settings.seed,
    )
    # Only the CPU halves: memory stays 1988-speed.
    cpu_only = run_speed_size_sweep(
        traces, sizes, [t / 2 for t in base_cycles], seed=settings.seed
    )
    rows = []
    f_base = _fraction_slopes(base)
    f_halved = _fraction_slopes(halved)
    f_cpu = _fraction_slopes(cpu_only)
    for i in range(len(f_base)):
        rows.append([
            f"{base.total_sizes[i] // 1024}KB",
            f_base[i], f_halved[i], f_cpu[i],
        ])
    table = format_table(
        ["TotalL1", "base frac/dbl", "all-scaled frac/dbl",
         "CPU-only frac/dbl"],
        rows,
        title=(
            "Constant-performance slope as a fraction of the cycle time "
            "(middle clock)"
        ),
        precision=3,
    )
    pairs = [
        (b, h) for b, h in zip(f_base, f_halved)
        if not (np.isnan(b) or np.isnan(h))
    ]
    even_dev = max(abs(h / b - 1.0) for b, h in pairs) if pairs else float("nan")
    cpu_pairs = [
        (b, c) for b, c in zip(f_base, f_cpu)
        if not (np.isnan(b) or np.isnan(c))
    ]
    cpu_growth = (
        float(np.mean([c / b for b, c in cpu_pairs])) if cpu_pairs else
        float("nan")
    )
    text = (
        f"{table}\n\nEven scaling leaves the fractional slopes within "
        f"{100 * even_dev:.0f}% of the base — the tradeoff is shape-"
        "invariant, as §6 argues.  Scaling only the CPU multiplies them "
        f"by {cpu_growth:.2f}x on average: the growing cycle-count miss "
        "penalty drives designs toward bigger caches — or an L2."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "fraction_slopes_base": f_base,
            "fraction_slopes_all_scaled": f_halved,
            "fraction_slopes_cpu_only": f_cpu,
            "even_scaling_max_deviation": even_dev,
            "cpu_only_mean_growth": cpu_growth,
        },
    )
