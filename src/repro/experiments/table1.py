"""Table 1: description of the traces.

The paper's Table 1 lists, per trace, the number of processes, the
length in references, the unique-address footprint and the constituent
programs.  This experiment regenerates the same columns for the
synthetic suite, plus the reference mix, so a reader can compare the
stimulus against the published one.
"""

from __future__ import annotations

from typing import Optional

from ..trace.stats import compute_stats, stats_table
from ..trace.suite import TRACE_PROGRAMS
from .common import ExperimentResult, ExperimentSettings, suite_for

EXPERIMENT_ID = "table1"
TITLE = "Description of the traces"


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    suite = suite_for(settings)
    stats = [compute_stats(trace) for trace in suite.values()]
    lines = [stats_table(stats), "", "Programs:"]
    for name in suite:
        lines.append(f"  {name:<7} {', '.join(TRACE_PROGRAMS[name])}")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text="\n".join(lines),
        data={
            "stats": {
                s.name: {
                    "processes": s.n_processes,
                    "length": s.length,
                    "unique_kwords": s.n_unique_kwords,
                    "warm_boundary": s.warm_boundary,
                    "store_fraction": s.store_fraction,
                }
                for s in stats
            }
        },
    )
