"""Figure 4-2: execution time versus size, associativity and cycle time.

The same grid as Figure 3-3 with associativity as an extra family of
curves at each size.  The paper's reading: "a change in associativity
can be seen to have a significant performance effect for the smaller
caches" (about 10% for a 4 KB total going one- to two-way) "...for
large caches, the improvement is much less significant", because the
main memory accounts for a shrinking share of execution time.
"""

from __future__ import annotations

from typing import Optional


from ..core.report import cycle_labels, format_grid, size_labels
from .common import ExperimentResult, ExperimentSettings, speed_size_grid

EXPERIMENT_ID = "fig4_2"
TITLE = "Execution time vs size, associativity and cycle time"


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    grids = {a: speed_size_grid(settings, assoc=a) for a in settings.assocs}
    base = grids[1]
    blocks = []
    norm = base.best_execution_ns
    for a in settings.assocs:
        blocks.append(
            format_grid(
                size_labels(base.total_sizes),
                cycle_labels(base.cycle_times_ns),
                grids[a].execution_ns / norm,
                corner="TotalL1",
                title=f"{a}-way execution time (normalized to the 1-way best)",
            )
        )
    # Improvement of 2-way over direct mapped at equal cycle time.
    improvement = 1.0 - grids[2].execution_ns / base.execution_ns
    improv_grid = format_grid(
        size_labels(base.total_sizes),
        cycle_labels(base.cycle_times_ns),
        100.0 * improvement,
        corner="TotalL1",
        title="2-way improvement over direct mapped at equal clock (%)",
        precision=1,
    )
    small_improv = float(improvement[0, :].mean())
    large_improv = float(improvement[-1, :].mean())
    text = (
        "\n\n".join(blocks + [improv_grid])
        + f"\n\nEqual-clock 2-way improvement: {100 * small_improv:.1f}% at "
          f"the smallest total vs {100 * large_improv:.1f}% at the largest "
          "(paper: about 10% at 4KB total, much less for large caches)."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "normalized_execution": {
                a: (grids[a].execution_ns / norm).tolist()
                for a in settings.assocs
            },
            "improvement_2way": improvement.tolist(),
            "small_improvement": small_improv,
            "large_improvement": large_improv,
        },
    )
