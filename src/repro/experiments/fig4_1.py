"""Figure 4-1: read miss ratio versus size and set associativity.

Total cache size is held constant as associativity rises (sets halve as
ways double); random replacement throughout, as in the paper.  The
published observations: going direct-mapped to two-way drops the miss
ratio by about 20% for totals up to ~256 KB (with a larger gain above,
because the caches are virtual and inter-process conflicts persist at
any number of sets), and "smaller improvements are seen for set sizes
above two".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.report import format_table, size_labels
from .common import ExperimentResult, ExperimentSettings, speed_size_grid

EXPERIMENT_ID = "fig4_1"
TITLE = "Read miss ratio vs size and associativity"


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    grids = {a: speed_size_grid(settings, assoc=a) for a in settings.assocs}
    base = grids[1]
    headers = ["TotalL1"] + [f"{a}-way" for a in settings.assocs] + [
        f"drop 1->{a}" for a in settings.assocs if a > 1
    ]
    rows = []
    for i, total in enumerate(base.total_sizes):
        row = [size_labels([total])[0]]
        for a in settings.assocs:
            row.append(float(grids[a].read_miss_ratio[i]))
        for a in settings.assocs:
            if a > 1:
                drop = 1.0 - grids[a].read_miss_ratio[i] / max(
                    base.read_miss_ratio[i], 1e-12
                )
                row.append(f"{100 * drop:.0f}%")
        rows.append(row)
    table = format_table(
        headers, rows,
        title="Read miss ratio (random replacement, constant total size)",
        precision=4,
    )
    drops_12 = [
        float(1.0 - grids[2].read_miss_ratio[i] / max(base.read_miss_ratio[i], 1e-12))
        for i in range(base.n_sizes)
    ]
    text = (
        f"{table}\n\nMean 1->2 way miss-ratio drop: "
        f"{100 * float(np.mean(drops_12)):.0f}% (paper: about 20% up to "
        "256KB total; gains above two ways are smaller)."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "total_sizes": list(base.total_sizes),
            "miss_by_assoc": {
                a: grids[a].read_miss_ratio.tolist() for a in settings.assocs
            },
            "drop_1_to_2": drops_12,
        },
    )
