"""Figure 5-2: execution time versus block size and memory parameters.

Latency swept 100–420 ns (read, write-op and recovery made equal) and
peak transfer rate 4 W/cycle down to 1 W per 4 cycles.  The paper's
reading: "In comparison to the cache speed and size parameters, the
memory system design has a relatively small impact on performance.
Assuming a reasonable choice of block size, the execution time only
doubles across the entire range of memory systems"; an 80 ns latency
increase costs 3–6%, a transfer-rate halving 3–13%.
"""

from __future__ import annotations

from typing import Optional


from ..core.report import format_table
from .common import ExperimentResult, ExperimentSettings, blocksize_curves

EXPERIMENT_ID = "fig5_2"
TITLE = "Execution time vs block size and memory parameters"


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    curves = blocksize_curves(settings)
    norm = min(float(c.execution_ns.min()) for c in curves.values())
    rows = []
    best_exec = {}
    for (latency_cycles, transfer_rate), curve in sorted(curves.items()):
        row = [f"{latency_cycles}cyc", f"{transfer_rate:g}W/c"]
        row.extend(float(v) / norm for v in curve.execution_ns)
        rows.append(row)
        best_exec[(latency_cycles, transfer_rate)] = float(
            curve.execution_ns.min()
        ) / norm
    headers = ["Latency", "Rate"] + [
        f"{b}W" for b in settings.block_sizes_words
    ]
    table = format_table(
        headers, rows,
        title="Execution time vs block size (normalized to the global best)",
    )
    spread = max(best_exec.values()) / min(best_exec.values())
    text = (
        f"{table}\n\nWith the best block size per memory, execution time "
        f"spreads {spread:.2f}x across the whole memory range (paper: "
        "about 2x)."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "block_sizes": list(settings.block_sizes_words),
            "curves": {
                f"{k[0]}cyc@{k[1]:g}": (v.execution_ns / norm).tolist()
                for k, v in curves.items()
            },
            "best_exec": {f"{k[0]}cyc@{k[1]:g}": v for k, v in best_exec.items()},
            "memory_range_spread": spread,
        },
    )
