"""Figure 3-4: lines of equal performance across the design space.

The centrepiece of §3: interpolated iso-performance lines over the
(cache size, cycle time) plane, the slope of those lines in nanoseconds
of cycle time per doubling of cache size, and the shaded regions bounded
by the 2.5 / 5 / 7.5 / 10 ns-per-doubling contours.  The flattening of
the slopes with size is what drives the paper's headline: "there is a
strong tendency to increase cache size to the 32KB to 128KB range",
beyond which hardware is better spent on cycle time.

Also reproduced: the worked RAM-swap example (§3) — at a given design
point, compare staying at a small cache with fast RAMs against a cache
four times larger with RAMs 10 ns slower.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.equal_performance import (
    DEFAULT_REGION_BOUNDARIES,
    classify_regions,
    cycle_time_for_level,
    iso_performance_lines,
    preferred_size_range,
    slope_map,
)
from ..core.report import cycle_labels, format_grid, format_table, size_labels
from .common import ExperimentResult, ExperimentSettings, speed_size_grid

EXPERIMENT_ID = "fig3_4"
TITLE = "Lines of equal performance (speed-size tradeoff)"


def ram_swap_example(grid, size_index: int, cycle_index: int,
                     ram_penalty_ns: float = 10.0) -> Optional[dict]:
    """The paper's worked example: is a 4x bigger cache with RAMs
    ``ram_penalty_ns`` slower a better machine?

    Returns the relative improvement (positive means the bigger, slower
    machine wins), or ``None`` if the grid cannot express the swap.
    """
    if size_index + 2 >= grid.n_sizes:
        return None
    t0 = grid.cycle_times_ns[cycle_index]
    exec_small = float(grid.execution_ns[size_index, cycle_index])
    t1 = t0 + ram_penalty_ns
    cycles = np.asarray(grid.cycle_times_ns)
    if t1 > cycles[-1]:
        return None
    big_exec_vs_cycle = grid.execution_ns[size_index + 2, :]
    exec_big = float(np.interp(t1, cycles, big_exec_vs_cycle))
    return {
        "small_size": grid.total_sizes[size_index],
        "big_size": grid.total_sizes[size_index + 2],
        "cycle_small_ns": t0,
        "cycle_big_ns": t1,
        "improvement": exec_small / exec_big - 1.0,
    }


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    grid = speed_size_grid(settings, assoc=1)
    slopes = slope_map(grid)
    regions = classify_regions(grid)
    lines = iso_performance_lines(grid, n_levels=8)
    slope_table = format_grid(
        size_labels(grid.total_sizes),
        cycle_labels(grid.cycle_times_ns),
        slopes,
        corner="TotalL1",
        title="Constant-performance slope, ns of cycle time per size doubling",
        precision=2,
    )
    region_table = format_grid(
        size_labels(grid.total_sizes),
        cycle_labels(grid.cycle_times_ns),
        regions.astype(float),
        corner="TotalL1",
        title=(
            "Region index (boundaries at "
            f"{'/'.join(str(b) for b in DEFAULT_REGION_BOUNDARIES)} ns per "
            "doubling; -1 = undefined)"
        ),
        precision=0,
    )
    iso_rows = []
    for line in lines:
        points = ", ".join(
            f"({s // 1024}KB, {c:.1f}ns)" for s, c in line.points
        )
        iso_rows.append([f"{line.level:.1f}", points or "(unattainable)"])
    iso_table = format_table(
        ["Level", "Iso-performance points (total size, cycle time)"],
        iso_rows,
        title="Lines of equal performance (normalized execution time)",
    )
    grow_until, stop_at = preferred_size_range(grid)
    example = ram_swap_example(grid, 1, grid.n_cycles // 2)
    example_text = ""
    if example is not None:
        verdict = "improves" if example["improvement"] > 0 else "degrades"
        example_text = (
            f"\nRAM-swap example: {example['small_size'] // 1024}KB at "
            f"{example['cycle_small_ns']:g}ns vs "
            f"{example['big_size'] // 1024}KB at "
            f"{example['cycle_big_ns']:g}ns — the larger, slower machine "
            f"{verdict} performance by {100 * abs(example['improvement']):.1f}% "
            "(paper's example: +7.3%)."
        )
    text = (
        f"{slope_table}\n\n{region_table}\n\n{iso_table}\n\n"
        f"Preferred total size band: keep growing past "
        f"{(grow_until or 0) // 1024}KB; stop by {(stop_at or 0) // 1024}KB "
        "(paper: 32KB to 128KB total for discrete-RAM ladders)."
        + example_text
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "slopes": slopes.tolist(),
            "regions": regions.tolist(),
            "iso_lines": [
                {"level": l.level, "points": list(l.points)} for l in lines
            ],
            "grow_until": grow_until,
            "stop_at": stop_at,
            "ram_swap": example,
        },
    )
