"""Figure 5-1: miss ratios and execution time versus block size.

The default Harvard organization (64 KB I and D caches) against a 260 ns
latency memory, block size swept.  The paper's observations: the miss-
ratio-optimal block size is large (32 W on the data side, beyond 64 W on
the instruction side, "a reflection of the greater locality within the
instruction stream"), while "the block size that optimizes system
performance is significantly smaller than that which minimizes the miss
rate" — because each block-size doubling doubles the transfer term of
the miss penalty.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.blocksize import optimal_block_size_words
from ..core.report import format_table
from ..core.sweep import run_blocksize_sweep
from ..units import quantize_ns
from .common import ExperimentResult, ExperimentSettings, suite_for

EXPERIMENT_ID = "fig5_1"
TITLE = "Block size vs miss ratio and execution time (260ns memory)"

#: §5: "with a 260ns latency memory" (12-cycle read for 4W at 40ns).
LATENCY_NS = 260.0


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    curves = run_blocksize_sweep(
        suite_for(settings),
        block_sizes_words=settings.block_sizes_words,
        latencies_ns=[LATENCY_NS],
        transfer_rates=[1.0],
        seed=settings.seed,
    )
    key = (quantize_ns(LATENCY_NS, 40.0), 1.0)
    curve = curves[key]
    exec_norm = curve.execution_ns / curve.execution_ns.min()
    rows = []
    for k, block in enumerate(curve.block_sizes_words):
        rows.append([
            f"{block}W",
            float(curve.load_miss_ratio[k]),
            float(curve.ifetch_miss_ratio[k]),
            float(exec_norm[k]),
        ])
    table = format_table(
        ["Block", "LoadMiss", "IfetchMiss", "ExecTime(norm)"],
        rows,
        title="64KB I and D caches, 260ns latency, 1 W/cycle",
        precision=4,
    )
    d_best = curve.block_sizes_words[int(np.argmin(curve.load_miss_ratio))]
    i_best = curve.block_sizes_words[int(np.argmin(curve.ifetch_miss_ratio))]
    perf_best = optimal_block_size_words(curve)
    text = (
        f"{table}\n\nMiss-ratio-optimal block: {d_best}W data, {i_best}W "
        f"instruction (paper: 32W and >64W).  Performance-optimal block: "
        f"{perf_best:.1f}W — substantially smaller, as §5 argues."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "block_sizes": list(curve.block_sizes_words),
            "load_miss": curve.load_miss_ratio.tolist(),
            "ifetch_miss": curve.ifetch_miss_ratio.tolist(),
            "execution_norm": exec_norm.tolist(),
            "miss_optimal_data": d_best,
            "miss_optimal_ifetch": i_best,
            "performance_optimal": perf_best,
        },
    )
