"""Figures 4-3, 4-4, 4-5: break-even cycle-time maps for set size 2/4/8.

For each design point, the cycle-time degradation at which a set-
associative machine stops beating the direct-mapped one of the same
size.  The paper's reading of these maps:

* "the numbers are almost uniformly small" — only totals under 16 KB
  break even above the 6 ns data-in-to-data-out time of an AS
  multiplexor, and nothing reaches its 11 ns select time, so TTL
  discrete caches should stay direct mapped;
* the gap between set size two and four is at most ~2.4 ns, and four to
  eight smaller still.

The 56 ns column is smoothed per footnote 9 before interpolating.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.associativity import (
    AS_MUX_DATA_NS,
    AS_MUX_SELECT_NS,
    breakeven_map,
    smooth_column,
    summarize_breakeven,
)
from ..core.report import cycle_labels, format_grid, size_labels
from .common import ExperimentResult, ExperimentSettings, speed_size_grid

EXPERIMENT_ID = "fig4_345"
TITLE = "Break-even cycle-time degradation for set associativity"


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    assocs = [a for a in settings.assocs if a > 1]
    dm = smooth_column(speed_size_grid(settings, assoc=1))
    blocks = []
    summaries: Dict[int, object] = {}
    maps = {}
    for assoc in assocs:
        sa = smooth_column(speed_size_grid(settings, assoc=assoc))
        bmap = breakeven_map(dm, sa)
        maps[assoc] = bmap
        summaries[assoc] = summarize_breakeven(dm, sa, assoc)
        blocks.append(
            format_grid(
                size_labels(dm.total_sizes),
                cycle_labels(dm.cycle_times_ns),
                bmap,
                corner="TotalL1",
                title=f"Set size {assoc}: break-even cycle-time slack (ns)",
                precision=2,
            )
        )
    lines = []
    for assoc in assocs:
        s = summaries[assoc]
        lines.append(
            f"set size {assoc}: max break-even {s.max_breakeven_ns:.1f}ns at "
            f"{s.max_at_total_size // 1024}KB total; "
            f"{'exceeds' if s.worthwhile_vs_as_mux else 'below'} the "
            f"{AS_MUX_DATA_NS:g}ns AS-multiplexor data delay"
        )
    if 2 in maps and 4 in maps:
        both = ~(np.isnan(maps[2]) | np.isnan(maps[4]))
        gap = float(np.nanmax(np.abs(maps[4][both] - maps[2][both]))) if both.any() else float("nan")
        lines.append(
            f"largest |set-4 minus set-2| break-even gap: {gap:.2f}ns "
            "(paper: at most 2.4ns)"
        )
    text = "\n\n".join(blocks) + "\n\n" + "\n".join(lines) + (
        f"\n(AS multiplexor: {AS_MUX_DATA_NS:g}ns data, "
        f"{AS_MUX_SELECT_NS:g}ns select.)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "breakeven": {a: maps[a].tolist() for a in assocs},
            "summaries": {
                a: {
                    "max_breakeven_ns": summaries[a].max_breakeven_ns,
                    "max_at_total_size": summaries[a].max_at_total_size,
                    "worthwhile_vs_as_mux": summaries[a].worthwhile_vs_as_mux,
                }
                for a in assocs
            },
        },
    )
