"""Section 6: the multilevel-hierarchy argument, run on the engine.

§6 concludes that "as the disparity between main memory times and CPU
cycle time continues to grow, the only way to deliver a consistent
proportion of the peak CPU performance is through the use of a
multilevel cache hierarchy", and that "the existence of a second level
cache modifies the speed–size tradeoff for the first level cache by
reducing the cost of first-level cache misses, making small, fast caches
a viable alternative."

This experiment runs the full engine (the fastpath is single-level) on a
ladder of L1 sizes at a fast clock, with and without a 256 KB unified
second-level cache, and reports:

* the speedup the L2 delivers at each L1 size (largest for small L1s);
* the L1 size at which performance peaks in each scenario — with an L2
  the optimum shifts toward smaller, faster first-level caches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


from ..core.geometry import CacheGeometry
from ..core.metrics import geometric_mean
from ..core.report import format_table
from ..core.timing import MemoryTiming
from ..sim.config import LowerLevelSpec, baseline_config
from ..sim.engine import simulate
from ..units import KB
from .common import ExperimentResult, ExperimentSettings, suite_for

EXPERIMENT_ID = "sec6"
TITLE = "Multilevel cache hierarchies (engine study)"

#: The engine is ~5x slower per reference than a fastpath replay, so this
#: experiment uses a subset of the suite by default.
DEFAULT_TRACE_SUBSET = ("mu3", "rd2n4")


def l2_spec(size_bytes: int = 256 * KB, latency_ns: float = 60.0) -> LowerLevelSpec:
    """A unified second-level cache: SRAM-latency port, 16-word blocks."""
    return LowerLevelSpec(
        geometry=CacheGeometry(
            size_bytes=size_bytes, block_words=16, assoc=1
        ),
        port=MemoryTiming(
            latency_ns=latency_ns, transfer_rate=1.0, write_op_ns=0.0,
            recovery_ns=0.0, address_cycles=1,
        ),
    )


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    names = tuple(
        n for n in DEFAULT_TRACE_SUBSET if n in settings.trace_names
    ) or settings.trace_names[:2]
    suite = suite_for(settings)
    traces = [suite[n] for n in names if n in suite]
    cycle_ns = 20.0
    l1_sizes = [2 * KB, 8 * KB, 32 * KB]
    if settings.full:
        l1_sizes = [2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB]
    rows: List[List[object]] = []
    exec_by: Dict[Tuple[int, bool], float] = {}
    for size in l1_sizes:
        for with_l2 in (False, True):
            config = baseline_config(
                cache_size_bytes=size, cycle_ns=cycle_ns
            )
            if with_l2:
                config = config.with_levels((l2_spec(),))
            execs = []
            penalties = []
            for trace in traces:
                stats = simulate(config, trace, seed=settings.seed)
                execs.append(stats.execution_time_ns)
                misses = stats.read_misses
                if misses:
                    # Mean observed stall per L1 read miss, in cycles:
                    # total cycles beyond the one-per-couplet baseline,
                    # attributed to misses.
                    penalties.append(
                        (stats.cycles - stats.n_couplets) / misses
                    )
            exec_by[(size, with_l2)] = geometric_mean(execs)
    for size in l1_sizes:
        base = exec_by[(size, False)]
        l2 = exec_by[(size, True)]
        rows.append([
            f"{2 * size // 1024}KB",
            base / min(exec_by.values()),
            l2 / min(exec_by.values()),
            f"{100 * (base / l2 - 1):.0f}%",
        ])
    table = format_table(
        ["TotalL1", "NoL2(norm)", "WithL2(norm)", "L2 speedup"],
        rows,
        title=f"20ns clock, 256KB unified L2 vs memory-direct",
    )
    best_no = min(l1_sizes, key=lambda s: exec_by[(s, False)])
    best_l2 = min(l1_sizes, key=lambda s: exec_by[(s, True)])
    gain_small = exec_by[(l1_sizes[0], False)] / exec_by[(l1_sizes[0], True)]
    gain_large = exec_by[(l1_sizes[-1], False)] / exec_by[(l1_sizes[-1], True)]
    text = (
        f"{table}\n\nThe L2 helps small first-level caches most "
        f"({100 * (gain_small - 1):.0f}% vs {100 * (gain_large - 1):.0f}%), "
        "reducing the penalty of an L1 miss and hence the pressure to grow "
        f"the L1: best L1 total {2 * best_no // 1024}KB without an L2, "
        f"{2 * best_l2 // 1024}KB or smaller with one."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "cycle_ns": cycle_ns,
            "execution": {
                f"{2 * s // 1024}KB@{'l2' if w else 'mem'}": v
                for (s, w), v in exec_by.items()
            },
            "l2_gain_small_l1": gain_small,
            "l2_gain_large_l1": gain_large,
            "best_l1_total_no_l2": 2 * best_no,
            "best_l1_total_with_l2": 2 * best_l2,
        },
    )
