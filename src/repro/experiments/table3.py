"""Table 3: memory performance versus cache miss penalty (§6).

The speed–size data rephrased with the read-miss penalty as the
variable.  For each cache size: cycles per reference (dropping below one
for large caches, since a couplet retires two references per cycle) and
the cycle-time fraction equivalent to a size doubling.  The two §6
observations the bench asserts: cycles/reference grows with the penalty
much faster for small caches, and the doubling-equivalent fraction
grows with the penalty (so shrinking the penalty shrinks the optimal
cache) — together, the case for multilevel hierarchies.
"""

from __future__ import annotations

from typing import Optional


from ..core.penalty import cycles_per_reference_slope, penalty_table
from ..core.report import format_table
from ..core.timing import MemoryTiming
from ..units import KB
from .common import ExperimentResult, ExperimentSettings, speed_size_grid

EXPERIMENT_ID = "table3"
TITLE = "Memory performance vs cache miss penalty"


def run(settings: Optional[ExperimentSettings] = None) -> ExperimentResult:
    settings = settings or ExperimentSettings()
    grid = speed_size_grid(settings, assoc=1)
    wanted = [s for s in (4 * KB, 16 * KB, 64 * KB, 256 * KB)
              if s in grid.total_sizes]
    if not wanted:
        wanted = list(grid.total_sizes[: 4])
    cells = penalty_table(grid, MemoryTiming(), sizes=wanted)
    penalties = sorted({c.read_penalty_cycles for c in cells}, reverse=True)
    by_key = {
        (c.total_size_bytes, c.read_penalty_cycles): c for c in cells
    }
    headers = ["Penalty"] + [
        col
        for size in wanted
        for col in (f"{size // 1024}KB c/ref", f"{size // 1024}KB sizex2")
    ]
    rows = []
    for penalty in penalties:
        row = [penalty]
        for size in wanted:
            cell = by_key.get((size, penalty))
            row.append(cell.cycles_per_reference if cell else None)
            row.append(
                cell.size_doubling_cycle_fraction
                if cell and cell.size_doubling_cycle_fraction is not None
                else None
            )
        rows.append(row)
    table = format_table(headers, rows, title=TITLE, precision=2)
    slopes = {
        size: cycles_per_reference_slope(cells, size) for size in wanted
    }
    text = (
        f"{table}\n\nCycles/reference sensitivity to the penalty "
        "(cycles per penalty cycle): "
        + ", ".join(f"{s // 1024}KB: {v:.3f}" for s, v in slopes.items())
        + "\nSmall caches depend strongly on the miss penalty; reducing the "
          "penalty (an L2) also reduces the value of doubling the L1."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "penalties": penalties,
            "cells": {
                f"{c.total_size_bytes // 1024}KB@{c.read_penalty_cycles}": {
                    "cycles_per_reference": c.cycles_per_reference,
                    "size_doubling_cycle_fraction":
                        c.size_doubling_cycle_fraction,
                }
                for c in cells
            },
            "cpr_slopes": {str(k): v for k, v in slopes.items()},
        },
    )
