"""Cache organizational geometry.

The paper's organizational axes (§2): total size, set size (degree of
associativity — footnote 1), number of sets, block size (footnote 10) and
fetch size (footnote 2).  :class:`CacheGeometry` captures one cache's
worth of those parameters and derives the address-decomposition constants
the functional simulator uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..errors import ConfigurationError
from ..units import (
    BYTES_PER_WORD,
    format_size,
    is_power_of_two,
    log2_exact,
)


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of a single cache.

    Parameters
    ----------
    size_bytes:
        Capacity of the data portion, in bytes.
    block_words:
        Words per block (the storage unit associated with one tag).
    assoc:
        Set size / degree of associativity; 1 means direct mapped.
    fetch_words:
        Words brought in from the next level on a read miss.  Defaults to
        the whole block, matching the paper's base system ("entire blocks
        are fetched on a miss").
    """

    size_bytes: int
    block_words: int = 4
    assoc: int = 1
    fetch_words: int = 0  # 0 means "whole block"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"cache size must be positive: {self.size_bytes}")
        if not is_power_of_two(self.block_words):
            raise ConfigurationError(
                f"block size must be a power of two words: {self.block_words}"
            )
        if self.assoc < 1:
            raise ConfigurationError(f"associativity must be >= 1: {self.assoc}")
        fetch = self.fetch_words or self.block_words
        if not is_power_of_two(fetch) or fetch > self.block_words:
            raise ConfigurationError(
                f"fetch size must be a power of two <= block size, got "
                f"{fetch} of {self.block_words}"
            )
        if self.size_bytes % (self.block_bytes * self.assoc):
            raise ConfigurationError(
                f"size {self.size_bytes}B is not a multiple of "
                f"block ({self.block_bytes}B) x assoc ({self.assoc})"
            )
        n_sets = self.size_bytes // (self.block_bytes * self.assoc)
        if not is_power_of_two(n_sets):
            raise ConfigurationError(
                f"number of sets must be a power of two, got {n_sets}"
            )
        # Frozen dataclass: set the derived fetch size via object.__setattr__.
        object.__setattr__(self, "fetch_words", fetch)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def block_bytes(self) -> int:
        return self.block_words * BYTES_PER_WORD

    @property
    def n_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def n_sets(self) -> int:
        return self.n_blocks // self.assoc

    @property
    def offset_bits(self) -> int:
        """Bits of a word address selecting the word within a block."""
        return log2_exact(self.block_words)

    @property
    def index_bits(self) -> int:
        """Bits of a word address selecting the set."""
        return log2_exact(self.n_sets)

    def split_address(self, word_addr: int) -> Tuple[int, int, int]:
        """Decompose a word address into ``(tag, set index, word offset)``."""
        offset = word_addr & (self.block_words - 1)
        block = word_addr >> self.offset_bits
        index = block & (self.n_sets - 1)
        tag = block >> self.index_bits
        return tag, index, offset

    def block_address(self, word_addr: int) -> int:
        """Return the block-aligned identifier of ``word_addr``."""
        return word_addr >> self.offset_bits

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_size(self, size_bytes: int) -> "CacheGeometry":
        """Same organization at a different capacity."""
        return replace(self, size_bytes=size_bytes)

    def with_assoc(self, assoc: int) -> "CacheGeometry":
        """Same capacity at a different set size (sets halve as ways double,
        as in Figure 4-1's constant-size associativity sweep)."""
        return replace(self, assoc=assoc)

    def with_block_words(self, block_words: int) -> "CacheGeometry":
        """Same capacity at a different block size, whole-block fetch."""
        return replace(self, block_words=block_words, fetch_words=0)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``64KB 4W/blk 1-way (4096 sets)``."""
        return (
            f"{format_size(self.size_bytes)} {self.block_words}W/blk "
            f"{self.assoc}-way ({self.n_sets} sets)"
        )
