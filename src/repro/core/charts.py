"""Plotting-free ASCII charts.

The paper communicates through figures; without a plotting dependency,
this module renders line/scatter charts as text so experiment reports
and examples can *show* the curves, not just tabulate them.  Charts are
deterministic strings, which also makes them testable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError

#: Markers assigned to series in insertion order.
_MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, steps: int, log: bool) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, int(round(position * (steps - 1)))))


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render one or more (x, y) series on a character grid.

    Points from different series get distinct markers; collisions show
    the most recently drawn marker.  Axis extremes are printed on the
    frame.  Raises on empty input or non-positive values under a log
    axis.
    """
    if not series or all(len(points) == 0 for points in series.values()):
        raise AnalysisError("nothing to plot")
    if len(series) > len(_MARKERS):
        raise AnalysisError(f"at most {len(_MARKERS)} series supported")
    if width < 8 or height < 4:
        raise AnalysisError("chart too small to be legible")
    points_all = [p for pts in series.values() for p in pts]
    xs = [p[0] for p in points_all]
    ys = [p[1] for p in points_all]
    if log_x and min(xs) <= 0:
        raise AnalysisError("log x-axis requires positive x values")
    if log_y and min(ys) <= 0:
        raise AnalysisError("log y-axis requires positive y values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for (name, points), marker in zip(series.items(), _MARKERS):
        for x, y in points:
            column = _scale(x, x_lo, x_hi, width, log_x)
            row = height - 1 - _scale(y, y_lo, y_hi, height, log_y)
            grid[row][column] = marker
    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{marker}={name}" for (name, _pts), marker in
        zip(series.items(), _MARKERS)
    )
    lines.append(legend)
    lines.append(f"{y_hi:>10.4g} +{'-' * width}+")
    for r, row in enumerate(grid):
        prefix = f"{y_lo:>10.4g}" if r == height - 1 else " " * 10
        lines.append(f"{prefix} |{''.join(row)}|")
    lines.append(" " * 11 + "+" + "-" * width + "+")
    lines.append(
        " " * 11 + f"{x_lo:<.4g}".ljust(width // 2)
        + f"{x_hi:>.4g}".rjust(width - width // 2)
    )
    lines.append(" " * 11 + f"{x_label} vs {y_label}"
                 + (" (log x)" if log_x else "")
                 + (" (log y)" if log_y else ""))
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line trend: map values onto eight block heights."""
    if not values:
        raise AnalysisError("nothing to plot")
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if width and len(values) > width:
        # Downsample by striding; endpoints preserved.
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width - 1)] + [
            values[-1]
        ]
    if hi == lo:
        return blocks[0] * len(values)
    return "".join(
        blocks[int((v - lo) / (hi - lo) * (len(blocks) - 1))] for v in values
    )
