"""First-order analytic models used by the paper's arguments.

§5 leans on Smith's derivation (the paper's footnote 12): with a miss
penalty of the form ``la + BS/tr``, the mean read time is

    T(BS) = hit + MR(BS) x (la + BS/tr)

and the block size minimizing it depends on the memory only through the
product ``la x tr``.  With the standard power-law miss model
``MR(BS) = c x BS^-alpha`` (0 < alpha < 1), the optimum has the closed
form

    BS* = (alpha / (1 - alpha)) x la x tr

— the product law made explicit.  This module provides the model, a
log-space power-law fitter for simulated miss curves, and a
cycles-per-reference decomposition used in §6-style reasoning.  The test
suite cross-checks the closed form against the simulator's parabola-fit
optima.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import AnalysisError


def mean_read_time_cycles(
    miss_ratio: float,
    latency_cycles: float,
    block_words: float,
    transfer_rate: float,
    hit_cycles: float = 1.0,
) -> float:
    """Footnote 12's mean read time: hit + MR x (la + BS/tr)."""
    if miss_ratio < 0 or latency_cycles < 0 or hit_cycles < 0:
        raise AnalysisError("negative time or ratio")
    if block_words <= 0 or transfer_rate <= 0:
        raise AnalysisError("block size and transfer rate must be positive")
    return hit_cycles + miss_ratio * (
        latency_cycles + block_words / transfer_rate
    )


@dataclass(frozen=True)
class MissPowerLaw:
    """MR(BS) = coefficient x BS^-alpha."""

    coefficient: float
    alpha: float

    def __call__(self, block_words: float) -> float:
        if block_words <= 0:
            raise AnalysisError("block size must be positive")
        return self.coefficient * block_words ** (-self.alpha)


def fit_miss_power_law(
    block_sizes: Sequence[float], miss_ratios: Sequence[float]
) -> MissPowerLaw:
    """Least-squares fit of the power law in log-log space.

    Only the decreasing part of a miss curve obeys the law; pass the
    points left of the miss-ratio minimum.
    """
    if len(block_sizes) != len(miss_ratios) or len(block_sizes) < 2:
        raise AnalysisError("need at least two matched points")
    if min(block_sizes) <= 0 or min(miss_ratios) <= 0:
        raise AnalysisError("points must be positive")
    logs_b = np.log(np.asarray(block_sizes, dtype=float))
    logs_m = np.log(np.asarray(miss_ratios, dtype=float))
    slope, intercept = np.polyfit(logs_b, logs_m, 1)
    return MissPowerLaw(coefficient=float(math.exp(intercept)),
                        alpha=float(-slope))


def analytic_optimal_block_words(
    law: MissPowerLaw, latency_cycles: float, transfer_rate: float
) -> float:
    """Closed-form optimum of the mean read time under the power law.

    Setting d/dBS [c BS^-a (la + BS/tr)] = 0 gives
    BS* = a/(1-a) x la x tr — a pure function of the speed product,
    which is precisely the paper's Figure 5-4 claim.  Requires
    0 < alpha < 1 (alpha >= 1 would mean bigger blocks always win).
    """
    if not 0.0 < law.alpha < 1.0:
        raise AnalysisError(
            f"power-law optimum needs 0 < alpha < 1, got {law.alpha:.3f}"
        )
    if latency_cycles <= 0 or transfer_rate <= 0:
        raise AnalysisError("latency and transfer rate must be positive")
    return (law.alpha / (1.0 - law.alpha)) * latency_cycles * transfer_rate


def cycles_per_reference_model(
    read_miss_ratio: float,
    read_fraction: float,
    miss_penalty_cycles: float,
    write_fraction: float = 0.0,
    write_cost_cycles: float = 2.0,
    pairing_factor: float = 0.7,
) -> float:
    """§6-style cycles/reference decomposition.

    base (one cycle per couplet, ~``pairing_factor`` couplets per
    reference) + write-hit overhead + read-miss stalls.  This linear
    model is what makes Table 3's "cycles per reference is approximately
    a linear function of the miss penalty" observation quantitative.
    """
    if not 0 <= read_fraction <= 1 or not 0 <= write_fraction <= 1:
        raise AnalysisError("fractions must lie in [0, 1]")
    base = pairing_factor
    writes = write_fraction * (write_cost_cycles - 1.0)
    misses = read_fraction * read_miss_ratio * miss_penalty_cycles
    return base + writes + misses


def crossover_speed_product(
    law: MissPowerLaw, block_a: float, block_b: float
) -> float:
    """Speed product at which blocks ``a`` and ``b`` tie.

    Solves T_a(la x tr) = T_b(la x tr) under the power law; useful for
    finding where the best *binary* block size steps (the paper's
    "either four or eight words" band).
    """
    if block_a <= 0 or block_b <= 0 or block_a == block_b:
        raise AnalysisError("need two distinct positive block sizes")
    ma = law(block_a)
    mb = law(block_b)
    if ma == mb:
        raise AnalysisError("blocks have identical miss ratios")
    # ma*(P + a) == mb*(P + b) with P the product and per-word transfer
    # folded into units of latency: P = (mb*b - ma*a) / (ma - mb).
    product = (mb * block_b - ma * block_a) / (ma - mb)
    if product <= 0:
        raise AnalysisError("no positive crossover for these blocks")
    return float(product)
