"""Result containers and aggregation for design-space sweeps.

The paper reports every number as "the geometric mean of warm start runs
for all eight traces"; :func:`geometric_mean` and :func:`aggregate` do
that here.  The containers are deliberately lightweight (plain floats and
numpy arrays, no simulator objects) so the analysis modules — equal
performance, associativity break-even, block size — can operate on them
without importing the simulators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from ..errors import AnalysisError


#: Floor applied before geometric means: ratios can legitimately be
#: zero (very large caches on short traces) and the mean must stay
#: defined.  Shared with the sweep drivers, which reduce replay
#: outcomes without building full summaries.
GM_FLOOR = 1e-9


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise AnalysisError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise AnalysisError(f"geometric mean requires positive values: {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class TraceRunSummary:
    """Lightweight per-(trace, design point) result.

    Carries exactly the numbers the paper's figures consume, extracted
    from one simulation run's :class:`~repro.sim.statistics.SimStats`.
    """

    trace: str
    cycle_ns: float
    cycles: int
    n_refs: int
    read_miss_ratio: float
    load_miss_ratio: float
    ifetch_miss_ratio: float
    read_traffic_ratio: float
    write_traffic_ratio_full: float
    write_traffic_ratio_dirty: float

    @property
    def execution_time_ns(self) -> float:
        return self.cycles * self.cycle_ns

    @property
    def cycles_per_reference(self) -> float:
        return self.cycles / self.n_refs if self.n_refs else 0.0

    @classmethod
    def from_stats(cls, stats) -> "TraceRunSummary":
        """Build from a :class:`~repro.sim.statistics.SimStats` (duck
        typed to avoid importing the simulator here)."""
        return cls(
            trace=stats.trace_name,
            cycle_ns=stats.cycle_ns,
            cycles=stats.cycles,
            n_refs=stats.n_refs,
            read_miss_ratio=stats.read_miss_ratio,
            load_miss_ratio=stats.load_miss_ratio,
            ifetch_miss_ratio=stats.ifetch_miss_ratio,
            read_traffic_ratio=stats.read_traffic_ratio,
            write_traffic_ratio_full=stats.write_traffic_ratio_full,
            write_traffic_ratio_dirty=stats.write_traffic_ratio_dirty,
        )


@dataclass(frozen=True)
class AggregateMetrics:
    """Geometric means over the trace suite at one design point."""

    execution_time_ns: float
    cycles_per_reference: float
    read_miss_ratio: float
    load_miss_ratio: float
    ifetch_miss_ratio: float
    read_traffic_ratio: float
    write_traffic_ratio_full: float
    write_traffic_ratio_dirty: float
    n_traces: int


def aggregate(summaries: Sequence[TraceRunSummary]) -> AggregateMetrics:
    """Geometric-mean the per-trace summaries (the paper's reduction).

    Ratios can legitimately be zero for very large caches on short
    traces; a tiny floor keeps the geometric mean defined without
    distorting anything the figures can show.
    """
    if not summaries:
        raise AnalysisError("cannot aggregate zero summaries")
    floor = GM_FLOOR

    def gm(attr: str) -> float:
        return geometric_mean(
            max(getattr(s, attr), floor) for s in summaries
        )

    return AggregateMetrics(
        execution_time_ns=gm("execution_time_ns"),
        cycles_per_reference=gm("cycles_per_reference"),
        read_miss_ratio=gm("read_miss_ratio"),
        load_miss_ratio=gm("load_miss_ratio"),
        ifetch_miss_ratio=gm("ifetch_miss_ratio"),
        read_traffic_ratio=gm("read_traffic_ratio"),
        write_traffic_ratio_full=gm("write_traffic_ratio_full"),
        write_traffic_ratio_dirty=gm("write_traffic_ratio_dirty"),
        n_traces=len(summaries),
    )


@dataclass
class SpeedSizeGrid:
    """Aggregated results over a (total L1 size) x (cycle time) grid.

    ``execution_ns[i, j]`` is the geometric-mean execution time at
    ``total_sizes[i]`` and ``cycle_times_ns[j]``.  Miss metrics depend on
    the organization only, so they are per-size vectors.
    """

    total_sizes: List[int]
    cycle_times_ns: List[float]
    execution_ns: np.ndarray
    cycles_per_reference: np.ndarray
    read_miss_ratio: np.ndarray
    load_miss_ratio: np.ndarray
    ifetch_miss_ratio: np.ndarray
    read_traffic_ratio: np.ndarray
    write_traffic_ratio_full: np.ndarray
    write_traffic_ratio_dirty: np.ndarray

    def __post_init__(self) -> None:
        expected = (len(self.total_sizes), len(self.cycle_times_ns))
        if self.execution_ns.shape != expected:
            raise AnalysisError(
                f"execution grid shape {self.execution_ns.shape} != {expected}"
            )
        if list(self.total_sizes) != sorted(self.total_sizes):
            raise AnalysisError("total_sizes must be ascending")
        if list(self.cycle_times_ns) != sorted(self.cycle_times_ns):
            raise AnalysisError("cycle_times_ns must be ascending")

    @property
    def n_sizes(self) -> int:
        return len(self.total_sizes)

    @property
    def n_cycles(self) -> int:
        return len(self.cycle_times_ns)

    @property
    def best_execution_ns(self) -> float:
        return float(self.execution_ns.min())

    def normalized(self) -> np.ndarray:
        """Execution times divided by the grid's best point (the paper
        normalizes Figure 3-3 the same way).

        A zero best time would silently turn the whole grid into
        inf/nan under numpy's division semantics; it can only come from
        a corrupted sweep, so it raises instead.
        """
        best = self.best_execution_ns
        if best <= 0:
            raise AnalysisError(
                f"cannot normalize: best execution time is {best}"
            )
        return self.execution_ns / best

    def size_index(self, total_size: int) -> int:
        try:
            return self.total_sizes.index(total_size)
        except ValueError as exc:
            raise AnalysisError(
                f"size {total_size} not in grid {self.total_sizes}"
            ) from exc

    def cycle_index(self, cycle_ns: float) -> int:
        for j, value in enumerate(self.cycle_times_ns):
            if abs(value - cycle_ns) < 1e-9:
                return j
        raise AnalysisError(
            f"cycle time {cycle_ns} not in grid {self.cycle_times_ns}"
        )


@dataclass
class BlockSizeCurve:
    """Execution time and miss ratios versus block size for one memory.

    One curve of Figure 5-2 (and, with the default memory, Figure 5-1).
    """

    latency_ns: float
    transfer_rate: float
    block_sizes_words: List[int]
    execution_ns: np.ndarray
    load_miss_ratio: np.ndarray
    ifetch_miss_ratio: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.block_sizes_words)
        if not (
            len(self.execution_ns) == len(self.load_miss_ratio)
            == len(self.ifetch_miss_ratio) == n
        ):
            raise AnalysisError("block-size curve arrays must be parallel")
        if list(self.block_sizes_words) != sorted(self.block_sizes_words):
            raise AnalysisError("block sizes must be ascending")

    @property
    def best_block_size_words(self) -> int:
        """The sampled block size with the lowest execution time."""
        return self.block_sizes_words[int(np.argmin(self.execution_ns))]
