"""Lines of equal performance across the speed–size design space.

This module implements the paper's Figure 3-4 analysis.  "Horizontal
slices though Figure 3-3 expose groups of machines with equal
performance.  By vertically interpolating between the simulations of the
same cache size, we can estimate the cycle time required in conjunction
with each cache organization to attain any given performance level."

The interpolation deliberately smooths the synchronous-quantization
anomalies (the paper's 56 ns aside): before inverting execution time as
a function of cycle time we take the monotone (running-maximum)
envelope, so a locally non-monotonic column cannot produce multiple
crossings — "this interpolation process smoothes the quantization
effects to the point where they are inconsequential".

The key output is the *slope* of a constant-performance curve in
nanoseconds of cycle time per doubling of cache size: how much cycle
time one may pay for the next RAM size up while breaking even.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from .metrics import SpeedSizeGrid

#: Region boundaries of Figure 3-4, in ns of cycle time per size doubling.
DEFAULT_REGION_BOUNDARIES = (2.5, 5.0, 7.5, 10.0)


def _monotone_exec(grid: SpeedSizeGrid, size_index: int) -> np.ndarray:
    """Execution time vs cycle time, forced non-decreasing."""
    return np.maximum.accumulate(grid.execution_ns[size_index, :])


def cycle_time_for_level(
    grid: SpeedSizeGrid, size_index: int, level_exec_ns: float
) -> Optional[float]:
    """Cycle time at which ``total_sizes[size_index]`` reaches a level.

    Inverts the (monotone envelope of the) execution-time column by
    linear interpolation.  Returns ``None`` when the level is
    unattainable within the simulated cycle-time range — faster than the
    machine can reach even at the fastest clock, or slower than the
    slowest simulated clock.
    """
    exec_ns = _monotone_exec(grid, size_index)
    cycles = np.asarray(grid.cycle_times_ns, dtype=float)
    if level_exec_ns < exec_ns[0] or level_exec_ns > exec_ns[-1]:
        return None
    # np.interp needs strictly increasing x; collapse flat runs.
    keep = np.concatenate(([True], np.diff(exec_ns) > 0))
    return float(np.interp(level_exec_ns, exec_ns[keep], cycles[keep]))


@dataclass(frozen=True)
class IsoPerformanceLine:
    """One line of equal performance.

    ``level`` is execution time normalized to the grid's best point;
    ``points`` are ``(total_size_bytes, cycle_time_ns)`` pairs, one per
    cache size that can attain the level within the simulated clocks.
    """

    level: float
    points: Tuple[Tuple[int, float], ...]


def iso_performance_lines(
    grid: SpeedSizeGrid,
    base_level: float = 1.1,
    level_step: float = 0.3,
    n_levels: int = 16,
) -> List[IsoPerformanceLine]:
    """Compute the paper's family of equal-performance lines.

    Figure 3-4: "The best performance level displayed is 1.1 times
    slower than the (4MB, 20ns) scenario.  The increment between the
    lines is an increase in execution time equal to 0.3 times this
    normalization value."
    """
    if n_levels < 1:
        raise AnalysisError(f"need at least one level, got {n_levels}")
    best = grid.best_execution_ns
    lines = []
    for k in range(n_levels):
        level = base_level + k * level_step
        points = []
        for i, size in enumerate(grid.total_sizes):
            cycle = cycle_time_for_level(grid, i, level * best)
            if cycle is not None:
                points.append((size, cycle))
        lines.append(IsoPerformanceLine(level=level, points=tuple(points)))
    return lines


def slope_ns_per_doubling(
    grid: SpeedSizeGrid, size_index: int, cycle_index: int
) -> Optional[float]:
    """Slope of the constant-performance curve through one design point.

    In ns of cycle time per doubling of *total* cache size: the cycle
    time the next size up could afford at equal performance, minus this
    point's cycle time, divided by the number of doublings between the
    two grid sizes.  ``None`` when the neighbouring size cannot reach
    this point's performance level inside the simulated clock range.
    """
    if size_index + 1 >= grid.n_sizes:
        return None
    level = float(grid.execution_ns[size_index, cycle_index])
    t_here = grid.cycle_times_ns[cycle_index]
    t_next = cycle_time_for_level(grid, size_index + 1, level)
    if t_next is None:
        return None
    doublings = np.log2(
        grid.total_sizes[size_index + 1] / grid.total_sizes[size_index]
    )
    if doublings <= 0:
        raise AnalysisError("sizes must be strictly ascending")
    return float((t_next - t_here) / doublings)


def slope_map(grid: SpeedSizeGrid) -> np.ndarray:
    """Slopes (ns per size doubling) at every grid point; NaN where the
    next size up cannot break even inside the simulated clocks."""
    result = np.full((grid.n_sizes, grid.n_cycles), np.nan)
    for i in range(grid.n_sizes - 1):
        for j in range(grid.n_cycles):
            slope = slope_ns_per_doubling(grid, i, j)
            if slope is not None:
                result[i, j] = slope
    return result


def classify_regions(
    grid: SpeedSizeGrid,
    boundaries: Sequence[float] = DEFAULT_REGION_BOUNDARIES,
) -> np.ndarray:
    """Figure 3-4's shaded regions: bucket each design point by slope.

    Returns an integer array: 0 means slope below ``boundaries[0]``
    (swap RAMs for smaller/faster ones), rising indices mean
    progressively larger worthwhile cycle-time sacrifices for capacity;
    -1 marks points with no defined slope.
    """
    if list(boundaries) != sorted(boundaries):
        raise AnalysisError("region boundaries must be ascending")
    slopes = slope_map(grid)
    regions = np.full(slopes.shape, -1, dtype=int)
    valid = ~np.isnan(slopes)
    regions[valid] = np.searchsorted(
        np.asarray(boundaries, dtype=float), slopes[valid], side="left"
    )
    return regions


def preferred_size_range(
    grid: SpeedSizeGrid,
    low_slope_ns: float = 2.5,
    high_slope_ns: float = 10.0,
    cycle_index: Optional[int] = None,
) -> Tuple[Optional[int], Optional[int]]:
    """The paper's headline band: sizes where growing still pays.

    Returns ``(grow_until, stop_at)`` — the largest total size whose
    slope still exceeds ``high_slope_ns`` (strong motivation to grow)
    and the smallest whose slope falls below ``low_slope_ns`` (growing
    is no longer worth any cycle-time penalty).  Evaluated at the middle
    cycle-time column unless ``cycle_index`` is given.
    """
    j = grid.n_cycles // 2 if cycle_index is None else cycle_index
    grow_until = None
    stop_at = None
    for i in range(grid.n_sizes - 1):
        slope = slope_ns_per_doubling(grid, i, j)
        if slope is None:
            continue
        if slope > high_slope_ns:
            grow_until = grid.total_sizes[i + 1]
        if stop_at is None and slope < low_slope_ns:
            stop_at = grid.total_sizes[i]
    return grow_until, stop_at
