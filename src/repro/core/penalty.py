"""Miss-penalty framing of the speed–size tradeoff (§6, Table 3).

The paper rephrases the speed–size data with the cache miss penalty as
the explicit variable: as the cycle time varied from 20 ns to 80 ns, the
read penalty of the fixed physical memory went from 14 to 8 cycles.
Table 3 reports, per cache size and per read penalty:

* cycles per reference (dropping below one for large caches, because a
  couplet retires two references in one cycle), and
* the cycle-time degradation equivalent to a cache-size doubling,
  expressed as a *fraction of the cycle time*.

The two observations drawn from it motivate multilevel hierarchies:
small caches' cycles-per-reference is a strong function of the penalty,
and the equivalent fraction shrinks as the penalty shrinks — so reducing
the miss penalty (with a second-level cache) both recovers performance
and reduces the optimal first-level size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from .equal_performance import slope_ns_per_doubling
from .metrics import SpeedSizeGrid
from .timing import MemoryTiming


@dataclass(frozen=True)
class PenaltyCell:
    """One (cache size, read penalty) cell of Table 3."""

    total_size_bytes: int
    read_penalty_cycles: int
    cycles_per_reference: float
    size_doubling_cycle_fraction: Optional[float]


def read_penalty_cycles(
    memory: MemoryTiming, block_words: int, cycle_ns: float
) -> int:
    """Cache read-miss penalty in cycles (Table 2's "Read Time")."""
    return memory.read_cycles(block_words, cycle_ns)


def penalty_table(
    grid: SpeedSizeGrid,
    memory: MemoryTiming,
    block_words: int = 4,
    sizes: Optional[Sequence[int]] = None,
) -> List[PenaltyCell]:
    """Build Table 3 from a speed–size sweep.

    Each simulated cycle time maps to a read penalty; cycle times that
    share a penalty are averaged (the quantization makes the mapping
    many-to-one).  The size-doubling equivalent is the Figure 3-4 slope
    at the design point divided by the cycle time.
    """
    chosen_sizes = list(sizes) if sizes is not None else list(grid.total_sizes)
    cells: List[PenaltyCell] = []
    penalties = [
        read_penalty_cycles(memory, block_words, t)
        for t in grid.cycle_times_ns
    ]
    for size in chosen_sizes:
        i = grid.size_index(size)
        by_penalty: Dict[int, List[Tuple[float, Optional[float]]]] = {}
        for j, penalty in enumerate(penalties):
            cpr = float(grid.cycles_per_reference[i, j])
            slope = slope_ns_per_doubling(grid, i, j)
            fraction = (
                slope / grid.cycle_times_ns[j] if slope is not None else None
            )
            by_penalty.setdefault(penalty, []).append((cpr, fraction))
        for penalty in sorted(by_penalty, reverse=True):
            entries = by_penalty[penalty]
            cprs = [cpr for cpr, _f in entries]
            fractions = [f for _cpr, f in entries if f is not None]
            cells.append(
                PenaltyCell(
                    total_size_bytes=size,
                    read_penalty_cycles=penalty,
                    cycles_per_reference=float(np.mean(cprs)),
                    size_doubling_cycle_fraction=(
                        float(np.mean(fractions)) if fractions else None
                    ),
                )
            )
    return cells


def cycles_per_reference_slope(
    cells: Sequence[PenaltyCell], total_size_bytes: int
) -> float:
    """Linear sensitivity of cycles/reference to the read penalty.

    §6: "the cycles per reference is approximately a linear function of
    the miss penalty"; the slope quantifies how strongly a size class
    depends on the penalty (large for small caches).
    """
    points = [
        (c.read_penalty_cycles, c.cycles_per_reference)
        for c in cells
        if c.total_size_bytes == total_size_bytes
    ]
    if len(points) < 2:
        raise AnalysisError(
            f"need at least two penalties for size {total_size_bytes}"
        )
    xs, ys = zip(*points)
    slope, _intercept = np.polyfit(xs, ys, 1)
    return float(slope)
