"""Block-size optimization and the memory-speed product law (§5).

The paper's block-size analysis has three pieces, all implemented here:

* the U-shaped miss-ratio and execution-time curves versus block size
  (Figures 5-1 and 5-2), produced by the sweep driver and held in
  :class:`~repro.core.metrics.BlockSizeCurve`;
* the *performance-optimal* block size, estimated "by fitting a parabola
  to the lowest three points and finding its minimum" — in log2(block
  size) coordinates, since block sizes are sampled in octaves
  (Figure 5-3);
* the first-order law that the optimal block size depends on the memory
  only through the product ``la x tr`` (latency in cycles times transfer
  rate in words per cycle), verified in Figure 5-4, together with the
  "experienced engineer" balance line BS = la x tr at which latency and
  transfer time are equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from .metrics import BlockSizeCurve


def fit_parabola_minimum(
    xs: Sequence[float], ys: Sequence[float]
) -> float:
    """Vertex x of the parabola through three points (minimum).

    Raises when the points are collinear or curve downward (no minimum).
    """
    if len(xs) != 3 or len(ys) != 3:
        raise AnalysisError("parabola fit requires exactly three points")
    coeffs = np.polyfit(np.asarray(xs, float), np.asarray(ys, float), 2)
    a, b, _c = coeffs
    if a <= 0:
        raise AnalysisError(
            f"points do not form an upward parabola (a={a:.3g})"
        )
    return float(-b / (2 * a))


def optimal_block_size_words(curve: BlockSizeCurve) -> float:
    """Non-integral performance-optimal block size for one memory.

    Fits a parabola in (log2 block size, execution time) through the
    lowest sampled point and its neighbours; at the edges of the sampled
    range the edge point itself is returned (the optimum lies at or
    beyond the boundary).
    """
    n = len(curve.block_sizes_words)
    if n < 3:
        raise AnalysisError("need at least three block sizes")
    k = int(np.argmin(curve.execution_ns))
    if k == 0 or k == n - 1:
        return float(curve.block_sizes_words[k])
    xs = [float(np.log2(curve.block_sizes_words[i])) for i in (k - 1, k, k + 1)]
    ys = [float(curve.execution_ns[i]) for i in (k - 1, k, k + 1)]
    try:
        log_opt = fit_parabola_minimum(xs, ys)
    except AnalysisError:
        return float(curve.block_sizes_words[k])
    # Clamp to the neighbour interval: the parabola is only trusted
    # between the sampled octaves around the minimum.
    log_opt = min(max(log_opt, xs[0]), xs[2])
    return float(2.0 ** log_opt)


def balance_block_size_words(latency_cycles: float, transfer_rate: float) -> float:
    """Block size at which transfer time equals latency (the dotted line
    of Figure 5-4): BS / tr = la, so BS = la x tr."""
    if latency_cycles <= 0 or transfer_rate <= 0:
        raise AnalysisError("latency and transfer rate must be positive")
    return latency_cycles * transfer_rate


@dataclass(frozen=True)
class ProductLawPoint:
    """One point of Figure 5-4."""

    latency_cycles: int
    transfer_rate: float
    speed_product: float
    optimal_block_words: float
    balance_block_words: float


def product_law_points(
    curves: Dict[Tuple[int, float], BlockSizeCurve]
) -> List[ProductLawPoint]:
    """Optimal block size against the la x tr product for many memories.

    ``curves`` maps ``(latency_cycles, transfer_rate)`` to the simulated
    block-size curve for that memory.  Sorted by speed product.
    """
    points = []
    for (latency_cycles, transfer_rate), curve in curves.items():
        points.append(
            ProductLawPoint(
                latency_cycles=latency_cycles,
                transfer_rate=transfer_rate,
                speed_product=latency_cycles * transfer_rate,
                optimal_block_words=optimal_block_size_words(curve),
                balance_block_words=balance_block_size_words(
                    latency_cycles, transfer_rate
                ),
            )
        )
    points.sort(key=lambda p: (p.speed_product, p.transfer_rate))
    return points


def product_law_spread(points: Sequence[ProductLawPoint]) -> float:
    """How well the points collapse onto a single function of the product.

    Groups points by (binned) speed product and returns the worst
    relative spread of optimal block sizes within a group — Figure 5-4's
    "the line segments line up quite well" claim, quantified.  Groups
    with a single member contribute zero.
    """
    if not points:
        raise AnalysisError("no points")
    groups: Dict[float, List[float]] = {}
    for p in points:
        key = round(float(np.log2(p.speed_product)) * 4) / 4
        groups.setdefault(key, []).append(p.optimal_block_words)
    worst = 0.0
    for values in groups.values():
        if len(values) < 2:
            continue
        spread = (max(values) - min(values)) / max(values)
        worst = max(worst, spread)
    return worst
