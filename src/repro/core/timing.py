"""Temporal parameters: cycle quantization and memory operation costs.

This module is the temporal heart of the reproduction.  The paper models
main memory as a single functional unit whose physical times (latency,
write operation, recovery) are fixed in nanoseconds while the CPU/cache
clock varies; every operation is quantized up to whole machine cycles
because the memory is synchronous with the backplane.  Table 2 of the
paper tabulates the resulting cycle counts for the base memory — the unit
tests reproduce that table exactly from :class:`MemoryTiming`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..units import quantize_ns


@dataclass(frozen=True)
class MemoryTiming:
    """Physical timing of one memory (or next-level-cache) port.

    Parameters mirror §2 of the paper:

    ``latency_ns``
        Access latency after the address cycle: DRAM access plus decode,
        buffering, ECC.  Default 180 ns, so at 40 ns the read latency is
        1 + ceil(180/40) = 6 cycles.
    ``transfer_rate``
        Words transferred per CPU cycle (may be fractional; 0.25 means
        one word every four cycles).  Default one word per cycle.
    ``write_op_ns``
        Time the memory is internally busy performing a write after the
        data has been handed over (default 100 ns); off the critical path
        of the CPU.
    ``recovery_ns``
        Minimum gap between the end of one operation and the start of the
        next (default 120 ns, "based on the difference between DRAM
        access and cycle times").
    ``address_cycles``
        Cycles to present the block address (default 1).
    """

    latency_ns: float = 180.0
    transfer_rate: float = 1.0
    write_op_ns: float = 100.0
    recovery_ns: float = 120.0
    address_cycles: int = 1

    def __post_init__(self) -> None:
        if self.latency_ns < 0 or self.write_op_ns < 0 or self.recovery_ns < 0:
            raise ConfigurationError("memory times must be non-negative")
        if self.transfer_rate <= 0:
            raise ConfigurationError(
                f"transfer rate must be positive: {self.transfer_rate}"
            )
        if self.address_cycles < 0:
            raise ConfigurationError(
                f"address cycles must be >= 0: {self.address_cycles}"
            )

    # ------------------------------------------------------------------
    # Cycle-count derivations (all quantized to the given clock)
    # ------------------------------------------------------------------
    def latency_cycles(self, cycle_ns: float) -> int:
        """Cycles from read issue until the first word starts arriving."""
        return self.address_cycles + quantize_ns(self.latency_ns, cycle_ns)

    def transfer_cycles(self, words: int) -> int:
        """Cycles to move ``words`` across the port (minimum one).

        Independent of the clock: the transfer rate is already expressed
        in words per cycle.  "For very small block sizes, having a large
        tr is of no benefit, as the minimum transfer time is one cycle."
        """
        if words <= 0:
            raise ConfigurationError(f"transfer of {words} words")
        exact = words / self.transfer_rate
        rounded = round(exact)
        if abs(exact - rounded) < 1e-9:
            return max(1, int(rounded))
        return max(1, int(math.ceil(exact)))

    def read_cycles(self, words: int, cycle_ns: float) -> int:
        """Total cycles for a read of ``words`` (Table 2's "Read Time")."""
        return self.latency_cycles(cycle_ns) + self.transfer_cycles(words)

    def write_handoff_cycles(self, words: int) -> int:
        """Cycles the requester is occupied by a write: address + data.

        After the handoff "the cache can proceed with other business
        while the write actually occurs".
        """
        return self.address_cycles + self.transfer_cycles(words)

    def write_cycles(self, words: int, cycle_ns: float) -> int:
        """Cycles until the write has been performed inside the memory
        (Table 2's "Write Time"): handoff plus the internal write op."""
        return self.write_handoff_cycles(words) + quantize_ns(
            self.write_op_ns, cycle_ns
        )

    def recovery_cycles(self, cycle_ns: float) -> int:
        """Cycles the memory needs between operations (Table 2)."""
        return quantize_ns(self.recovery_ns, cycle_ns)

    # ------------------------------------------------------------------
    # Variants used by the experiments
    # ------------------------------------------------------------------
    def with_latency_ns(self, latency_ns: float) -> "MemoryTiming":
        """Vary only the access latency (Figure 5-2's latency axis keeps
        read, write-op and recovery times equal, per §5)."""
        return replace(
            self,
            latency_ns=latency_ns,
            write_op_ns=latency_ns,
            recovery_ns=latency_ns,
        )

    def with_transfer_rate(self, transfer_rate: float) -> "MemoryTiming":
        return replace(self, transfer_rate=transfer_rate)

    def speed_product(self, cycle_ns: float) -> float:
        """The paper's la x tr product (latency in cycles x words/cycle).

        §5 derives — and Figure 5-4 verifies — that the performance-
        optimal block size depends on the memory speed only through this
        product.
        """
        return self.latency_cycles(cycle_ns) * self.transfer_rate


@dataclass(frozen=True)
class CacheTiming:
    """Cache-port service times, in cycles of the cache's own clock.

    The paper's base system: "All read hits take one CPU cycle, while
    writes take two — one to access the tags, followed by one to write
    the data."
    """

    read_hit_cycles: int = 1
    write_hit_cycles: int = 2

    def __post_init__(self) -> None:
        if self.read_hit_cycles < 1 or self.write_hit_cycles < 1:
            raise ConfigurationError("hit times must be at least one cycle")


#: The paper's default main memory ("quite aggressive by today's
#: standards"): 180 ns latency, one word per cycle, 100 ns write op,
#: 120 ns recovery, one address cycle.
DEFAULT_MEMORY = MemoryTiming()

#: The paper's base CPU/cache cycle time in nanoseconds.
DEFAULT_CYCLE_NS = 40.0
