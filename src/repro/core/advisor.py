"""Design advisor: pick (cache size, cycle time) from a RAM ladder.

§3's worked example is an engineering decision procedure: "If the best
available 16Kb and 64Kb RAMs run at 15 and 25ns respectively, then two
comparable design alternatives are 8KB per cache with the 2K by 8b
chips or 32KB per cache with the 8K by 8b chips ... running the CPU at
50ns with a larger cache improves the overall performance by 7.3%."

:func:`recommend_design` packages that procedure: given a simulated
speed–size grid and the designer's *RAM ladder* — the (cache size,
achievable cycle time) points the available parts permit — it evaluates
every rung by interpolation and ranks them by execution time, with the
margins the paper reads off its equal-performance lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import AnalysisError
from ..units import format_size
from .equal_performance import slope_ns_per_doubling
from .metrics import SpeedSizeGrid
from .report import format_table


@dataclass(frozen=True)
class LadderRung:
    """One buildable design point: a total L1 size and the CPU/cache
    cycle time the corresponding RAM parts support."""

    total_size_bytes: int
    cycle_ns: float

    def __post_init__(self) -> None:
        if self.total_size_bytes <= 0 or self.cycle_ns <= 0:
            raise AnalysisError("rung sizes and cycle times must be positive")


@dataclass(frozen=True)
class RungEvaluation:
    """A rung's interpolated performance on the grid."""

    rung: LadderRung
    execution_ns: float
    relative_to_best: float
    slope_ns_per_doubling: float


def evaluate_rung(grid: SpeedSizeGrid, rung: LadderRung) -> float:
    """Interpolated execution time of one rung.

    Bilinear in (log2 size, cycle time); rungs outside the simulated
    grid are rejected rather than extrapolated.
    """
    sizes = np.log2(np.asarray(grid.total_sizes, dtype=float))
    cycles = np.asarray(grid.cycle_times_ns, dtype=float)
    s = float(np.log2(rung.total_size_bytes))
    t = float(rung.cycle_ns)
    if not (sizes[0] <= s <= sizes[-1]) or not (cycles[0] <= t <= cycles[-1]):
        raise AnalysisError(
            f"rung ({format_size(rung.total_size_bytes)}, {t:g}ns) outside "
            "the simulated grid"
        )
    i = int(np.searchsorted(sizes, s, side="right") - 1)
    i = min(i, len(sizes) - 2)
    j = int(np.searchsorted(cycles, t, side="right") - 1)
    j = min(j, len(cycles) - 2)
    ws = (s - sizes[i]) / (sizes[i + 1] - sizes[i])
    wt = (t - cycles[j]) / (cycles[j + 1] - cycles[j])
    e = grid.execution_ns
    return float(
        e[i, j] * (1 - ws) * (1 - wt)
        + e[i + 1, j] * ws * (1 - wt)
        + e[i, j + 1] * (1 - ws) * wt
        + e[i + 1, j + 1] * ws * wt
    )


def recommend_design(
    grid: SpeedSizeGrid, ladder: Sequence[LadderRung]
) -> List[RungEvaluation]:
    """Rank every buildable rung; best (lowest execution time) first.

    Each evaluation carries the equal-performance slope at the nearest
    grid point — the number that tells the designer whether the *next*
    RAM generation will move the answer.
    """
    if not ladder:
        raise AnalysisError("empty RAM ladder")
    execs = [evaluate_rung(grid, rung) for rung in ladder]
    best = min(execs)
    evaluations = []
    for rung, exec_ns in zip(ladder, execs):
        i = int(np.argmin(
            [abs(np.log2(s / rung.total_size_bytes))
             for s in grid.total_sizes]
        ))
        j = int(np.argmin(
            [abs(c - rung.cycle_ns) for c in grid.cycle_times_ns]
        ))
        slope = slope_ns_per_doubling(grid, min(i, grid.n_sizes - 2), j)
        evaluations.append(
            RungEvaluation(
                rung=rung,
                execution_ns=exec_ns,
                relative_to_best=exec_ns / best,
                slope_ns_per_doubling=(
                    slope if slope is not None else float("nan")
                ),
            )
        )
    evaluations.sort(key=lambda ev: ev.execution_ns)
    return evaluations


def advisor_table(evaluations: Sequence[RungEvaluation]) -> str:
    """Render a recommendation ranking."""
    rows = []
    for rank, ev in enumerate(evaluations, start=1):
        rows.append([
            rank,
            format_size(ev.rung.total_size_bytes),
            f"{ev.rung.cycle_ns:g}ns",
            ev.relative_to_best,
            ev.slope_ns_per_doubling,
        ])
    return format_table(
        ["Rank", "TotalL1", "Cycle", "Exec(rel)", "ns/doubling"],
        rows,
        title="RAM-ladder recommendation (best first)",
        precision=3,
    )
