"""Plain-text rendering of tables, grids and series.

The paper presents its results as figures and tables; without a plotting
dependency, the experiment harness renders everything as aligned ASCII —
tables with headers, 2-D grids with row/column labels, and single series.
EXPERIMENTS.md is assembled from these renderings, and the benchmark
suite prints them so a run regenerates the paper's rows.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from ..errors import AnalysisError
from ..units import format_size

Cell = Union[str, int, float, None]


def _format_cell(value: Cell, width: int = 0, precision: int = 3) -> str:
    if value is None:
        text = "-"
    elif isinstance(value, str):
        text = value
    elif isinstance(value, (int, np.integer)):
        text = str(int(value))
    else:
        value = float(value)
        if value != value:  # NaN
            text = "-"
        elif value and (abs(value) >= 1e5 or abs(value) < 10 ** -precision):
            text = f"{value:.{precision}g}"
        else:
            text = f"{value:.{precision}f}"
    return text.rjust(width) if width else text


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned table with a separator under the header."""
    if any(len(row) != len(headers) for row in rows):
        raise AnalysisError("every row must match the header width")
    columns = len(headers)
    widths = [len(h) for h in headers]
    rendered = [
        [_format_cell(cell, precision=precision) for cell in row] for row in rows
    ]
    for row in rendered:
        for c in range(columns):
            widths[c] = max(widths[c], len(row[c]))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(widths[c]) for c, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[c] for c in range(columns)))
    for row in rendered:
        lines.append("  ".join(row[c].rjust(widths[c]) for c in range(columns)))
    return "\n".join(lines)


def format_grid(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: np.ndarray,
    corner: str = "",
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render a 2-D array with labelled rows and columns."""
    values = np.asarray(values)
    if values.shape != (len(row_labels), len(col_labels)):
        raise AnalysisError(
            f"grid shape {values.shape} does not match labels "
            f"({len(row_labels)} x {len(col_labels)})"
        )
    headers = [corner] + list(col_labels)
    rows = [
        [row_labels[i]] + [values[i, j] for j in range(values.shape[1])]
        for i in range(values.shape[0])
    ]
    return format_table(headers, rows, title=title, precision=precision)


def format_series(
    xs: Sequence[Cell],
    ys: Sequence[Cell],
    x_label: str,
    y_label: str,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render a single (x, y) series as a two-column table."""
    if len(xs) != len(ys):
        raise AnalysisError("series axes must have equal lengths")
    return format_table(
        [x_label, y_label], list(zip(xs, ys)), title=title, precision=precision
    )


def size_labels(sizes_bytes: Iterable[int]) -> List[str]:
    """Render byte sizes the way the paper labels its axes (4KB, 2MB)."""
    return [format_size(s) for s in sizes_bytes]


def cycle_labels(cycle_times_ns: Iterable[float]) -> List[str]:
    """Render cycle times as e.g. ``40ns``."""
    return [f"{t:g}ns" for t in cycle_times_ns]
