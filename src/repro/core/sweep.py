"""Design-space sweep drivers.

These functions are the reproduction's equivalent of the paper's
simulation farm: they run the two-phase fastpath over cartesian grids of
organizational and temporal parameters and aggregate the results into
the containers the analysis modules consume.

The cost structure mirrors the paper's macro-expansion trick: one
functional cache pass per *organization* per trace, then cheap timing
replays for every cycle time / memory speed — see
:mod:`repro.sim.fastpath`.

Import note: this module imports the simulators, so it is exported from
the top-level :mod:`repro` package rather than :mod:`repro.core` (whose
``__init__`` must stay substrate-free).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cpu.processor import CoupletStream, pair_couplets
from ..errors import AnalysisError
from ..sim.config import SystemConfig, baseline_config
from ..sim.fastpath import assemble_stats, functional_pass, replay
from ..trace.record import Trace
from ..units import quantize_ns
from .metrics import (
    AggregateMetrics,
    BlockSizeCurve,
    SpeedSizeGrid,
    TraceRunSummary,
    aggregate,
    geometric_mean,
)
from .policy import ReplacementKind
from .timing import DEFAULT_CYCLE_NS, MemoryTiming

#: Optional progress callback: called with a human-readable step label.
ProgressFn = Callable[[str], None]


def _as_trace_list(traces) -> List[Trace]:
    if isinstance(traces, Mapping):
        return list(traces.values())
    return list(traces)


def _pair_all(traces: Sequence[Trace]) -> List[CoupletStream]:
    return [pair_couplets(t) for t in traces]


def _pass_job(args):
    """Module-level functional-pass job (must be picklable for the
    process pool)."""
    config, trace, seed = args
    return functional_pass(config, trace, seed=seed)


def run_functional_passes(
    jobs: Sequence[Tuple[SystemConfig, Trace, int]],
    n_jobs: int = 1,
    couplets: Optional[Mapping[int, CoupletStream]] = None,
):
    """Run many functional passes, optionally across processes.

    This is the library's stand-in for the paper's farm of 10–20
    MicroVAX II workstations: the expensive organization passes are
    independent and distribute perfectly.  ``couplets`` maps
    ``id(trace)`` to a prepaired stream, used only on the serial path
    (child processes re-pair locally — cheaper than pickling streams).
    """
    jobs = list(jobs)
    if n_jobs <= 1 or len(jobs) <= 1:
        couplets = couplets or {}
        return [
            functional_pass(
                config, trace, couplets=couplets.get(id(trace)), seed=seed
            )
            for config, trace, seed in jobs
        ]
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        return list(pool.map(_pass_job, jobs))


def run_speed_size_sweep(
    traces,
    sizes_each_bytes: Sequence[int],
    cycle_times_ns: Sequence[float],
    assoc: int = 1,
    block_words: int = 4,
    memory: Optional[MemoryTiming] = None,
    replacement: ReplacementKind = ReplacementKind.RANDOM,
    write_buffer_depth: int = 4,
    seed: int = 0,
    n_jobs: int = 1,
    progress: Optional[ProgressFn] = None,
) -> SpeedSizeGrid:
    """Sweep (cache size x cycle time); aggregate over the trace suite.

    ``sizes_each_bytes`` sizes *each* of the split caches (the paper
    varies the pair together); the returned grid is indexed by total L1
    size.  This one sweep backs Figures 3-1 through 3-4 and, repeated
    per associativity, Figures 4-1 through 4-5.  ``n_jobs`` distributes
    the functional passes over processes.
    """
    traces = _as_trace_list(traces)
    if not traces:
        raise AnalysisError("no traces supplied")
    sizes = sorted(sizes_each_bytes)
    cycles_ns = sorted(cycle_times_ns)
    memory = memory or MemoryTiming()
    configs = [
        baseline_config(
            cache_size_bytes=size,
            block_words=block_words,
            assoc=assoc,
            replacement=replacement,
            write_buffer_depth=write_buffer_depth,
            memory=memory,
        )
        for size in sizes
    ]
    couplet_map = None
    if n_jobs <= 1:
        couplet_map = {
            id(trace): cs for trace, cs in zip(traces, _pair_all(traces))
        }
    if progress:
        progress(
            f"{len(configs)} organizations x {len(traces)} traces, "
            f"n_jobs={n_jobs}"
        )
    all_streams = run_functional_passes(
        [
            (config, trace, seed)
            for config in configs
            for trace in traces
        ],
        n_jobs=n_jobs,
        couplets=couplet_map,
    )
    n_i, n_j = len(sizes), len(cycles_ns)
    exec_gm = np.empty((n_i, n_j))
    cpr_gm = np.empty((n_i, n_j))
    per_size_metrics: List[AggregateMetrics] = []
    for i, size in enumerate(sizes):
        streams = all_streams[i * len(traces): (i + 1) * len(traces)]
        # Timing-independent metrics, aggregated once per size (the
        # cycle-time column is arbitrary for these).
        size_summaries = []
        for j, cycle_ns in enumerate(cycles_ns):
            summaries = []
            for stream in streams:
                outcome = replay(
                    stream, memory, cycle_ns,
                    write_buffer_depth=write_buffer_depth,
                )
                summaries.append(
                    TraceRunSummary.from_stats(
                        assemble_stats(stream, outcome, cycle_ns)
                    )
                )
            agg = aggregate(summaries)
            exec_gm[i, j] = agg.execution_time_ns
            cpr_gm[i, j] = agg.cycles_per_reference
            if j == 0:
                size_summaries = summaries
        per_size_metrics.append(aggregate(size_summaries))
    return SpeedSizeGrid(
        total_sizes=[2 * s for s in sizes],
        cycle_times_ns=list(cycles_ns),
        execution_ns=exec_gm,
        cycles_per_reference=cpr_gm,
        read_miss_ratio=np.array(
            [m.read_miss_ratio for m in per_size_metrics]
        ),
        load_miss_ratio=np.array(
            [m.load_miss_ratio for m in per_size_metrics]
        ),
        ifetch_miss_ratio=np.array(
            [m.ifetch_miss_ratio for m in per_size_metrics]
        ),
        read_traffic_ratio=np.array(
            [m.read_traffic_ratio for m in per_size_metrics]
        ),
        write_traffic_ratio_full=np.array(
            [m.write_traffic_ratio_full for m in per_size_metrics]
        ),
        write_traffic_ratio_dirty=np.array(
            [m.write_traffic_ratio_dirty for m in per_size_metrics]
        ),
    )


def run_associativity_sweeps(
    traces,
    sizes_each_bytes: Sequence[int],
    cycle_times_ns: Sequence[float],
    assocs: Sequence[int] = (1, 2, 4, 8),
    **kwargs,
) -> Dict[int, SpeedSizeGrid]:
    """One speed–size grid per set size (§4's experiment).

    Total size is held constant as associativity changes — the sweep
    sizes each cache identically and halves the number of sets as the
    ways double, exactly as Figure 4-1 specifies.  Random replacement is
    the paper's choice and the default.
    """
    return {
        assoc: run_speed_size_sweep(
            traces, sizes_each_bytes, cycle_times_ns, assoc=assoc, **kwargs
        )
        for assoc in assocs
    }


def run_blocksize_sweep(
    traces,
    block_sizes_words: Sequence[int],
    latencies_ns: Sequence[float],
    transfer_rates: Sequence[float],
    cache_size_each_bytes: int = 64 * 1024,
    cycle_ns: float = DEFAULT_CYCLE_NS,
    write_buffer_depth: int = 4,
    seed: int = 0,
    n_jobs: int = 1,
    progress: Optional[ProgressFn] = None,
) -> Dict[Tuple[int, float], BlockSizeCurve]:
    """Sweep block size against memory latency and transfer rate (§5).

    Returns curves keyed by ``(latency_cycles, transfer_rate)`` where
    the latency label is the paper's quantized count (e.g. 100 ns at a
    40 ns clock is "3 cycles"; the simulated read adds one address
    cycle on top, as in footnote 13).  Each latency variation sets the
    read, write-op and recovery times equal, per §5.
    """
    traces = _as_trace_list(traces)
    if not traces:
        raise AnalysisError("no traces supplied")
    block_sizes = sorted(block_sizes_words)
    configs = [
        baseline_config(
            cache_size_bytes=cache_size_each_bytes,
            block_words=block_words,
            cycle_ns=cycle_ns,
            write_buffer_depth=write_buffer_depth,
        )
        for block_words in block_sizes
    ]
    couplet_map = None
    if n_jobs <= 1:
        couplet_map = {
            id(trace): cs for trace, cs in zip(traces, _pair_all(traces))
        }
    if progress:
        progress(
            f"{len(configs)} block sizes x {len(traces)} traces, "
            f"n_jobs={n_jobs}"
        )
    all_streams = run_functional_passes(
        [
            (config, trace, seed)
            for config in configs
            for trace in traces
        ],
        n_jobs=n_jobs,
        couplets=couplet_map,
    )
    # One functional pass per (block size, trace); replays per memory.
    curves: Dict[Tuple[int, float], Dict[int, AggregateMetrics]] = {}
    for b_index, block_words in enumerate(block_sizes):
        streams = all_streams[b_index * len(traces): (b_index + 1) * len(traces)]
        for latency_ns in latencies_ns:
            for transfer_rate in transfer_rates:
                memory = MemoryTiming().with_latency_ns(
                    latency_ns
                ).with_transfer_rate(transfer_rate)
                key = (quantize_ns(latency_ns, cycle_ns), transfer_rate)
                summaries = []
                for stream in streams:
                    outcome = replay(
                        stream, memory, cycle_ns,
                        write_buffer_depth=write_buffer_depth,
                    )
                    summaries.append(
                        TraceRunSummary.from_stats(
                            assemble_stats(stream, outcome, cycle_ns)
                        )
                    )
                curves.setdefault(key, {})[block_words] = aggregate(summaries)
    result: Dict[Tuple[int, float], BlockSizeCurve] = {}
    for (latency_cycles, transfer_rate), by_block in curves.items():
        result[(latency_cycles, transfer_rate)] = BlockSizeCurve(
            latency_ns=latency_cycles * cycle_ns,
            transfer_rate=transfer_rate,
            block_sizes_words=block_sizes,
            execution_ns=np.array(
                [by_block[b].execution_time_ns for b in block_sizes]
            ),
            load_miss_ratio=np.array(
                [by_block[b].load_miss_ratio for b in block_sizes]
            ),
            ifetch_miss_ratio=np.array(
                [by_block[b].ifetch_miss_ratio for b in block_sizes]
            ),
        )
    return result


def run_point(
    config: SystemConfig,
    traces,
    seed: int = 0,
) -> AggregateMetrics:
    """Evaluate one configuration over the suite (fastpath)."""
    traces = _as_trace_list(traces)
    summaries = []
    for trace in traces:
        stream = functional_pass(config, trace, seed=seed)
        outcome = replay(
            stream, config.memory, config.cycle_ns,
            write_buffer_depth=config.l1.write_buffer_depth,
        )
        summaries.append(
            TraceRunSummary.from_stats(
                assemble_stats(stream, outcome, config.cycle_ns)
            )
        )
    return aggregate(summaries)
