"""Design-space sweep drivers.

These functions are the reproduction's equivalent of the paper's
simulation farm: they run the two-phase fastpath over cartesian grids of
organizational and temporal parameters and aggregate the results into
the containers the analysis modules consume.

The cost structure mirrors the paper's macro-expansion trick: one
functional cache pass per *organization* per trace, then cheap timing
replays for every cycle time / memory speed — see
:mod:`repro.sim.fastpath`.

Import note: this module imports the simulators, so it is exported from
the top-level :mod:`repro` package rather than :mod:`repro.core` (whose
``__init__`` must stay substrate-free).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager, nullcontext
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..cpu.processor import CoupletStream, pair_couplets
from ..errors import AnalysisError
from ..sim.config import SystemConfig, baseline_config
from ..sim.fastpath import (
    EventStream,
    ReplayOutcome,
    assemble_stats,
    functional_pass,
    replay,
)
from ..sim.replaykernel import BatchReplayKernel, KernelStats, TimingPoint
from ..sim.sampling import (
    SampledPassGroup,
    SamplingPlan,
    SamplingStats,
    estimate_cycles,
    estimate_stats,
    select_intervals,
    validate_group,
)
from ..sim.stackpass import (
    StackPassStats,
    stack_functional_passes,
    stack_supported,
)
from ..trace.record import Trace

if TYPE_CHECKING:  # pragma: no cover — import cycle guard only
    from ..sim.passcache import PassCache
    from ..sim.telemetry import MetricsRegistry
from ..units import quantize_ns
from .metrics import (
    GM_FLOOR,
    AggregateMetrics,
    BlockSizeCurve,
    SpeedSizeGrid,
    TraceRunSummary,
    aggregate,
    geometric_mean,
)
from .policy import ReplacementKind
from .timing import DEFAULT_CYCLE_NS, MemoryTiming

#: Optional progress callback: called with a human-readable step label.
ProgressFn = Callable[[str], None]


def _span(registry: Optional["MetricsRegistry"], name: str):
    """The registry's span context when metrics are on; no-op otherwise."""
    return registry.span(name) if registry is not None else nullcontext()


@contextmanager
def _cache_metrics(
    registry: Optional["MetricsRegistry"],
    pass_cache: Optional["PassCache"],
):
    """Point the pass cache at this sweep's registry, then restore.

    Scoped (rather than a permanent attach) so two sweeps sharing one
    cache each collect their own ``passcache.*`` counts, and a registry
    the cache owner wired up beforehand comes back untouched.
    """
    if registry is None or pass_cache is None:
        yield
        return
    prior = pass_cache.registry
    pass_cache.registry = registry
    try:
        yield
    finally:
        pass_cache.registry = prior


def _local_kernel_stats(
    registry: Optional["MetricsRegistry"],
) -> Optional[KernelStats]:
    """A *fresh* :class:`KernelStats` to price with when metrics are on —
    fresh so publishing it after the sweep cannot double-count work a
    caller-supplied stats object already held.  ``None`` (metrics off)
    means the caller's own ``kernel_stats`` is used directly."""
    return KernelStats() if registry is not None else None


def _publish_kernel(
    registry: Optional["MetricsRegistry"],
    local_stats: Optional[KernelStats],
    kernel_stats: Optional[KernelStats],
) -> None:
    """Fold sweep-local kernel counters into the registry and the
    caller's accumulator."""
    if registry is None or local_stats is None:
        return
    local_stats.publish(registry)
    if kernel_stats is not None:
        kernel_stats.merge(local_stats)


def _local_stack_stats(
    registry: Optional["MetricsRegistry"],
    strategy: str,
) -> Optional[StackPassStats]:
    """Fresh :class:`StackPassStats` when metrics are on and the stack
    strategy is in play — fresh for the same double-count reason as
    :func:`_local_kernel_stats`."""
    if registry is not None and strategy == "stack":
        return StackPassStats()
    return None


def _publish_stack(
    registry: Optional["MetricsRegistry"],
    local_stats: Optional[StackPassStats],
    stack_stats: Optional[StackPassStats],
) -> None:
    """Fold sweep-local stack-pass counters into the registry and the
    caller's accumulator."""
    if registry is None or local_stats is None:
        return
    local_stats.publish(registry)
    if stack_stats is not None:
        stack_stats.merge(local_stats)


def _local_sampling_stats(
    registry: Optional["MetricsRegistry"],
    sampling: Optional[SamplingPlan],
) -> Optional[SamplingStats]:
    """Fresh :class:`SamplingStats` when metrics are on and a sampling
    plan is in play — fresh for the same double-count reason as
    :func:`_local_kernel_stats`."""
    if registry is not None and sampling is not None:
        return SamplingStats()
    return None


def _publish_sampling(
    registry: Optional["MetricsRegistry"],
    local_stats: Optional[SamplingStats],
    sampling_stats: Optional[SamplingStats],
) -> None:
    """Fold sweep-local sampling counters into the registry and the
    caller's accumulator."""
    if registry is None or local_stats is None:
        return
    local_stats.publish(registry)
    if sampling_stats is not None:
        sampling_stats.merge(local_stats)


def _as_trace_list(traces) -> List[Trace]:
    if isinstance(traces, Mapping):
        return list(traces.values())
    return list(traces)


def _pair_map(traces: Sequence[Trace]) -> Dict[str, CoupletStream]:
    """Prepair couplets once per trace, keyed by content fingerprint.

    Keying by fingerprint (not ``id(trace)``) matters: CPython reuses
    object ids after garbage collection, so an id-keyed memo could
    silently pair a *different* trace's couplet stream with a config —
    a wrong-result bug, not a crash.  Fingerprints are content-derived
    and immune to object lifetime.
    """
    return {t.content_fingerprint(): pair_couplets(t) for t in traces}


#: Per-worker trace table installed by :func:`_pool_init`; indexed by
#: the ``slot`` field of a packed pass job.  Module-level because pool
#: initializers can only reach globals.
_WORKER_TRACES: List[Trace] = []


def _pool_init(traces: List[Trace]) -> None:
    """Process-pool initializer: receive each unique trace exactly once.

    Shipping traces here instead of inside every job means an
    N-config x M-trace grid pickles M traces per worker rather than
    N x M — for the paper's 16-size grids that is a 16x cut in
    serialization volume.
    """
    global _WORKER_TRACES
    _WORKER_TRACES = traces


def _pass_job(args):
    """Module-level functional-pass job (must be picklable for the
    process pool).  Returns ``(job index, stream)`` so the parent can
    verify result order against submission order."""
    index, config, slot, seed = args
    return index, functional_pass(config, _WORKER_TRACES[slot], seed=seed)


def run_functional_passes(
    jobs: Sequence[Tuple[SystemConfig, Trace, int]],
    n_jobs: int = 1,
    couplets: Optional[Mapping[str, CoupletStream]] = None,
    cache: Optional["PassCache"] = None,
    strategy: str = "scalar",
    stack_stats: Optional[StackPassStats] = None,
    sampling: Optional[SamplingPlan] = None,
    sampling_stats: Optional[SamplingStats] = None,
) -> List:
    """Run many functional passes, optionally across processes.

    This is the library's stand-in for the paper's farm of 10–20
    MicroVAX II workstations: the expensive organization passes are
    independent and distribute perfectly.  ``couplets`` maps a trace's
    :meth:`~repro.trace.record.Trace.content_fingerprint` to a
    prepaired stream, used only on the serial and stack paths (child
    processes re-pair locally — cheaper than pickling streams).

    ``cache`` is a :class:`~repro.sim.passcache.PassCache`: hits are
    loaded from disk in the parent and only the misses are simulated
    (and then persisted), so a repeated sweep over the same
    organizations performs zero functional passes.  Results always come
    back in job order.

    ``strategy="stack"`` routes the misses through
    :func:`~repro.sim.stackpass.stack_functional_passes` instead: one
    shared trace walk per distinct trace covers every stack-eligible
    organization, and ineligible ones (multi-way FIFO/RANDOM) fall back
    to per-organization scalar passes, counted in
    ``stack_stats.fallback_passes``.  The stack path is serial —
    ``n_jobs`` is ignored — because the shared walk already removes the
    N-walk cost the pool existed to spread.  Streams are bit-identical
    to the scalar path's either way, and cache entries written by one
    strategy are indistinguishable from the other's.

    ``sampling`` (a :class:`~repro.sim.sampling.SamplingPlan`) changes
    the return type: each job expands into one functional pass per
    representative interval of its trace and the result list holds
    :class:`~repro.sim.sampling.SampledPassGroup` objects instead of
    single streams.  The representative-interval jobs flow through this
    same function, so the cache, the pool and the stack strategy all
    compose — a stack walk of one interval trace covers every
    stack-eligible organization, and interval streams persist in the
    pass cache under their own content fingerprints.  With
    ``sampling.validate``, every ``validate_period``-th job also runs
    its exact pass and the true miss-ratio error lands in
    ``sampling_stats``.
    """
    if strategy not in ("scalar", "stack"):
        raise AnalysisError(
            f"unknown functional-pass strategy {strategy!r}; "
            "expected 'scalar' or 'stack'"
        )
    jobs = list(jobs)
    if sampling is not None:
        return _sampled_functional_passes(
            jobs, sampling, n_jobs=n_jobs, cache=cache, strategy=strategy,
            stack_stats=stack_stats, sampling_stats=sampling_stats,
        )
    results: List[Optional[EventStream]] = [None] * len(jobs)
    if cache is not None:
        pending = []
        for k, (config, trace, seed) in enumerate(jobs):
            stream = cache.get(config, trace, seed)
            if stream is None:
                pending.append(k)
            else:
                results[k] = stream
    else:
        pending = list(range(len(jobs)))
    if pending:
        if strategy == "stack":
            pair_memo = dict(couplets) if couplets else {}
            groups: Dict[str, List[int]] = {}
            for k in pending:
                fingerprint = jobs[k][1].content_fingerprint()
                groups.setdefault(fingerprint, []).append(k)
            for fingerprint, members in groups.items():
                stream_in = pair_memo.get(fingerprint)
                if stream_in is None:
                    stream_in = pair_couplets(jobs[members[0]][1])
                    pair_memo[fingerprint] = stream_in
                shared = [k for k in members if stack_supported(jobs[k][0])]
                if shared:
                    streams = stack_functional_passes(
                        [jobs[k] for k in shared],
                        couplets=stream_in,
                        stats=stack_stats,
                    )
                    for k, stream in zip(shared, streams):
                        results[k] = stream
                for k in members:
                    if results[k] is None:
                        config, trace, seed = jobs[k]
                        results[k] = functional_pass(
                            config, trace, couplets=stream_in, seed=seed
                        )
                        if stack_stats is not None:
                            stack_stats.fallback_passes += 1
        elif n_jobs <= 1 or len(pending) <= 1:
            pair_memo: Dict[str, CoupletStream] = (
                dict(couplets) if couplets else {}
            )
            for k in pending:
                config, trace, seed = jobs[k]
                fingerprint = trace.content_fingerprint()
                stream_in = pair_memo.get(fingerprint)
                if stream_in is None:
                    stream_in = pair_couplets(trace)
                    pair_memo[fingerprint] = stream_in
                results[k] = functional_pass(
                    config, trace, couplets=stream_in, seed=seed
                )
        else:
            packed, unique_traces = _pack_pass_jobs(jobs, pending)
            with ProcessPoolExecutor(
                max_workers=n_jobs,
                initializer=_pool_init,
                initargs=(unique_traces,),
            ) as pool:
                for job, outcome in zip(packed, pool.map(_pass_job, packed)):
                    index, stream = outcome
                    if index != job[0]:
                        raise AnalysisError(
                            f"functional-pass results out of order: "
                            f"expected job {job[0]}, got {index}"
                        )
                    results[index] = stream
        if cache is not None:
            for k in pending:
                config, trace, seed = jobs[k]
                cache.put(config, trace, seed, results[k])
    return results


def _sampled_functional_passes(
    jobs: Sequence[Tuple[SystemConfig, Trace, int]],
    plan: SamplingPlan,
    n_jobs: int,
    cache: Optional["PassCache"],
    strategy: str,
    stack_stats: Optional[StackPassStats],
    sampling_stats: Optional[SamplingStats],
) -> List[SampledPassGroup]:
    """Expand jobs into representative-interval passes and regroup.

    Selections are memoized per (trace contents, plan), so an
    N-organization grid over one trace segments and clusters it once.
    The expanded jobs recurse through :func:`run_functional_passes`
    with ``sampling=None`` — inheriting the cache, pool and strategy.
    """
    selections = [
        select_intervals(trace, plan, stats=sampling_stats)
        for _config, trace, _seed in jobs
    ]
    rep_jobs: List[Tuple[SystemConfig, Trace, int]] = []
    spans: List[Tuple[int, int]] = []
    for (config, _trace, seed), selection in zip(jobs, selections):
        lo = len(rep_jobs)
        rep_jobs.extend((config, rep, seed) for rep in selection.rep_traces)
        spans.append((lo, len(rep_jobs)))
    rep_streams = run_functional_passes(
        rep_jobs, n_jobs=n_jobs, cache=cache, strategy=strategy,
        stack_stats=stack_stats,
    )
    if sampling_stats is not None:
        sampling_stats.representatives += len(rep_jobs)
    groups = [
        SampledPassGroup(selection, rep_streams[lo:hi])
        for selection, (lo, hi) in zip(selections, spans)
    ]
    if plan.validate:
        for k in range(0, len(jobs), plan.validate_period):
            config, trace, seed = jobs[k]
            validate_group(
                config, trace, groups[k], seed=seed, cache=cache,
                stats=sampling_stats,
            )
    return groups


def _pack_pass_jobs(
    jobs: Sequence[Tuple[SystemConfig, Trace, int]],
    pending: Sequence[int],
) -> Tuple[List[Tuple[int, SystemConfig, int, int]], List[Trace]]:
    """Deduplicate traces for the pool and pack picklable job tuples.

    Returns ``(packed, unique_traces)`` where each packed job is
    ``(job index, config, trace slot, seed)`` and ``unique_traces``
    holds one trace per distinct content fingerprint, in first-seen
    order.  The slot indirection is what lets :func:`_pool_init` ship
    each trace to each worker exactly once.
    """
    slot_of: Dict[str, int] = {}
    unique_traces: List[Trace] = []
    packed: List[Tuple[int, SystemConfig, int, int]] = []
    for k in pending:
        config, trace, seed = jobs[k]
        fingerprint = trace.content_fingerprint()
        slot = slot_of.get(fingerprint)
        if slot is None:
            slot = len(unique_traces)
            slot_of[fingerprint] = slot
            unique_traces.append(trace)
        packed.append((k, config, slot, seed))
    return packed, unique_traces


#: Per-worker event-stream table installed by :func:`_replay_pool_init`;
#: indexed by the ``slot`` field of a packed replay job.  Same shipping
#: pattern as :data:`_WORKER_TRACES`: the streams cross the process
#: boundary once, in the initializer, not once per job.
_WORKER_STREAMS: List[EventStream] = []


def _replay_pool_init(streams: List[EventStream]) -> None:
    global _WORKER_STREAMS
    _WORKER_STREAMS = streams


def _replay_job(args):
    """Module-level batch-replay job (picklable for the process pool).

    Prices one stream against the whole timing grid and returns
    ``(job index, outcomes, kernel stats)`` so the parent can verify
    result order and aggregate the kernel counters.
    """
    index, slot, points = args
    kernel = BatchReplayKernel(_WORKER_STREAMS[slot])
    outcomes = kernel.replay_grid(points)
    return index, outcomes, kernel.stats


def _price_streams(
    streams: Sequence[EventStream],
    points: Sequence[TimingPoint],
    use_replay_kernel: bool,
    replay_jobs: int,
    kernel_stats: Optional[KernelStats],
) -> List[List[ReplayOutcome]]:
    """Price every stream at every timing point; one outcome row each.

    The batch kernel prices a stream's whole grid in one call;
    ``replay_jobs > 1`` shards the streams over processes (worthwhile on
    warm sweeps, where replay is essentially the entire cost).  With
    ``use_replay_kernel`` off this is the legacy one-``replay()``-per-
    point loop — cycle-for-cycle the same outcomes either way.
    """
    points = list(points)
    if not use_replay_kernel:
        if kernel_stats is not None:
            kernel_stats.scalar_replays += len(streams) * len(points)
        return [
            [
                replay(
                    stream, point.memory, point.cycle_ns,
                    write_buffer_depth=point.write_buffer_depth,
                )
                for point in points
            ]
            for stream in streams
        ]
    if replay_jobs > 1 and len(streams) > 1:
        global _WORKER_STREAMS
        packed = [(k, k, points) for k in range(len(streams))]
        rows: List[Optional[List[ReplayOutcome]]] = [None] * len(streams)
        try:
            fork_ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — fork-less platform
            fork_ctx = None
        if fork_ctx is not None:
            # Forked workers inherit the parent's stream table, so the
            # (large) event buffers never cross the process boundary;
            # only the small outcome lists come back.
            _WORKER_STREAMS = list(streams)
            pool_kwargs = dict(mp_context=fork_ctx)
        else:  # pragma: no cover — spawn platforms ship explicitly
            pool_kwargs = dict(
                initializer=_replay_pool_init,
                initargs=(list(streams),),
            )
        try:
            with ProcessPoolExecutor(
                max_workers=replay_jobs, **pool_kwargs
            ) as pool:
                for job, result in zip(
                    packed, pool.map(_replay_job, packed)
                ):
                    index, outcomes, stats = result
                    if index != job[0]:
                        raise AnalysisError(
                            f"batch-replay results out of order: expected "
                            f"job {job[0]}, got {index}"
                        )
                    rows[index] = outcomes
                    if kernel_stats is not None:
                        kernel_stats.merge(stats)
        finally:
            _WORKER_STREAMS = []
        return rows
    rows = []
    for stream in streams:
        kernel = BatchReplayKernel(stream)
        rows.append(kernel.replay_grid(points))
        if kernel_stats is not None:
            kernel_stats.merge(kernel.stats)
    return rows


def _flatten_pass_results(
    results: Sequence, sampling: Optional[SamplingPlan]
) -> Tuple[List[EventStream], Optional[List[Tuple[int, int]]]]:
    """Flatten pass results for pricing.

    Without sampling the results already are streams and pass through
    unchanged.  With sampling each result is a
    :class:`SampledPassGroup`; its representative streams are
    concatenated and ``spans[k]`` records the flat ``[lo, hi)`` window
    belonging to job ``k``.
    """
    if sampling is None:
        return list(results), None
    flat: List[EventStream] = []
    spans: List[Tuple[int, int]] = []
    for group in results:
        lo = len(flat)
        flat.extend(group.streams)
        spans.append((lo, len(flat)))
    return flat, spans


def run_speed_size_sweep(
    traces,
    sizes_each_bytes: Sequence[int],
    cycle_times_ns: Sequence[float],
    assoc: int = 1,
    block_words: int = 4,
    memory: Optional[MemoryTiming] = None,
    replacement: ReplacementKind = ReplacementKind.RANDOM,
    write_buffer_depth: int = 4,
    seed: int = 0,
    n_jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    pass_cache: Optional["PassCache"] = None,
    use_replay_kernel: bool = True,
    replay_jobs: int = 1,
    kernel_stats: Optional[KernelStats] = None,
    registry: Optional["MetricsRegistry"] = None,
    functional_strategy: str = "scalar",
    stack_stats: Optional[StackPassStats] = None,
    sampling: Optional[SamplingPlan] = None,
    sampling_stats: Optional[SamplingStats] = None,
) -> SpeedSizeGrid:
    """Sweep (cache size x cycle time); aggregate over the trace suite.

    ``sizes_each_bytes`` sizes *each* of the split caches (the paper
    varies the pair together); the returned grid is indexed by total L1
    size.  This one sweep backs Figures 3-1 through 3-4 and, repeated
    per associativity, Figures 4-1 through 4-5.  ``n_jobs`` distributes
    the functional passes over processes; ``pass_cache`` reuses
    persisted passes across invocations (see
    :mod:`repro.sim.passcache`).

    Each stream is priced across its whole cycle-time column in one
    :class:`~repro.sim.replaykernel.BatchReplayKernel` invocation;
    ``replay_jobs`` shards the streams over processes and
    ``kernel_stats`` (if given) accumulates the kernel's counters.
    ``use_replay_kernel=False`` restores the scalar ``replay()`` loop —
    outcomes are cycle-for-cycle identical either way.

    ``registry`` (a :class:`~repro.sim.telemetry.MetricsRegistry`)
    times the two phases as ``sweep.functional_passes`` /
    ``sweep.price_grid`` spans and folds the kernel and pass-cache
    counters in as ``replay.*`` / ``passcache.*`` metrics.

    ``functional_strategy="stack"`` collapses the cold passes into one
    shared stack walk per trace (see :mod:`repro.sim.stackpass`);
    ``stack_stats`` accumulates its walk/derivation/fallback counters,
    which also land in the registry as ``stackpass.*``.

    ``sampling`` (a :class:`~repro.sim.sampling.SamplingPlan`) runs the
    whole sweep on representative trace intervals: the functional
    passes cover only each trace's cluster representatives and every
    grid cell is a stratified *estimate* — refused with
    :exc:`~repro.errors.SamplingError` when its confidence interval
    exceeds the plan's bound.  ``sampling_stats`` accumulates the
    selection/estimate counters, which also land in the registry as
    ``sampling.*``.  Sampling composes with the cache, the pool and
    either functional strategy.
    """
    traces = _as_trace_list(traces)
    if not traces:
        raise AnalysisError("no traces supplied")
    sizes = sorted(sizes_each_bytes)
    cycles_ns = sorted(cycle_times_ns)
    memory = memory or MemoryTiming()
    configs = [
        baseline_config(
            cache_size_bytes=size,
            block_words=block_words,
            assoc=assoc,
            replacement=replacement,
            write_buffer_depth=write_buffer_depth,
            memory=memory,
        )
        for size in sizes
    ]
    if progress:
        progress(
            f"{len(configs)} organizations x {len(traces)} traces, "
            f"n_jobs={n_jobs}"
        )
    local_stats = _local_kernel_stats(registry)
    price_stats = local_stats if local_stats is not None else kernel_stats
    local_stack = _local_stack_stats(registry, functional_strategy)
    pass_stack = local_stack if local_stack is not None else stack_stats
    local_sampling = _local_sampling_stats(registry, sampling)
    pass_sampling = (
        local_sampling if local_sampling is not None else sampling_stats
    )
    with _cache_metrics(registry, pass_cache), \
            _span(registry, "sweep.functional_passes"):
        all_streams = run_functional_passes(
            [
                (config, trace, seed)
                for config in configs
                for trace in traces
            ],
            n_jobs=n_jobs,
            cache=pass_cache,
            strategy=functional_strategy,
            stack_stats=pass_stack,
            sampling=sampling,
            sampling_stats=pass_sampling,
        )
    _publish_stack(registry, local_stack, stack_stats)
    flat_streams, group_spans = _flatten_pass_results(all_streams, sampling)
    n_i, n_j = len(sizes), len(cycles_ns)
    exec_gm = np.empty((n_i, n_j))
    cpr_gm = np.empty((n_i, n_j))
    points = [
        TimingPoint(
            memory=memory, cycle_ns=cycle_ns,
            write_buffer_depth=write_buffer_depth,
        )
        for cycle_ns in cycles_ns
    ]
    with _span(registry, "sweep.price_grid"):
        outcome_rows = _price_streams(
            flat_streams, points, use_replay_kernel, replay_jobs,
            price_stats,
        )
    _publish_kernel(registry, local_stats, kernel_stats)
    per_size_metrics: List[AggregateMetrics] = []
    for i, size in enumerate(sizes):
        lo = i * len(traces)
        if sampling is None:
            streams = all_streams[lo: lo + len(traces)]
            rows = outcome_rows[lo: lo + len(traces)]
            # The miss and traffic ratios depend on the organization
            # only, so one summary per (size, trace) — built from the
            # first cycle-time column — covers them; the per-column
            # reduction needs nothing beyond each outcome's cycle count.
            size_summaries = [
                TraceRunSummary.from_stats(
                    assemble_stats(stream, row[0], cycles_ns[0])
                )
                for stream, row in zip(streams, rows)
            ]
            per_size_metrics.append(aggregate(size_summaries))
            n_refs = [stream.n_refs_measured for stream in streams]
            for j, cycle_ns in enumerate(cycles_ns):
                exec_gm[i, j] = geometric_mean(
                    max(row[j].cycles * cycle_ns, GM_FLOOR) for row in rows
                )
                cpr_gm[i, j] = geometric_mean(
                    max(row[j].cycles / refs if refs else 0.0, GM_FLOOR)
                    for row, refs in zip(rows, n_refs)
                )
            continue
        # Sampled path: each (size, trace) cell is a stratified estimate
        # recombining one outcome row per cluster representative.
        size_summaries = []
        cycle_rows: List[List[float]] = []
        n_refs = []
        for t in range(len(traces)):
            group = all_streams[lo + t]
            a, b = group_spans[lo + t]
            rows = outcome_rows[a:b]
            est = estimate_stats(
                group.selection, group.streams,
                [row[0] for row in rows], cycles_ns[0],
                stats=pass_sampling,
            )
            size_summaries.append(TraceRunSummary.from_stats(est.stats))
            cycle_rows.append([
                estimate_cycles(group.selection, [row[j] for row in rows])
                for j in range(n_j)
            ])
            n_refs.append(group.selection.measured_refs)
        per_size_metrics.append(aggregate(size_summaries))
        for j, cycle_ns in enumerate(cycles_ns):
            exec_gm[i, j] = geometric_mean(
                max(cycles[j] * cycle_ns, GM_FLOOR) for cycles in cycle_rows
            )
            cpr_gm[i, j] = geometric_mean(
                max(cycles[j] / refs if refs else 0.0, GM_FLOOR)
                for cycles, refs in zip(cycle_rows, n_refs)
            )
    _publish_sampling(registry, local_sampling, sampling_stats)
    return SpeedSizeGrid(
        total_sizes=[2 * s for s in sizes],
        cycle_times_ns=list(cycles_ns),
        execution_ns=exec_gm,
        cycles_per_reference=cpr_gm,
        read_miss_ratio=np.array(
            [m.read_miss_ratio for m in per_size_metrics]
        ),
        load_miss_ratio=np.array(
            [m.load_miss_ratio for m in per_size_metrics]
        ),
        ifetch_miss_ratio=np.array(
            [m.ifetch_miss_ratio for m in per_size_metrics]
        ),
        read_traffic_ratio=np.array(
            [m.read_traffic_ratio for m in per_size_metrics]
        ),
        write_traffic_ratio_full=np.array(
            [m.write_traffic_ratio_full for m in per_size_metrics]
        ),
        write_traffic_ratio_dirty=np.array(
            [m.write_traffic_ratio_dirty for m in per_size_metrics]
        ),
    )


def run_associativity_sweeps(
    traces,
    sizes_each_bytes: Sequence[int],
    cycle_times_ns: Sequence[float],
    assocs: Sequence[int] = (1, 2, 4, 8),
    **kwargs,
) -> Dict[int, SpeedSizeGrid]:
    """One speed–size grid per set size (§4's experiment).

    Total size is held constant as associativity changes — the sweep
    sizes each cache identically and halves the number of sets as the
    ways double, exactly as Figure 4-1 specifies.  Random replacement is
    the paper's choice and the default.
    """
    return {
        assoc: run_speed_size_sweep(
            traces, sizes_each_bytes, cycle_times_ns, assoc=assoc, **kwargs
        )
        for assoc in assocs
    }


def run_blocksize_sweep(
    traces,
    block_sizes_words: Sequence[int],
    latencies_ns: Sequence[float],
    transfer_rates: Sequence[float],
    cache_size_each_bytes: int = 64 * 1024,
    cycle_ns: float = DEFAULT_CYCLE_NS,
    write_buffer_depth: int = 4,
    seed: int = 0,
    n_jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    pass_cache: Optional["PassCache"] = None,
    use_replay_kernel: bool = True,
    replay_jobs: int = 1,
    kernel_stats: Optional[KernelStats] = None,
    registry: Optional["MetricsRegistry"] = None,
    functional_strategy: str = "scalar",
    stack_stats: Optional[StackPassStats] = None,
    sampling: Optional[SamplingPlan] = None,
    sampling_stats: Optional[SamplingStats] = None,
) -> Dict[Tuple[int, float], BlockSizeCurve]:
    """Sweep block size against memory latency and transfer rate (§5).

    Returns curves keyed by ``(latency_cycles, transfer_rate)`` where
    the latency label is the paper's quantized count (e.g. 100 ns at a
    40 ns clock is "3 cycles"; the simulated read adds one address
    cycle on top, as in footnote 13).  Each latency variation sets the
    read, write-op and recovery times equal, per §5.

    Latencies that quantize to the same cycle count describe the same
    simulated memory, so colliding keys are priced once (first
    occurrence wins; the outcomes are identical by construction).  The
    memory grid is priced per stream in one batch-kernel call; see
    :func:`run_speed_size_sweep` for ``use_replay_kernel``,
    ``replay_jobs``, ``kernel_stats``, ``registry``,
    ``functional_strategy``, ``stack_stats``, ``sampling`` and
    ``sampling_stats``.
    """
    traces = _as_trace_list(traces)
    if not traces:
        raise AnalysisError("no traces supplied")
    block_sizes = sorted(block_sizes_words)
    configs = [
        baseline_config(
            cache_size_bytes=cache_size_each_bytes,
            block_words=block_words,
            cycle_ns=cycle_ns,
            write_buffer_depth=write_buffer_depth,
        )
        for block_words in block_sizes
    ]
    if progress:
        progress(
            f"{len(configs)} block sizes x {len(traces)} traces, "
            f"n_jobs={n_jobs}"
        )
    local_stats = _local_kernel_stats(registry)
    price_stats = local_stats if local_stats is not None else kernel_stats
    local_stack = _local_stack_stats(registry, functional_strategy)
    pass_stack = local_stack if local_stack is not None else stack_stats
    local_sampling = _local_sampling_stats(registry, sampling)
    pass_sampling = (
        local_sampling if local_sampling is not None else sampling_stats
    )
    with _cache_metrics(registry, pass_cache), \
            _span(registry, "sweep.functional_passes"):
        all_streams = run_functional_passes(
            [
                (config, trace, seed)
                for config in configs
                for trace in traces
            ],
            n_jobs=n_jobs,
            cache=pass_cache,
            strategy=functional_strategy,
            stack_stats=pass_stack,
            sampling=sampling,
            sampling_stats=pass_sampling,
        )
    _publish_stack(registry, local_stack, stack_stats)
    flat_streams, group_spans = _flatten_pass_results(all_streams, sampling)
    # One functional pass per (block size, trace); the memory grid is
    # built once — not per block size — and deduplicated by quantized
    # key before any replay runs.
    base_memory = MemoryTiming()
    unique_memories: List[Tuple[Tuple[int, float], MemoryTiming]] = []
    seen_keys = set()
    for latency_ns in latencies_ns:
        for transfer_rate in transfer_rates:
            key = (quantize_ns(latency_ns, cycle_ns), transfer_rate)
            if key in seen_keys:
                continue
            seen_keys.add(key)
            unique_memories.append((
                key,
                base_memory.with_latency_ns(latency_ns)
                .with_transfer_rate(transfer_rate),
            ))
    points = [
        TimingPoint(
            memory=mem, cycle_ns=cycle_ns,
            write_buffer_depth=write_buffer_depth,
        )
        for _key, mem in unique_memories
    ]
    with _span(registry, "sweep.price_grid"):
        outcome_rows = _price_streams(
            flat_streams, points, use_replay_kernel, replay_jobs,
            price_stats,
        )
    _publish_kernel(registry, local_stats, kernel_stats)
    curves: Dict[Tuple[int, float], Dict[int, AggregateMetrics]] = {}
    for b_index, block_words in enumerate(block_sizes):
        lo = b_index * len(traces)
        for p_index, (key, _mem) in enumerate(unique_memories):
            if sampling is None:
                summaries = [
                    TraceRunSummary.from_stats(
                        assemble_stats(stream, row[p_index], cycle_ns)
                    )
                    for stream, row in zip(
                        all_streams[lo: lo + len(traces)],
                        outcome_rows[lo: lo + len(traces)],
                    )
                ]
            else:
                summaries = []
                for t in range(len(traces)):
                    group = all_streams[lo + t]
                    a, b = group_spans[lo + t]
                    rows = outcome_rows[a:b]
                    est = estimate_stats(
                        group.selection, group.streams,
                        [row[p_index] for row in rows], cycle_ns,
                        stats=pass_sampling,
                    )
                    summaries.append(TraceRunSummary.from_stats(est.stats))
            curves.setdefault(key, {})[block_words] = aggregate(summaries)
    _publish_sampling(registry, local_sampling, sampling_stats)
    result: Dict[Tuple[int, float], BlockSizeCurve] = {}
    for (latency_cycles, transfer_rate), by_block in curves.items():
        result[(latency_cycles, transfer_rate)] = BlockSizeCurve(
            latency_ns=latency_cycles * cycle_ns,
            transfer_rate=transfer_rate,
            block_sizes_words=block_sizes,
            execution_ns=np.array(
                [by_block[b].execution_time_ns for b in block_sizes]
            ),
            load_miss_ratio=np.array(
                [by_block[b].load_miss_ratio for b in block_sizes]
            ),
            ifetch_miss_ratio=np.array(
                [by_block[b].ifetch_miss_ratio for b in block_sizes]
            ),
        )
    return result


def run_point(
    config: SystemConfig,
    traces,
    seed: int = 0,
) -> AggregateMetrics:
    """Evaluate one configuration over the suite (fastpath)."""
    traces = _as_trace_list(traces)
    summaries = []
    for trace in traces:
        stream = functional_pass(config, trace, seed=seed)
        outcome = replay(
            stream, config.memory, config.cycle_ns,
            write_buffer_depth=config.l1.write_buffer_depth,
        )
        summaries.append(
            TraceRunSummary.from_stats(
                assemble_stats(stream, outcome, config.cycle_ns)
            )
        )
    return aggregate(summaries)
