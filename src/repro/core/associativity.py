"""Set-associativity break-even analysis (the paper's §4).

"Rather than try to quantify these various temporal and physical costs,
we have translated the benefits associated with the improved miss ratio
into equivalent cycle time changes.  If the implementation of set
associativity impacts the cache/CPU cycle time by an amount greater than
this break-even value, then adding set associativity is detrimental to
overall performance."

Given speed–size grids simulated at several set sizes, the break-even
degradation at a design point (size, cycle time, associativity A) is the
cycle time at which the *direct-mapped* cache of the same size would
match the A-way machine's execution time, minus the A-way machine's
cycle time (Figures 4-3 through 4-5).

Footnote 9's smoothing is reproduced by :func:`smooth_column`: the 56 ns
column sits right at a quantization boundary and "severely distorted the
analysis of set associativity", so the paper replaced it with more
representative values; we interpolate it from its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import AnalysisError
from .metrics import SpeedSizeGrid
from .equal_performance import cycle_time_for_level

#: Texas Instruments ALS/AS data-book numbers the paper quotes for an
#: Advanced-Schottky multiplexor: worst-case data-in to data-out, and
#: select to data-out, in nanoseconds.
AS_MUX_DATA_NS = 6.0
AS_MUX_SELECT_NS = 11.0


def smooth_column(grid: SpeedSizeGrid, cycle_ns: float = 56.0) -> SpeedSizeGrid:
    """Replace one anomalous cycle-time column by neighbour interpolation.

    Reproduces the paper's footnote 9: the data for the 56 ns case "has
    been smoothed to be more representative" because the quantization
    anomaly (the read penalty changes from 8 to 9 cycles between 60 and
    56 ns) distorts the associativity analysis.  Returns a new grid; the
    input is untouched.  If the column is absent the grid is returned
    unchanged.
    """
    try:
        j = grid.cycle_index(cycle_ns)
    except AnalysisError:
        return grid
    if j == 0 or j == grid.n_cycles - 1:
        return grid
    execution = grid.execution_ns.copy()
    t_lo = grid.cycle_times_ns[j - 1]
    t_hi = grid.cycle_times_ns[j + 1]
    w = (cycle_ns - t_lo) / (t_hi - t_lo)
    execution[:, j] = (1 - w) * execution[:, j - 1] + w * execution[:, j + 1]
    return SpeedSizeGrid(
        total_sizes=list(grid.total_sizes),
        cycle_times_ns=list(grid.cycle_times_ns),
        execution_ns=execution,
        cycles_per_reference=grid.cycles_per_reference,
        read_miss_ratio=grid.read_miss_ratio,
        load_miss_ratio=grid.load_miss_ratio,
        ifetch_miss_ratio=grid.ifetch_miss_ratio,
        read_traffic_ratio=grid.read_traffic_ratio,
        write_traffic_ratio_full=grid.write_traffic_ratio_full,
        write_traffic_ratio_dirty=grid.write_traffic_ratio_dirty,
    )


def breakeven_ns(
    direct_mapped: SpeedSizeGrid,
    associative: SpeedSizeGrid,
    size_index: int,
    cycle_index: int,
) -> Optional[float]:
    """Break-even cycle-time degradation at one design point.

    The paper's construction: find the cycle time ``t_dm`` a
    direct-mapped machine needs to match the set-associative design's
    performance at ``cycle_times[cycle_index]``; the difference between
    the two machines' cycle times is "the amount of time available for
    the implementation of set associativity".  Positive when the
    associative design is better at equal clock (it may spend that many
    nanoseconds on selection hardware and still break even); negative
    when associativity already loses.  ``None`` when the interpolation
    leaves the simulated clock range.
    """
    if direct_mapped.total_sizes != associative.total_sizes or \
            direct_mapped.cycle_times_ns != associative.cycle_times_ns:
        raise AnalysisError("grids must share their axes")
    level = float(associative.execution_ns[size_index, cycle_index])
    t_dm = cycle_time_for_level(direct_mapped, size_index, level)
    if t_dm is None:
        return None
    return float(associative.cycle_times_ns[cycle_index] - t_dm)


def breakeven_map(
    direct_mapped: SpeedSizeGrid, associative: SpeedSizeGrid
) -> np.ndarray:
    """Break-even degradations over the whole grid (Figures 4-3..4-5).

    NaN marks points where the interpolation leaves the simulated range.
    """
    result = np.full(
        (direct_mapped.n_sizes, direct_mapped.n_cycles), np.nan
    )
    for i in range(direct_mapped.n_sizes):
        for j in range(direct_mapped.n_cycles):
            value = breakeven_ns(direct_mapped, associative, i, j)
            if value is not None:
                result[i, j] = value
    return result


@dataclass(frozen=True)
class BreakevenSummary:
    """Headline numbers the paper reads off Figures 4-3..4-5."""

    assoc: int
    max_breakeven_ns: float
    max_at_total_size: int
    worthwhile_vs_as_mux: bool
    small_cache_breakeven_ns: float
    large_cache_breakeven_ns: float


def summarize_breakeven(
    direct_mapped: SpeedSizeGrid,
    associative: SpeedSizeGrid,
    assoc: int,
    mux_ns: float = AS_MUX_DATA_NS,
) -> BreakevenSummary:
    """Summarize a break-even map the way §4 does.

    The paper: "Only for a total cache size of less than 16KB is the
    break-even point more than 6ns ... The conclusion is clear: it is
    unlikely that set associativity ever makes sense from a performance
    perspective for caches made of discrete TTL parts."
    """
    bmap = breakeven_map(direct_mapped, associative)
    if np.isnan(bmap).all():
        raise AnalysisError("break-even map is empty")
    flat = np.nanmax(bmap, axis=1)
    best_i = int(np.nanargmax(flat))
    per_size = np.array([
        np.nanmean(bmap[i, :]) if not np.isnan(bmap[i, :]).all() else np.nan
        for i in range(direct_mapped.n_sizes)
    ])
    valid = ~np.isnan(per_size)
    small = float(per_size[valid][0]) if valid.any() else float("nan")
    large = float(per_size[valid][-1]) if valid.any() else float("nan")
    return BreakevenSummary(
        assoc=assoc,
        max_breakeven_ns=float(flat[best_i]),
        max_at_total_size=direct_mapped.total_sizes[best_i],
        worthwhile_vs_as_mux=bool(flat[best_i] > mux_ns),
        small_cache_breakeven_ns=small,
        large_cache_breakeven_ns=large,
    )
