"""Core methodology: parameter types, metrics and the paper's analyses.

Import note: this package must stay import-light — the cache/memory/sim
substrates import parameter types from here, so nothing in this
``__init__`` may import :mod:`repro.sim` (the sweep driver, which does,
is exported from the top-level :mod:`repro` package instead).
"""

from .geometry import CacheGeometry
from .policy import (
    CachePolicy,
    MissHandling,
    ReplacementKind,
    WriteMissPolicy,
    WritePolicy,
)
from .timing import DEFAULT_CYCLE_NS, DEFAULT_MEMORY, CacheTiming, MemoryTiming

__all__ = [
    "CacheGeometry",
    "CachePolicy",
    "MissHandling",
    "ReplacementKind",
    "WriteMissPolicy",
    "WritePolicy",
    "DEFAULT_CYCLE_NS",
    "DEFAULT_MEMORY",
    "CacheTiming",
    "MemoryTiming",
]
