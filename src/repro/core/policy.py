"""Cache policy enumerations.

These are the paper's remaining organizational parameters: write
strategy, write-miss allocation, replacement discipline, and the §5
miss-penalty-reduction techniques (early continuation, load forwarding)
listed as ways to raise the performance-optimal block size.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigurationError


class WritePolicy(Enum):
    """What happens to the next level on a write hit."""

    WRITE_BACK = "write_back"
    WRITE_THROUGH = "write_through"


class WriteMissPolicy(Enum):
    """What happens on a write miss.

    The paper's base data cache is write back with *no* fetch on a write
    miss: the written word bypasses the cache into the write buffer
    (``NO_ALLOCATE``).  ``FETCH_ON_WRITE`` (write-allocate) is provided
    for ablations.
    """

    NO_ALLOCATE = "no_allocate"
    FETCH_ON_WRITE = "fetch_on_write"


class ReplacementKind(Enum):
    """Victim selection within a set.

    The paper's associativity study (§4) uses random replacement
    "regardless of the set size"; LRU and FIFO are provided for ablation
    benches and property tests (LRU's stack property).
    """

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


class MissHandling(Enum):
    """When the CPU may resume after a read miss (§5 techniques).

    * ``BLOCKING`` — wait for the whole block (the paper's base system);
    * ``EARLY_CONTINUATION`` — resume once the requested word arrives,
      with the block streaming in from word zero;
    * ``LOAD_FORWARD`` — the fetch starts at the requested word, so the
      CPU resumes after one word's transfer time (wrap-around fill).

    In every mode the cache and memory stay busy until the full block has
    transferred; only the CPU's resume time differs.
    """

    BLOCKING = "blocking"
    EARLY_CONTINUATION = "early_continuation"
    LOAD_FORWARD = "load_forward"


@dataclass(frozen=True)
class CachePolicy:
    """Bundle of a cache's behavioural policies."""

    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    write_miss: WriteMissPolicy = WriteMissPolicy.NO_ALLOCATE
    replacement: ReplacementKind = ReplacementKind.RANDOM
    miss_handling: MissHandling = MissHandling.BLOCKING

    def __post_init__(self) -> None:
        if (
            self.write_policy is WritePolicy.WRITE_THROUGH
            and self.write_miss is WriteMissPolicy.FETCH_ON_WRITE
        ):
            # Legal in principle, but the combination is never used by the
            # paper and the engine does not model it; fail loudly.
            raise ConfigurationError(
                "write-through with fetch-on-write is not supported"
            )
