"""repro: reproduction of "Performance Tradeoffs in Cache Design".

Przybylski, Horowitz & Hennessy, ISCA 1988.  A time-aware, trace-driven
memory-hierarchy simulator plus the paper's design-space analyses:
speed–size equal-performance lines, set-associativity break-even cycle
times, performance-optimal block size, and the multilevel-hierarchy
argument.  See README.md for a tour and DESIGN.md for the system map.
"""

from .core import (
    DEFAULT_CYCLE_NS,
    DEFAULT_MEMORY,
    CacheGeometry,
    CachePolicy,
    CacheTiming,
    MemoryTiming,
    MissHandling,
    ReplacementKind,
    WriteMissPolicy,
    WritePolicy,
)
from .errors import (
    AnalysisError,
    CampaignError,
    ConfigurationError,
    CorruptResultError,
    ReproError,
    RunTimeoutError,
    SimulationError,
    TraceError,
)
from .sim import (
    Campaign,
    CampaignExecutor,
    Engine,
    L1Spec,
    LowerLevelSpec,
    RetryPolicy,
    RunJob,
    SimStats,
    SystemConfig,
    baseline_config,
    fast_simulate,
    functional_pass,
    replay,
    simulate,
    sweep_jobs,
)
from .analysis import (
    ThreeCBreakdown,
    classify_read_misses,
    conflict_removed_by_assoc,
)
from .core.analytic import (
    MissPowerLaw,
    analytic_optimal_block_words,
    fit_miss_power_law,
    mean_read_time_cycles,
)
from .core.charts import ascii_chart, sparkline
from .core.metrics import (
    AggregateMetrics,
    BlockSizeCurve,
    SpeedSizeGrid,
    TraceRunSummary,
    aggregate,
    geometric_mean,
)
from .core.sweep import (
    run_associativity_sweeps,
    run_blocksize_sweep,
    run_point,
    run_speed_size_sweep,
)
from .trace import (
    ALL_TRACES,
    Reference,
    RefKind,
    Trace,
    build_suite,
    build_trace,
)

__version__ = "1.0.0"

__all__ = [
    "ThreeCBreakdown",
    "classify_read_misses",
    "conflict_removed_by_assoc",
    "MissPowerLaw",
    "analytic_optimal_block_words",
    "fit_miss_power_law",
    "mean_read_time_cycles",
    "ascii_chart",
    "sparkline",
    "DEFAULT_CYCLE_NS",
    "DEFAULT_MEMORY",
    "CacheGeometry",
    "CachePolicy",
    "CacheTiming",
    "MemoryTiming",
    "MissHandling",
    "ReplacementKind",
    "WriteMissPolicy",
    "WritePolicy",
    "AnalysisError",
    "CampaignError",
    "ConfigurationError",
    "CorruptResultError",
    "ReproError",
    "RunTimeoutError",
    "SimulationError",
    "TraceError",
    "Campaign",
    "CampaignExecutor",
    "RetryPolicy",
    "RunJob",
    "sweep_jobs",
    "Engine",
    "L1Spec",
    "LowerLevelSpec",
    "SimStats",
    "SystemConfig",
    "baseline_config",
    "fast_simulate",
    "functional_pass",
    "replay",
    "simulate",
    "ALL_TRACES",
    "Reference",
    "RefKind",
    "Trace",
    "build_suite",
    "build_trace",
    "__version__",
]
