"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An organizational or temporal parameter is invalid or inconsistent.

    Raised, for example, when a cache size is not a multiple of the block
    size times the associativity, or when a timing parameter is negative.
    """


class TraceError(ReproError):
    """A trace file or trace container is malformed."""


class SimulationError(ReproError):
    """The simulator reached an internally inconsistent state.

    This should never happen in normal operation; it indicates a bug in
    the engine rather than bad user input.
    """


class AnalysisError(ReproError):
    """An analysis step cannot be performed on the supplied data.

    Raised, for example, when interpolating an equal-performance line
    outside of the simulated cycle-time range, or when a parabola fit is
    requested on fewer than three block-size points.
    """


class SamplingError(AnalysisError):
    """A sampled estimate cannot be produced or cannot be trusted.

    Raised when a trace has no measured region to sample, or when a
    stratified estimate's confidence interval exceeds the plan's
    ``ci_bound`` — sampling refuses rather than silently returning a
    number whose error bar is wider than the caller tolerates.
    """


class CampaignError(ReproError):
    """A campaign-level failure: a sweep aborted, a manifest could not be
    journaled, or a run exhausted its retry budget with ``keep_going``
    disabled."""


class CorruptResultError(CampaignError):
    """A persisted campaign artifact is unreadable or fails validation.

    Raised when a stored result file contains malformed JSON, is missing
    required keys, or its content checksum does not match the payload.
    The offending path (when known) is carried on :attr:`path` so callers
    can quarantine it.
    """

    def __init__(self, message: str, path=None) -> None:
        super().__init__(message)
        self.path = path


class LeaseLostError(CampaignError):
    """A worker's lease on a spooled job is no longer its own.

    Raised by the work-queue fabric when a heartbeat renewal finds the
    lease file gone, rewritten by another owner, or advanced to a newer
    epoch — the observer-side expiry machinery decided this worker was
    dead and reclaimed the job.  The worker must stop treating the job
    as exclusively its own; any result it still produces is published
    through the exclusive done-record link, which arbitrates duplicates.
    """


class RunTimeoutError(CampaignError):
    """A single simulation run exceeded its wall-clock budget.

    Raised cooperatively by the engine's cancellation hook, or recorded
    by the campaign executor after terminating a hung worker process.
    """
