"""Replacement policies: victim selection within a set.

Each policy manipulates a per-set *order list* of way indices maintained
by the cache.  The conventions are:

* ``order`` contains the ways currently holding valid blocks;
* for LRU the list is ordered least- to most-recently used;
* for FIFO the list is ordered oldest- to newest-filled;
* RANDOM keeps the list only to know which ways are valid.

The paper's associativity experiments (§4) use random replacement
"regardless of the set size".  LRU exists mainly for property tests (its
inclusion/stack property) and ablations; FIFO is included for
completeness and as the classic Belady-anomaly counterexample exercised
in the test suite.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.policy import ReplacementKind
from ..errors import ConfigurationError


class ReplacementPolicy:
    """Interface; see module docstring for the order-list conventions."""

    def on_hit(self, order: List[int], way: int) -> None:
        """Update recency state after a hit on ``way``."""
        raise NotImplementedError

    def on_fill(self, order: List[int], way: int) -> None:
        """Record that ``way`` has just been filled."""
        raise NotImplementedError

    def victim(self, order: List[int], assoc: int) -> int:
        """Choose a way to evict from a full set and remove it from
        ``order`` (the caller will re-fill it via :meth:`on_fill`)."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least recently used; order list is LRU-first."""

    def on_hit(self, order: List[int], way: int) -> None:
        order.remove(way)
        order.append(way)

    def on_fill(self, order: List[int], way: int) -> None:
        order.append(way)

    def victim(self, order: List[int], assoc: int) -> int:
        return order.pop(0)


class FIFOPolicy(ReplacementPolicy):
    """First in, first out; hits do not touch the order."""

    def on_hit(self, order: List[int], way: int) -> None:
        pass

    def on_fill(self, order: List[int], way: int) -> None:
        order.append(way)

    def victim(self, order: List[int], assoc: int) -> int:
        return order.pop(0)


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim among valid ways (seeded, reproducible).

    The seed is mandatory and must be an integer: ``random.Random(None)``
    silently seeds from OS entropy, which would make eviction order —
    and therefore every statistic downstream of it — differ between two
    runs of the same (config, trace, seed), breaking the byte-identical
    re-simulation the campaign quarantine/retry machinery relies on.
    """

    def __init__(self, seed: int = 0) -> None:
        if seed is None or not isinstance(seed, int) or \
                isinstance(seed, bool):
            raise ConfigurationError(
                f"RANDOM replacement needs an explicit integer seed for "
                f"reproducible eviction, got {seed!r}"
            )
        self._rng = random.Random(seed)

    def on_hit(self, order: List[int], way: int) -> None:
        pass

    def on_fill(self, order: List[int], way: int) -> None:
        order.append(way)

    def victim(self, order: List[int], assoc: int) -> int:
        return order.pop(self._rng.randrange(len(order)))


def make_policy(
    kind: ReplacementKind, seed: Optional[int] = None
) -> ReplacementPolicy:
    """Instantiate a replacement policy by kind.

    ``seed=None`` deliberately maps to the fixed default seed 0 rather
    than reaching :class:`RandomPolicy` (which rejects ``None``): every
    construction path stays deterministic by default.
    """
    if kind is ReplacementKind.LRU:
        return LRUPolicy()
    if kind is ReplacementKind.FIFO:
        return FIFOPolicy()
    if kind is ReplacementKind.RANDOM:
        return RandomPolicy(seed=0 if seed is None else seed)
    raise ConfigurationError(f"unknown replacement kind {kind!r}")
