"""Cache substrate: functional set-associative caches, replacement
policies, and the timed write buffer."""

from .cache import AccessResult, Cache, block_key, key_block_addr, key_pid
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from .writebuffer import TimedWriteBuffer

__all__ = [
    "AccessResult",
    "Cache",
    "block_key",
    "key_block_addr",
    "key_pid",
    "FIFOPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
    "TimedWriteBuffer",
]
