"""Functional set-associative cache model.

This is the organizational half of the simulator: tags, sets, valid and
dirty state, replacement and write policies.  It knows nothing about
time — the timed engine (:mod:`repro.sim.engine`) and the fastpath
(:mod:`repro.sim.fastpath`) wrap it with cycle accounting.

Design notes mapping to the paper (§2):

* **Virtual caches with PIDs.**  "All the simulations presented here are
  with virtual caches, which include the process identifier with the high
  order address bits in the tag field."  We fold the PID into the block
  key: two processes touching the same virtual address occupy distinct
  blocks and conflict in the same set.
* **Per-word dirty masks.**  Figure 3-1 plots *two* write traffic
  ratios: all words of dirty victim blocks versus only the words actually
  dirty.  The cache therefore tracks which words of each block were
  written.
* **Sub-block (fetch size < block size) placement.**  Per-word valid
  masks support the paper's fetch-size parameter (footnote 2); the base
  experiments always fetch whole blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.geometry import CacheGeometry
from ..core.policy import (
    CachePolicy,
    ReplacementKind,
    WriteMissPolicy,
    WritePolicy,
)
from ..errors import SimulationError
from .replacement import make_policy

#: Shift applied to the PID when forming a block key.  Word addresses are
#: below 2**40; PIDs above.  A block key uniquely names (pid, block).
_PID_SHIFT = 44


def block_key(pid: int, block_addr: int) -> int:
    """Combine a process id and block address into one integer key."""
    return (pid << _PID_SHIFT) | block_addr


def key_block_addr(key: int) -> int:
    """Extract the block address from a block key."""
    return key & ((1 << _PID_SHIFT) - 1)


def key_pid(key: int) -> int:
    """Extract the process id from a block key."""
    return key >> _PID_SHIFT


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one functional cache access.

    Attributes
    ----------
    hit:
        Tag match *and* the referenced word valid.
    fetched_words:
        Words fetched from the next level (0 on a hit or bypass).
    victim_key:
        Block key of an evicted dirty block that must be written back,
        or ``None``.  Clean victims are dropped silently.
    victim_dirty_words:
        Number of dirty words in the victim (for the paper's two write
        traffic ratios).
    bypass_write:
        True when a write miss is passed around the cache to the next
        level (no-allocate policy).
    """

    hit: bool
    fetched_words: int = 0
    victim_key: Optional[int] = None
    victim_dirty_words: int = 0
    bypass_write: bool = False


class Cache:
    """A functional set-associative cache.

    Parameters
    ----------
    geometry:
        Sizes and shapes; see :class:`~repro.core.geometry.CacheGeometry`.
    policy:
        Write/replacement behaviour; see
        :class:`~repro.core.policy.CachePolicy`.
    seed:
        Seed for the random replacement policy, so simulations are
        reproducible.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: Optional[CachePolicy] = None,
        seed: int = 0,
    ) -> None:
        self.geometry = geometry
        self.policy = policy or CachePolicy()
        n_sets = geometry.n_sets
        assoc = geometry.assoc
        # Parallel per-set structures.  A way's tag slot holds the block
        # key, or -1 when invalid.
        self._tags: List[List[int]] = [[-1] * assoc for _ in range(n_sets)]
        self._valid: List[List[int]] = [[0] * assoc for _ in range(n_sets)]
        self._dirty: List[List[int]] = [[0] * assoc for _ in range(n_sets)]
        self._order: List[List[int]] = [[] for _ in range(n_sets)]
        self._repl = make_policy(self.policy.replacement, seed=seed)
        self._offset_bits = geometry.offset_bits
        self._index_mask = n_sets - 1
        self._word_mask = geometry.block_words - 1
        self._full_mask = (1 << geometry.block_words) - 1
        self._fetch_words = geometry.fetch_words
        self._fetch_mask_unit = (1 << self._fetch_words) - 1

    # ------------------------------------------------------------------
    # Address plumbing
    # ------------------------------------------------------------------
    def _locate(self, pid: int, word_addr: int) -> Tuple[int, int, int]:
        """Return ``(key, set index, word offset)`` for an access."""
        block = word_addr >> self._offset_bits
        index = block & self._index_mask
        return block_key(pid, block), index, word_addr & self._word_mask

    def _fetch_mask_for(self, offset: int) -> int:
        """Valid-mask bits covered by one fetch containing ``offset``."""
        start = (offset // self._fetch_words) * self._fetch_words
        return self._fetch_mask_unit << start

    # ------------------------------------------------------------------
    # Lookup without side effects (tests, assertions)
    # ------------------------------------------------------------------
    def probe(self, pid: int, word_addr: int) -> bool:
        """True if the access would hit; does not disturb any state."""
        key, index, offset = self._locate(pid, word_addr)
        tags = self._tags[index]
        valid = self._valid[index]
        for way in range(len(tags)):
            if tags[way] == key and (valid[way] >> offset) & 1:
                return True
        return False

    def resident_keys(self) -> List[int]:
        """All block keys currently held (any valid word); for tests."""
        keys = []
        for index in range(len(self._tags)):
            for way in range(self.geometry.assoc):
                if self._valid[index][way]:
                    keys.append(self._tags[index][way])
        return keys

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def access_read(self, pid: int, word_addr: int) -> AccessResult:
        """Service a load or instruction fetch."""
        key, index, offset = self._locate(pid, word_addr)
        tags = self._tags[index]
        valid = self._valid[index]
        for way in range(len(tags)):
            if tags[way] == key:
                if (valid[way] >> offset) & 1:
                    self._repl.on_hit(self._order[index], way)
                    return AccessResult(hit=True)
                # Tag hit, word invalid: sub-block miss — fetch the
                # missing sub-block into the existing frame.
                valid[way] |= self._fetch_mask_for(offset)
                self._repl.on_hit(self._order[index], way)
                return AccessResult(hit=False, fetched_words=self._fetch_words)
        return self._fill(key, index, offset, dirty_word=None)

    def access_write(self, pid: int, word_addr: int) -> AccessResult:
        """Service a store."""
        key, index, offset = self._locate(pid, word_addr)
        tags = self._tags[index]
        valid = self._valid[index]
        write_through = self.policy.write_policy is WritePolicy.WRITE_THROUGH
        for way in range(len(tags)):
            if tags[way] == key:
                word_bit = 1 << offset
                valid[way] |= word_bit
                if not write_through:
                    self._dirty[index][way] |= word_bit
                self._repl.on_hit(self._order[index], way)
                # Write-through hits still propagate the word downward;
                # the timed layers charge for it via bypass_write.
                return AccessResult(hit=True, bypass_write=write_through)
        if self.policy.write_miss is WriteMissPolicy.NO_ALLOCATE or write_through:
            # "The data cache is write back, with no fetch done on write
            # miss": the word goes around the cache to the write buffer.
            return AccessResult(hit=False, bypass_write=True)
        result = self._fill(key, index, offset, dirty_word=offset)
        return result

    def _fill(
        self, key: int, index: int, offset: int, dirty_word: Optional[int]
    ) -> AccessResult:
        """Allocate a frame for ``key``, evicting if necessary."""
        tags = self._tags[index]
        valid = self._valid[index]
        dirty = self._dirty[index]
        order = self._order[index]
        way = -1
        for candidate in range(len(tags)):
            if not valid[candidate]:
                way = candidate
                if way in order:
                    order.remove(way)
                break
        victim_key: Optional[int] = None
        victim_dirty_words = 0
        if way < 0:
            way = self._repl.victim(order, self.geometry.assoc)
            if dirty[way]:
                victim_key = tags[way]
                victim_dirty_words = bin(dirty[way]).count("1")
        tags[way] = key
        valid[way] = self._fetch_mask_for(offset)
        dirty[way] = 0
        if dirty_word is not None:
            bit = 1 << dirty_word
            valid[way] |= bit
            dirty[way] |= bit
        self._repl.on_fill(order, way)
        return AccessResult(
            hit=False,
            fetched_words=self._fetch_words,
            victim_key=victim_key,
            victim_dirty_words=victim_dirty_words,
        )

    def write_words(self, pid: int, word_addr: int, n_words: int) -> AccessResult:
        """Absorb a multi-word write arriving from the level above.

        Used when this cache is a *lower* level of a hierarchy: a dirty
        victim (or bypassing write-miss word) written back by the level
        above lands here.  The written words must lie within one block of
        this cache.  On a miss with a fetch-on-write policy the frame is
        allocated *without* fetching: the written words become valid and
        dirty, the rest of the block stays invalid (sub-block semantics),
        so no read from below is needed for correctness.  With a
        no-allocate policy the write bypasses (the caller forwards it to
        this level's own write buffer).
        """
        key, index, offset = self._locate(pid, word_addr)
        if offset + n_words > self.geometry.block_words:
            raise SimulationError(
                f"{n_words}-word write at offset {offset} crosses a "
                f"{self.geometry.block_words}-word block"
            )
        mask = ((1 << n_words) - 1) << offset
        tags = self._tags[index]
        valid = self._valid[index]
        dirty = self._dirty[index]
        write_through = self.policy.write_policy is WritePolicy.WRITE_THROUGH
        for way in range(len(tags)):
            if tags[way] == key:
                valid[way] |= mask
                if not write_through:
                    dirty[way] |= mask
                self._repl.on_hit(self._order[index], way)
                return AccessResult(hit=True, bypass_write=write_through)
        if self.policy.write_miss is WriteMissPolicy.NO_ALLOCATE or write_through:
            return AccessResult(hit=False, bypass_write=True)
        order = self._order[index]
        way = -1
        for candidate in range(len(tags)):
            if not valid[candidate]:
                way = candidate
                if way in order:
                    order.remove(way)
                break
        victim_key: Optional[int] = None
        victim_dirty_words = 0
        if way < 0:
            way = self._repl.victim(order, self.geometry.assoc)
            if dirty[way]:
                victim_key = tags[way]
                victim_dirty_words = bin(dirty[way]).count("1")
        tags[way] = key
        valid[way] = mask
        dirty[way] = mask
        self._repl.on_fill(order, way)
        return AccessResult(
            hit=False,
            victim_key=victim_key,
            victim_dirty_words=victim_dirty_words,
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self) -> List[Tuple[int, int]]:
        """Invalidate everything; return ``(key, dirty words)`` of each
        dirty block that would have required a write back."""
        written = []
        for index in range(len(self._tags)):
            for way in range(self.geometry.assoc):
                if self._dirty[index][way]:
                    written.append(
                        (
                            self._tags[index][way],
                            bin(self._dirty[index][way]).count("1"),
                        )
                    )
                self._tags[index][way] = -1
                self._valid[index][way] = 0
                self._dirty[index][way] = 0
            self._order[index].clear()
        return written

    def check_invariants(self) -> None:
        """Raise :class:`SimulationError` if internal state is corrupt.

        Used by tests and the property-based suite: no duplicate keys in
        a set, dirty implies valid-bits subset, order lists consistent.
        """
        for index in range(len(self._tags)):
            seen = set()
            for way in range(self.geometry.assoc):
                valid = self._valid[index][way]
                dirty = self._dirty[index][way]
                tag = self._tags[index][way]
                if valid:
                    if tag in seen:
                        raise SimulationError(
                            f"duplicate key {tag:#x} in set {index}"
                        )
                    seen.add(tag)
                if dirty & ~valid:
                    raise SimulationError(
                        f"dirty word without valid bit in set {index} way {way}"
                    )
                if valid and (way not in self._order[index]):
                    raise SimulationError(
                        f"valid way {way} missing from order list, set {index}"
                    )
            if len(self._order[index]) != len(
                set(self._order[index])
            ):
                raise SimulationError(f"duplicate ways in order list, set {index}")
