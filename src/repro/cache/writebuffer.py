"""Timed FIFO write buffer.

"Write buffers are included between every level of the modeled system"
(§2).  The buffer accepts dirty victims and bypassing write misses from
the cache above, drains them into the level below whenever that level
would otherwise sit idle (greedy background drain, reads have priority),
and enforces the two stall conditions the paper describes:

* **full stall** — a push into a full buffer forces the oldest entry to
  drain first, delaying the processor;
* **read-match stall** — "the write buffers check the addresses of reads
  to make sure that the fetched data is not stale.  In the case of a
  match, the read is delayed until the write propagates out of the
  buffer and into the next level of the hierarchy."

The level below is duck-typed: it must expose ``free_at`` and
``write_block(pid, word_addr, words, now) -> handoff_cycle``.  Both
:class:`~repro.memory.mainmemory.MainMemory` and the engine's lower cache
levels satisfy the protocol.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..errors import ConfigurationError

#: An entry is (pid, start word address, word count, ready cycle).
_Entry = Tuple[int, int, int, int]


class TimedWriteBuffer:
    """FIFO write buffer between two adjacent hierarchy levels.

    ``depth`` is the number of entries; the paper's base system uses four
    block entries, "of sufficient depth that it essentially never fills
    up".
    """

    def __init__(self, depth: int, below) -> None:
        if depth < 1:
            raise ConfigurationError(f"write buffer depth must be >= 1: {depth}")
        self.depth = depth
        self.below = below
        self._entries: Deque[_Entry] = deque()
        self.pushes = 0
        self.full_stalls = 0
        self.match_stalls = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def _drain_one(self) -> int:
        """Drain the oldest entry; return its handoff-completion cycle."""
        pid, addr, words, ready = self._entries.popleft()
        start = ready if ready > self.below.free_at else self.below.free_at
        return self.below.write_block(pid, addr, words, start)

    def background_drain(self, now: int) -> None:
        """Start every drain that would have begun strictly before ``now``.

        Models greedy write-behind with read priority: an entry starts
        draining as soon as the level below is idle, but a read arriving
        at exactly the same cycle wins the port.
        """
        entries = self._entries
        below = self.below
        while entries:
            ready = entries[0][3]
            start = ready if ready > below.free_at else below.free_at
            if start >= now:
                break
            self._drain_one()

    def push(self, pid: int, word_addr: int, words: int, now: int) -> int:
        """Queue a write; return the cycle the processor may continue.

        Normally that is ``now`` — buffered writes are off the critical
        path.  When the buffer is full the oldest entry is force-drained
        and the processor waits for the freed slot.
        """
        self.background_drain(now)
        release = now
        while len(self._entries) >= self.depth:
            self.full_stalls += 1
            handoff = self._drain_one()
            if handoff > release:
                release = handoff
        self._entries.append((pid, word_addr, words, release))
        self.pushes += 1
        if len(self._entries) > self.max_occupancy:
            self.max_occupancy = len(self._entries)
        return release

    def resolve_read_match(
        self, pid: int, word_addr: int, words: int, now: int
    ) -> int:
        """Stall a read of ``[word_addr, word_addr+words)`` until every
        matching entry has drained.

        Returns the cycle at which the read may proceed.  FIFO order is
        preserved: everything older than the newest match drains first.
        """
        if not self._entries:
            return now
        end = word_addr + words
        match_index = -1
        for i, (entry_pid, entry_addr, entry_words, _ready) in enumerate(
            self._entries
        ):
            if (
                entry_pid == pid
                and entry_addr < end
                and word_addr < entry_addr + entry_words
            ):
                match_index = i
        if match_index < 0:
            return now
        self.match_stalls += 1
        release = now
        for _ in range(match_index + 1):
            handoff = self._drain_one()
            if handoff > release:
                release = handoff
        return release

    def flush(self, now: int) -> int:
        """Drain everything; return the cycle the last handoff completes."""
        release = now
        while self._entries:
            handoff = self._drain_one()
            if handoff > release:
                release = handoff
        return release
