"""Reference records and the numpy-backed :class:`Trace` container.

A trace is an ordered stream of word-granularity memory references, each
carrying a reference kind (instruction fetch, load, or store) and the
identifier of the process that issued it.  The paper's traces were
preprocessed the same way: "the traces have been preprocessed to contain
only word references" (§2), and the simulated caches are virtual, so the
process identifier travels with every reference and is folded into the
cache tag.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TraceError


class RefKind(IntEnum):
    """Kind of a memory reference.

    A *read* in the paper's terminology (footnote 4) is either a load or
    an instruction fetch; :meth:`is_read` encodes that definition.
    """

    IFETCH = 0
    LOAD = 1
    STORE = 2

    @property
    def is_read(self) -> bool:
        """True for loads and instruction fetches (the paper's "read")."""
        return self is not RefKind.STORE

    @property
    def is_data(self) -> bool:
        """True for loads and stores (references served by the D-cache)."""
        return self is not RefKind.IFETCH


@dataclass(frozen=True)
class Reference:
    """A single word reference: ``(kind, word address, process id)``."""

    kind: RefKind
    addr: int
    pid: int = 0

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise TraceError(f"negative word address {self.addr}")
        if self.pid < 0:
            raise TraceError(f"negative pid {self.pid}")


class Trace:
    """An immutable, numpy-backed stream of references.

    Parameters
    ----------
    kinds, addrs, pids:
        Parallel arrays describing each reference.  ``addrs`` holds *word*
        addresses.
    name:
        Label used in reports (e.g. ``"mu3"``).
    warm_boundary:
        Index of the first reference at which statistics should be
        gathered; everything before it only warms caches.  The paper used
        a 450,000-reference warm boundary for the VAX traces and measured
        the last million references of the R2000 traces.
    """

    __slots__ = (
        "kinds", "addrs", "pids", "name", "warm_boundary", "_fingerprint",
    )

    def __init__(
        self,
        kinds: Sequence[int],
        addrs: Sequence[int],
        pids: Optional[Sequence[int]] = None,
        name: str = "trace",
        warm_boundary: int = 0,
    ) -> None:
        self.kinds = np.asarray(kinds, dtype=np.uint8)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        if pids is None:
            pids = np.zeros(len(self.kinds), dtype=np.int32)
        self.pids = np.asarray(pids, dtype=np.int32)
        if not (len(self.kinds) == len(self.addrs) == len(self.pids)):
            raise TraceError(
                "kinds, addrs and pids must have equal lengths, got "
                f"{len(self.kinds)}/{len(self.addrs)}/{len(self.pids)}"
            )
        if len(self.kinds) and (self.kinds > int(RefKind.STORE)).any():
            raise TraceError("trace contains an unknown reference kind")
        if len(self.addrs) and (self.addrs < 0).any():
            raise TraceError("trace contains a negative word address")
        if not 0 <= warm_boundary <= len(self.kinds):
            raise TraceError(
                f"warm boundary {warm_boundary} outside trace of "
                f"length {len(self.kinds)}"
            )
        self.name = name
        self.warm_boundary = warm_boundary
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_references(
        cls,
        refs: Iterable[Reference],
        name: str = "trace",
        warm_boundary: int = 0,
    ) -> "Trace":
        """Build a trace from an iterable of :class:`Reference`."""
        refs = list(refs)
        return cls(
            kinds=[int(r.kind) for r in refs],
            addrs=[r.addr for r in refs],
            pids=[r.pid for r in refs],
            name=name,
            warm_boundary=warm_boundary,
        )

    @classmethod
    def concatenate(
        cls, traces: Sequence["Trace"], name: str = "concat", warm_boundary: int = 0
    ) -> "Trace":
        """Concatenate traces back to back (the paper catenates snapshots)."""
        if not traces:
            raise TraceError("cannot concatenate zero traces")
        return cls(
            kinds=np.concatenate([t.kinds for t in traces]),
            addrs=np.concatenate([t.addrs for t in traces]),
            pids=np.concatenate([t.pids for t in traces]),
            name=name,
            warm_boundary=warm_boundary,
        )

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.kinds)

    def __getitem__(self, index) -> "Reference":
        if isinstance(index, slice):
            raise TypeError("use Trace.slice() to take sub-traces")
        return Reference(
            RefKind(int(self.kinds[index])),
            int(self.addrs[index]),
            int(self.pids[index]),
        )

    def __iter__(self) -> Iterator[Reference]:
        for kind, addr, pid in zip(
            self.kinds.tolist(), self.addrs.tolist(), self.pids.tolist()
        ):
            yield Reference(RefKind(kind), addr, pid)

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, length={len(self)}, "
            f"warm_boundary={self.warm_boundary})"
        )

    # ------------------------------------------------------------------
    # Views and derived traces
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int, name: Optional[str] = None) -> "Trace":
        """Return a sub-trace covering ``[start, stop)``.

        The warm boundary is re-derived relative to the slice: the part
        of the warm region that falls inside ``[start, stop)`` stays
        warm-up, and a boundary at or past ``stop`` clamps to the slice
        length (the whole slice is warm-up) rather than carrying a
        stale absolute index out of range.
        """
        if not (0 <= start <= stop <= len(self)):
            raise TraceError(f"bad slice [{start}, {stop}) of length {len(self)}")
        warm = min(max(self.warm_boundary - start, 0), stop - start)
        return Trace(
            self.kinds[start:stop],
            self.addrs[start:stop],
            self.pids[start:stop],
            name=name or self.name,
            warm_boundary=warm,
        )

    def with_warm_boundary(self, warm_boundary: int) -> "Trace":
        """Return the same trace with a different warm-start boundary."""
        return Trace(
            self.kinds, self.addrs, self.pids, name=self.name,
            warm_boundary=warm_boundary,
        )

    def with_name(self, name: str) -> "Trace":
        """Return the same trace relabelled."""
        return Trace(
            self.kinds, self.addrs, self.pids, name=name,
            warm_boundary=self.warm_boundary,
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def content_fingerprint(self) -> str:
        """Stable hash of the reference stream and warm boundary.

        Two traces with identical contents share a fingerprint
        regardless of object identity or :attr:`name` — this is the
        keying primitive for campaign run ids, prepaired couplet maps
        and the persistent functional-pass cache.  The digest is
        computed once and memoized (traces are immutable).
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(self.kinds.tobytes())
            digest.update(self.addrs.tobytes())
            digest.update(self.pids.tobytes())
            digest.update(str(self.warm_boundary).encode())
            self._fingerprint = digest.hexdigest()[:16]
        return self._fingerprint

    # ------------------------------------------------------------------
    # Fast access used by the simulators
    # ------------------------------------------------------------------
    def as_lists(self) -> Tuple[List[int], List[int], List[int]]:
        """Return ``(kinds, addrs, pids)`` as plain Python lists.

        Iterating plain lists is several times faster than indexing numpy
        arrays element by element, which matters in the simulator's inner
        loop.
        """
        return self.kinds.tolist(), self.addrs.tolist(), self.pids.tolist()

    # ------------------------------------------------------------------
    # Simple aggregate properties
    # ------------------------------------------------------------------
    @property
    def n_ifetches(self) -> int:
        return int(np.count_nonzero(self.kinds == int(RefKind.IFETCH)))

    @property
    def n_loads(self) -> int:
        return int(np.count_nonzero(self.kinds == int(RefKind.LOAD)))

    @property
    def n_stores(self) -> int:
        return int(np.count_nonzero(self.kinds == int(RefKind.STORE)))

    @property
    def n_reads(self) -> int:
        """Loads plus instruction fetches (the paper's "reads")."""
        return self.n_ifetches + self.n_loads

    @property
    def n_unique_addresses(self) -> int:
        """Number of distinct ``(pid, word address)`` pairs."""
        if not len(self):
            return 0
        combined = (self.pids.astype(np.int64) << 40) | self.addrs
        return int(len(np.unique(combined)))

    @property
    def n_processes(self) -> int:
        if not len(self):
            return 0
        return int(len(np.unique(self.pids)))
