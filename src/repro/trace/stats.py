"""System-independent trace statistics (the paper's Table 1 columns).

The paper preprocesses each trace once "to extract all the system
independent statistics" so the per-configuration simulations don't pay
for them repeatedly.  :class:`TraceStats` plays that role here: reference
counts by kind, process counts, unique-address footprints, and simple
locality indicators that are useful when calibrating the synthetic
workloads against published curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import TraceError
from .record import Trace


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of one trace."""

    name: str
    length: int
    n_processes: int
    n_unique_kwords: float
    n_ifetches: int
    n_loads: int
    n_stores: int
    warm_boundary: int

    @property
    def n_reads(self) -> int:
        """Loads plus ifetches — the paper's definition of a read."""
        return self.n_ifetches + self.n_loads

    @property
    def data_ref_fraction(self) -> float:
        """Fraction of references that are loads or stores."""
        if self.length == 0:
            return 0.0
        return (self.n_loads + self.n_stores) / self.length

    @property
    def store_fraction(self) -> float:
        """Fraction of references that are stores."""
        if self.length == 0:
            return 0.0
        return self.n_stores / self.length


def compute_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for a trace."""
    return TraceStats(
        name=trace.name,
        length=len(trace),
        n_processes=trace.n_processes,
        n_unique_kwords=trace.n_unique_addresses / 1024.0,
        n_ifetches=trace.n_ifetches,
        n_loads=trace.n_loads,
        n_stores=trace.n_stores,
        warm_boundary=trace.warm_boundary,
    )


def unique_addresses_over_time(trace: Trace, n_points: int = 20) -> List[int]:
    """Cumulative unique-address counts at ``n_points`` checkpoints.

    A coarse working-set growth curve: useful to confirm that a synthetic
    trace keeps touching new memory (multiprogrammed VAX behaviour)
    rather than saturating instantly.
    """
    if n_points < 1:
        raise TraceError(f"need at least one checkpoint, got {n_points}")
    if len(trace) == 0:
        return [0] * n_points
    combined = (trace.pids.astype(np.int64) << 40) | trace.addrs
    counts: List[int] = []
    seen: set = set()
    boundaries = [
        int(round((i + 1) * len(trace) / n_points)) for i in range(n_points)
    ]
    prev = 0
    for boundary in boundaries:
        seen.update(combined[prev:boundary].tolist())
        counts.append(len(seen))
        prev = boundary
    return counts


def stats_table(stats: Sequence[TraceStats]) -> str:
    """Render a Table 1 analogue for a collection of traces."""
    header = (
        f"{'Name':<8} {'Procs':>5} {'Length(K)':>10} {'Unique(KW)':>10} "
        f"{'Ifetch%':>8} {'Load%':>7} {'Store%':>7} {'Warm(K)':>8}"
    )
    lines = [header, "-" * len(header)]
    for s in stats:
        total = max(1, s.length)
        lines.append(
            f"{s.name:<8} {s.n_processes:>5} {s.length / 1000:>10.0f} "
            f"{s.n_unique_kwords:>10.1f} "
            f"{100 * s.n_ifetches / total:>7.1f}% "
            f"{100 * s.n_loads / total:>6.1f}% "
            f"{100 * s.n_stores / total:>6.1f}% "
            f"{s.warm_boundary / 1000:>8.0f}"
        )
    return "\n".join(lines)
