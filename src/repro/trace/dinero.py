"""Trace file input/output.

Two text formats are supported:

* the classic ``din`` format consumed by the DineroIII/IV simulators —
  one reference per line, ``<label> <hex byte address>``, with label 0 for
  data reads, 1 for data writes and 2 for instruction fetches.  Process
  identifiers are not representable, so they are dropped on write and
  default to zero on read;
* an extended ``dinp`` format, ``<label> <hex byte address> <pid>``, which
  round-trips everything a :class:`~repro.trace.record.Trace` holds.

Addresses on disk are *byte* addresses (the conventional din unit); in
memory the library works in word addresses, so IO converts.
"""

from __future__ import annotations

import io
from typing import IO, List, Union

from ..errors import TraceError
from ..units import BYTES_PER_WORD
from .record import RefKind, Trace

#: din labels, per the Dinero convention.
_DIN_READ = 0
_DIN_WRITE = 1
_DIN_IFETCH = 2

_KIND_TO_DIN = {
    int(RefKind.LOAD): _DIN_READ,
    int(RefKind.STORE): _DIN_WRITE,
    int(RefKind.IFETCH): _DIN_IFETCH,
}
_DIN_TO_KIND = {din: kind for kind, din in _KIND_TO_DIN.items()}


def _open_for_write(target: Union[str, IO[str]]):
    if isinstance(target, str):
        return open(target, "w", encoding="ascii"), True
    return target, False


def _open_for_read(source: Union[str, IO[str]]):
    if isinstance(source, str):
        return open(source, "r", encoding="ascii"), True
    return source, False


def write_din(trace: Trace, target: Union[str, IO[str]], with_pids: bool = False) -> None:
    """Write a trace in din (or dinp, when ``with_pids``) format."""
    stream, owned = _open_for_write(target)
    try:
        kinds = trace.kinds.tolist()
        addrs = trace.addrs.tolist()
        pids = trace.pids.tolist()
        for kind, addr, pid in zip(kinds, addrs, pids):
            byte_addr = addr * BYTES_PER_WORD
            if with_pids:
                stream.write(f"{_KIND_TO_DIN[kind]} {byte_addr:x} {pid}\n")
            else:
                stream.write(f"{_KIND_TO_DIN[kind]} {byte_addr:x}\n")
    finally:
        if owned:
            stream.close()


def read_din(
    source: Union[str, IO[str]],
    name: str = "din",
    warm_boundary: int = 0,
) -> Trace:
    """Read a din or dinp trace; byte addresses are truncated to words.

    Malformed lines raise :class:`~repro.errors.TraceError` naming the
    file and 1-based line number.  A final line that the writer cut off
    mid-record (no terminating newline and unparsable content — the
    signature of a truncated transfer or a crashed tracer) is reported
    as truncation rather than dropped or misdiagnosed.
    """
    stream, owned = _open_for_read(source)
    where = source if isinstance(source, str) else getattr(
        stream, "name", name
    )
    kinds: List[int] = []
    addrs: List[int] = []
    pids: List[int] = []

    def fail(lineno: int, terminated: bool, detail: str) -> TraceError:
        if not terminated:
            return TraceError(
                f"{where}: truncated final line {lineno}: {detail}"
            )
        return TraceError(f"{where}: line {lineno}: {detail}")

    try:
        for lineno, raw in enumerate(stream, start=1):
            # Only a file's last line can lack its newline; when it also
            # fails to parse, report truncation, not a format error.
            terminated = raw.endswith("\n")
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise fail(
                    lineno, terminated,
                    f"expected 2 or 3 fields, got {line!r}",
                )
            try:
                label = int(parts[0])
                byte_addr = int(parts[1], 16)
                pid = int(parts[2]) if len(parts) == 3 else 0
            except ValueError as exc:
                raise fail(
                    lineno, terminated, f"unparsable field in {line!r}"
                ) from exc
            if label not in _DIN_TO_KIND:
                raise fail(lineno, terminated, f"unknown din label {label}")
            if byte_addr < 0 or pid < 0:
                raise fail(lineno, terminated, "negative address or pid")
            kinds.append(_DIN_TO_KIND[label])
            addrs.append(byte_addr // BYTES_PER_WORD)
            pids.append(pid)
    finally:
        if owned:
            stream.close()
    return Trace(kinds, addrs, pids, name=name, warm_boundary=warm_boundary)


def round_trip_equal(a: Trace, b: Trace) -> bool:
    """True if two traces contain identical reference streams."""
    return (
        len(a) == len(b)
        and (a.kinds == b.kinds).all()
        and (a.addrs == b.addrs).all()
        and (a.pids == b.pids).all()
    )
