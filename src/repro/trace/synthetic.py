"""Synthetic address-stream primitives.

The paper's stimulus was eight multiprogrammed address traces captured on
real machines (VAX 8200 via ATUM microcode, and a MIPS R2000).  Those
traces are not available, so this module provides generative models that
reproduce the *statistical properties* the experiments actually consume:

* instruction streams with strong spatial and temporal locality, produced
  by a loop-structured program-counter model with revisited loop sites
  (:class:`InstructionModel`);
* data streams mixing sequential runs, multi-scale recency reuse and a
  trickle of fresh working-set touches (:class:`DataModel`), which yields
  the textbook concave miss-rate-versus-size curves of Figure 3-1 — the
  reuse-distance distribution is an explicit three-scale mixture (near /
  mid / far), so misses keep declining over several decades of cache
  size instead of collapsing at one knee;
* start-up zeroing sweeps (:class:`ZeroingSweep`) that model the data
  space zeroing the paper observed at the start of the ``grep`` and
  ``egrep`` processes (§3, write traffic discussion).

All models draw from an explicit :class:`random.Random` instance so that
trace generation is deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError

#: Word-address bases for the classic three-segment virtual layout.  All
#: processes share the same layout; the per-reference PID keeps virtual
#: addresses distinct inside the (virtual) caches.
TEXT_BASE = 0x0000_0000
DATA_BASE = 0x0100_0000
STACK_BASE = 0x0300_0000


def _geometric(rng: random.Random, mean: float) -> int:
    """Draw a geometric variate with the given mean, minimum 1."""
    if mean <= 1.0:
        return 1
    p = 1.0 / mean
    n = 1
    while rng.random() > p:
        n += 1
    return n


class _RecencyRing:
    """Bounded ring of recently seen items with multi-scale rank sampling.

    ``sample()`` picks an item at a *recency rank* drawn from a mixture
    of two exponential scales plus a heavy uniform-ish tail.  That rank
    distribution is what shapes the simulated LRU stack-distance curve:
    near reuse keeps small caches effective, mid reuse rewards tens of
    kilobytes, and the far tail keeps megabyte caches improving.
    """

    def __init__(
        self,
        capacity: int,
        near_mean: float,
        mid_mean: float,
        p_near: float,
        p_mid: float,
        rng: random.Random,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"ring capacity must be >= 1: {capacity}")
        if min(p_near, p_mid) < 0 or p_near + p_mid > 1.0:
            raise ConfigurationError(
                f"bad rank mixture: p_near={p_near}, p_mid={p_mid}"
            )
        self.capacity = capacity
        self.near_mean = near_mean
        self.mid_mean = mid_mean
        self.p_near = p_near
        self.p_mid = p_mid
        self.rng = rng
        self._items: List[int] = []
        self._pos = 0

    def __len__(self) -> int:
        return len(self._items)

    def remember(self, item: int) -> None:
        if len(self._items) < self.capacity:
            self._items.append(item)
        else:
            self._items[self._pos] = item
            self._pos = (self._pos + 1) % self.capacity

    def sample(self) -> int:
        """Return an item at a multi-scale recency rank (0 = newest)."""
        n = len(self._items)
        if n == 0:
            raise ConfigurationError("sampling from an empty recency ring")
        rng = self.rng
        u = rng.random()
        if u < self.p_near:
            rank = int(rng.expovariate(1.0 / self.near_mean))
        elif u < self.p_near + self.p_mid:
            rank = int(rng.expovariate(1.0 / self.mid_mean))
        else:
            rank = int(n * (rng.random() ** 1.2))
        if rank >= n:
            rank = n - 1
        if len(self._items) < self.capacity:
            index = n - 1 - rank
        else:
            index = (self._pos - 1 - rank) % self.capacity
        return self._items[index]


class InstructionModel:
    """Loop-structured program-counter model with revisited loop sites.

    Execution is a sequence of loops: the PC walks sequentially through a
    loop body, repeats it a geometric number of times, then moves on.
    The *next* loop is, with high probability, a recently executed one
    (function and call-site reuse — this is what gives the instruction
    stream its multi-scale temporal locality); otherwise it is fresh code
    — either the fall-through successor or a far jump anywhere in the
    text segment.

    ``code_words`` bounds the instruction working set;
    ``mean_loop_body``/``mean_loop_iters`` set spatial run length and
    inner-loop reuse; ``p_revisit`` sets the strength of loop-site reuse.
    """

    def __init__(
        self,
        code_words: int,
        mean_loop_body: float = 24.0,
        mean_loop_iters: float = 10.0,
        p_far_jump: float = 0.25,
        p_revisit: float = 0.85,
        site_ring: int = 1024,
        explore_tau: float = 60_000.0,
        explore_floor: float = 0.08,
        base: int = TEXT_BASE,
        rng: Optional[random.Random] = None,
    ) -> None:
        if code_words < 16:
            raise ConfigurationError(f"code footprint too small: {code_words}")
        if mean_loop_body < 1 or mean_loop_iters < 1:
            raise ConfigurationError("loop body and iteration means must be >= 1")
        if not 0.0 <= p_far_jump <= 1.0:
            raise ConfigurationError(f"p_far_jump out of range: {p_far_jump}")
        if not 0.0 <= p_revisit <= 1.0:
            raise ConfigurationError(f"p_revisit out of range: {p_revisit}")
        if explore_tau <= 0 or not 0.0 <= explore_floor <= 1.0:
            raise ConfigurationError("bad exploration decay parameters")
        self.code_words = code_words
        self.mean_loop_body = mean_loop_body
        self.mean_loop_iters = mean_loop_iters
        self.p_far_jump = p_far_jump
        self.p_revisit = p_revisit
        self.base = base
        self.rng = rng or random.Random(0)
        self._sites = _RecencyRing(
            site_ring, near_mean=6.0, mid_mean=160.0, p_near=0.38, p_mid=0.38,
            rng=self.rng,
        )
        # Exploration decays over the model's lifetime: code is discovered
        # mostly during start-up, after which execution is phase-local.
        # The multiplicative decay keeps the per-call cost at one multiply.
        self._explore_floor = explore_floor
        self._decay = 1.0
        self._decay_step = 2.0 ** (-1.0 / explore_tau)
        self._code_frontier = min(256, code_words)
        self._loop_start = 0
        self._body_len = 1
        self._offset = 0
        self._iters_left = 1
        self._new_loop()

    def _explore_scale(self) -> float:
        floor = self._explore_floor
        return floor + (1.0 - floor) * self._decay

    def _new_loop(self) -> None:
        rng = self.rng
        if len(self._sites) and rng.random() < self.p_revisit:
            packed = self._sites.sample()
            start, body = packed >> 16, packed & 0xFFFF
        else:
            body = max(2, _geometric(rng, self.mean_loop_body))
            body = min(body, min(self.code_words, 0xFFFF))
            if rng.random() < self.p_far_jump:
                # Far jumps usually land in already-discovered code; the
                # (decaying) remainder extends the code frontier.
                if rng.random() < 0.25 * self._explore_scale():
                    self._code_frontier = min(
                        self.code_words,
                        self._code_frontier + _geometric(rng, 4.0 * body),
                    )
                start = rng.randrange(0, self._code_frontier)
            else:
                start = (self._loop_start + self._body_len) % self.code_words
                self._code_frontier = max(
                    self._code_frontier, min(start + body, self.code_words)
                )
        self._loop_start = start
        self._body_len = body
        self._offset = 0
        self._iters_left = _geometric(rng, self.mean_loop_iters)
        self._sites.remember((start << 16) | body)

    def next_address(self) -> int:
        """Return the next instruction word address."""
        addr = self.base + (self._loop_start + self._offset) % self.code_words
        self._offset += 1
        self._decay *= self._decay_step
        if self._offset >= self._body_len:
            self._offset = 0
            self._iters_left -= 1
            if self._iters_left <= 0:
                self._new_loop()
        return addr


class DataModel:
    """Mixture model for load/store addresses.

    Each address is drawn from one of three behaviours:

    * with probability ``p_sequential``, continue (or begin) a sequential
      run — array traversals and string scans.  New runs mostly restart
      at the base of earlier runs (programs rescan the same arrays) so
      sequential traffic is dominated by *re*-scans, not frontier growth;
    * with probability ``p_reuse``, re-reference a recently used address
      at a multi-scale recency rank (see :class:`_RecencyRing`) — stack
      frames, scalars, hot structures, and the long tail of colder data;
    * otherwise (a small residue) touch fresh memory.  Fresh allocation
      is a bump pointer (structures are laid out consecutively) with an
      occasional uniform spray; ``p_run_fresh`` similarly controls how
      often a sequential run opens fresh territory.  These two knobs set
      the compulsory-miss floor of the stream.
    """

    def __init__(
        self,
        data_words: int,
        p_sequential: float = 0.30,
        p_reuse: float = 0.68,
        mean_run: float = 12.0,
        p_run_fresh: float = 0.04,
        reuse_window: int = 32768,
        reuse_near_mean: float = 48.0,
        reuse_mid_mean: float = 2048.0,
        p_near: float = 0.62,
        p_mid: float = 0.28,
        run_base_ring: int = 256,
        fresh_tau: float = 25_000.0,
        fresh_floor: float = 0.10,
        init_words: int = 0,
        p_stack: float = 0.20,
        stack_span: int = 192,
        base: int = DATA_BASE,
        stack_base: int = STACK_BASE,
        rng: Optional[random.Random] = None,
    ) -> None:
        if data_words < 16:
            raise ConfigurationError(f"data footprint too small: {data_words}")
        if min(p_sequential, p_reuse) < 0 or p_sequential + p_reuse > 1.0:
            raise ConfigurationError(
                f"bad mixture: p_sequential={p_sequential}, p_reuse={p_reuse}"
            )
        if not 0.0 <= p_run_fresh <= 1.0:
            raise ConfigurationError(f"p_run_fresh out of range: {p_run_fresh}")
        if fresh_tau <= 0 or not 0.0 <= fresh_floor <= 1.0:
            raise ConfigurationError("bad fresh-allocation decay parameters")
        self.data_words = data_words
        self.p_sequential = p_sequential
        self.p_reuse = p_reuse
        self.mean_run = max(1.0, mean_run)
        self.p_run_fresh = p_run_fresh
        self.base = base
        self.rng = rng or random.Random(0)
        self._ring = _RecencyRing(
            reuse_window, near_mean=reuse_near_mean, mid_mean=reuse_mid_mean,
            p_near=p_near, p_mid=p_mid, rng=self.rng,
        )
        self._run_bases = _RecencyRing(
            run_base_ring, near_mean=4.0, mid_mean=32.0, p_near=0.55,
            p_mid=0.35, rng=self.rng,
        )
        # Fresh allocation decays over the model's lifetime: programs
        # build their data structures early, then mostly revisit them.
        self._fresh_floor = fresh_floor
        self._decay = 1.0
        self._decay_step = 2.0 ** (-1.0 / fresh_tau)
        self._frontier = 0
        self._run_addr = 0
        self._run_left = 0
        # Initialization sweep: programs build their data structures
        # first, so the working set is laid down early (mostly inside the
        # warm-up region) and steady state mainly revisits it.
        if init_words < 0 or init_words > data_words:
            raise ConfigurationError(
                f"init_words {init_words} outside [0, {data_words}]"
            )
        self._init_left = init_words
        # Stack stream: a small, very hot region checked before the main
        # mixture.  Its placement relative to the data arrays generates
        # the conflict misses set associativity removes (§4): when a
        # scanned array passes over the stack's cache indices, a
        # direct-mapped cache thrashes.
        if not 0.0 <= p_stack <= 1.0:
            raise ConfigurationError(f"p_stack out of range: {p_stack}")
        if stack_span < 1:
            raise ConfigurationError(f"stack span must be >= 1: {stack_span}")
        self.p_stack = p_stack
        self.stack_span = stack_span
        self.stack_base = stack_base
        self._sp = stack_span // 2
        # Address-space fragmentation: logical addresses are laid out
        # densely (bump allocation), but real heaps scatter objects, so
        # spatial locality must not extend past object granularity.  A
        # bijective scramble of fixed-size clusters keeps words within a
        # cluster adjacent while placing the clusters pseudo-randomly:
        # sequential runs stay sequential up to the cluster size, and
        # blocks larger than a cluster fetch unrelated data — which is
        # what makes the paper's block-size curves turn back up.
        self._cluster_bits = 4  # 16-word (64-byte) clusters
        space = 1
        while space < data_words:
            space <<= 1
        self._cluster_count = max(1, space >> self._cluster_bits)

    def _scatter(self, addr: int) -> int:
        """Bijectively scramble the cluster id of a logical address."""
        offset = addr & ((1 << self._cluster_bits) - 1)
        cluster = addr >> self._cluster_bits
        scrambled = (cluster * 2654435761) & (self._cluster_count - 1)
        return (scrambled << self._cluster_bits) | offset

    @property
    def in_init(self) -> bool:
        """True while the model is still in its initialization sweep."""
        return self._init_left > 0

    def _fresh_scale(self) -> float:
        floor = self._fresh_floor
        return floor + (1.0 - floor) * self._decay

    def _fresh(self) -> int:
        """Allocate fresh memory: bump pointer with a 10% uniform spray."""
        rng = self.rng
        if rng.random() < 0.10:
            return rng.randrange(0, self.data_words)
        step = _geometric(rng, 4.0)
        self._frontier = (self._frontier + step) % self.data_words
        return self._frontier

    def next_address(self) -> int:
        """Return the next data word address."""
        rng = self.rng
        ring = self._ring
        if self._init_left > 0:
            self._init_left -= 1
            addr = self._frontier
            self._frontier += 1
            if rng.random() < 0.06:
                # Leave occasional gaps so the initialized region is not
                # perfectly dense (holes between structures).
                self._frontier += _geometric(rng, 3.0)
            self._frontier %= self.data_words
            if rng.random() < 0.25:
                self._run_bases.remember(addr)
            ring.remember(addr)
            return self.base + self._scatter(addr)
        self._decay *= self._decay_step
        if rng.random() < self.p_stack:
            # Stack reference: random-walk frame pointer plus a small
            # in-frame offset.  Not remembered in the reuse ring — the
            # stack is its own locality pool.
            step = _geometric(rng, 2.0)
            if rng.random() < 0.5:
                step = -step
            self._sp = (self._sp + step) % self.stack_span
            offset = _geometric(rng, 3.0) - 1
            return self.stack_base + (self._sp + offset) % self.stack_span
        u = rng.random()
        if u < self.p_sequential:
            if self._run_left <= 0:
                fresh_run = (
                    not len(self._run_bases)
                    or rng.random() < self.p_run_fresh * self._fresh_scale()
                )
                if fresh_run:
                    self._run_addr = self._fresh()
                else:
                    self._run_addr = self._run_bases.sample()
                self._run_bases.remember(self._run_addr)
                self._run_left = _geometric(rng, self.mean_run)
            addr = self._run_addr % self.data_words
            self._run_addr += 1
            self._run_left -= 1
        elif u < self.p_sequential + self.p_reuse and len(ring):
            addr = ring.sample()
        elif rng.random() < self._fresh_scale():
            addr = self._fresh()
        elif len(ring):
            addr = ring.sample()
        else:
            addr = self._fresh()
        ring.remember(addr)
        return self.base + self._scatter(addr)


class ZeroingSweep:
    """A one-shot sequential store sweep over a region.

    Models bss/data-space zeroing at process start-up; the paper calls
    this out as the source of the high write traffic of the ``grep`` and
    ``egrep`` traces at large cache sizes.
    """

    def __init__(self, span_words: int, base: int = DATA_BASE) -> None:
        if span_words < 0:
            raise ConfigurationError(f"negative zeroing span {span_words}")
        self.span_words = span_words
        self.base = base
        self._next = 0

    @property
    def exhausted(self) -> bool:
        return self._next >= self.span_words

    def next_address(self) -> int:
        """Return the next store address; raises when exhausted."""
        if self.exhausted:
            raise ConfigurationError("zeroing sweep exhausted")
        addr = self.base + self._next
        self._next += 1
        return addr


@dataclass(frozen=True)
class SegmentLayout:
    """Word-address bases for a process's text, data and stack segments."""

    text: int = TEXT_BASE
    data: int = DATA_BASE
    stack: int = STACK_BASE

    def __post_init__(self) -> None:
        if not self.text < self.data < self.stack:
            raise ConfigurationError(
                f"segments must be ordered text < data < stack, got "
                f"{self.text:#x} {self.data:#x} {self.stack:#x}"
            )
