"""The eight-trace suite standing in for the paper's Table 1.

Two families are provided, mirroring the paper:

* ``mu3``, ``mu6``, ``mu10``, ``savec`` — VAX-family multiprogrammed
  traces with an operating-system pseudo-process, denser data reference
  mixes, and a fixed warm-start boundary (the paper used 450 K references
  of ~1.1–1.7 M);
* ``rd1n3``, ``rd2n4``, ``rd1n5``, ``rd2n7`` — RISC-family traces built
  from uniprocess program models randomly interleaved "to duplicate the
  distribution of context switch intervals seen in the VAX traces", each
  carrying an R2000-style warm prefix of previously-touched unique
  references so large-cache results are trustworthy.

Lengths and footprints default to laptop-friendly values; pass larger
``length``/``scale`` for higher-fidelity runs.  All generation is
deterministic given ``seed``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .multiprogram import interleave, with_warm_prefix
from .record import Trace
from .workloads import Program, make_program

#: Default per-trace length in references.  The paper's traces were 1.1 to
#: 1.7 M references; the default here keeps the full 8-trace suite cheap
#: enough for tests while preserving curve shapes.  Experiments accept a
#: ``trace_length`` parameter to scale up.
DEFAULT_LENGTH = 300_000

#: Fraction of a VAX-family trace used for cache warm-up (the paper's
#: 450 K boundary was roughly a third of each trace).
VAX_WARM_FRACTION = 0.34

#: Fraction of the body length used as the history run that builds the
#: RISC-family warm prefix.
RISC_HISTORY_FRACTION = 0.35

#: Mean context-switch interval in references, applied to both families.
MEAN_SWITCH_INTERVAL = 4_000.0

#: Program composition of each trace, following Table 1's descriptions.
TRACE_PROGRAMS: Dict[str, List[str]] = {
    # VAX family (VMS / Ultrix, with an OS pseudo-process).
    "mu3": [
        "os_kernel", "fortran_compile", "microcode_alloc", "dir_search",
        "misc_activity", "misc_activity", "misc_activity",
    ],
    "mu6": [
        "os_kernel", "fortran_compile", "microcode_alloc", "dir_search",
        "pascal_compile", "spice", "misc_activity", "misc_activity",
        "misc_activity", "misc_activity", "misc_activity",
    ],
    "mu10": [
        "os_kernel", "fortran_compile", "microcode_alloc", "dir_search",
        "pascal_compile", "spice", "jacobian", "string_search",
        "assembler", "octal_dump", "linker", "misc_activity",
        "misc_activity", "misc_activity",
    ],
    "savec": [
        "os_kernel", "c_compile", "misc_activity", "misc_activity",
        "misc_activity", "misc_activity",
    ],
    # RISC family (optimized C programs, no OS references).
    "rd1n3": ["emacs", "switch_prog", "rsim"],
    "rd2n4": ["ccom", "emacs", "troff", "trace_analyzer"],
    "rd1n5": ["ccom", "emacs", "troff", "trace_analyzer", "egrep"],
    "rd2n7": [
        "ccom", "emacs", "troff", "trace_analyzer", "rsim", "grep", "emacs",
    ],
}

#: Names of the VAX-family and RISC-family traces, in Table 1 order.
VAX_TRACES: Tuple[str, ...] = ("mu3", "mu6", "mu10", "savec")
RISC_TRACES: Tuple[str, ...] = ("rd1n3", "rd2n4", "rd1n5", "rd2n7")
ALL_TRACES: Tuple[str, ...] = VAX_TRACES + RISC_TRACES


def _trace_salt(name: str) -> int:
    """Deterministic per-trace salt so different traces never share
    program streams (hash() is randomized across runs; don't use it)."""
    value = 0
    for ch in name:
        value = (value * 131 + ord(ch)) & 0x7FFFFFFF
    return value


def _make_programs(name: str, scale: float, seed: int) -> List[Program]:
    presets = TRACE_PROGRAMS[name]
    salt = _trace_salt(name)
    return [
        make_program(
            preset, pid=pid + 1,
            seed=seed * 7919 + pid * 104729 + salt * 31 + 13,
            scale=scale,
        )
        for pid, preset in enumerate(presets)
    ]


def build_trace(
    name: str,
    length: int = DEFAULT_LENGTH,
    scale: float = 1.0,
    seed: int = 0,
) -> Trace:
    """Build one named trace of the suite.

    For VAX-family names the trace is a straight multiprogrammed
    interleaving with a warm boundary at ``VAX_WARM_FRACTION`` of its
    length.  For RISC-family names a history run is generated first (and
    discarded) to produce the warm prefix of unique references; the same
    program instances then continue into the measured body, so the body
    genuinely resumes mid-execution — "gathered from a random location in
    the middle of each program's execution", as the paper puts it.
    """
    if name not in TRACE_PROGRAMS:
        raise ConfigurationError(
            f"unknown trace {name!r}; available: {sorted(TRACE_PROGRAMS)}"
        )
    if length <= 0:
        raise ConfigurationError(f"trace length must be positive, got {length}")
    programs = _make_programs(name, scale, seed)
    if name in VAX_TRACES:
        trace = interleave(
            programs, length=length,
            mean_switch_interval=MEAN_SWITCH_INTERVAL,
            scheduler="round_robin", seed=seed + 17, name=name,
        )
        return trace.with_warm_boundary(int(length * VAX_WARM_FRACTION))
    history_len = max(1, int(length * RISC_HISTORY_FRACTION))
    history = interleave(
        programs, length=history_len,
        mean_switch_interval=MEAN_SWITCH_INTERVAL,
        scheduler="random", seed=seed + 29, name=f"{name}-history",
    )
    body = interleave(
        programs, length=length,
        mean_switch_interval=MEAN_SWITCH_INTERVAL,
        scheduler="random", seed=seed + 31, name=name,
    )
    return with_warm_prefix(body, history, name=name)


@lru_cache(maxsize=64)
def _cached_trace(name: str, length: int, scale: float, seed: int) -> Trace:
    return build_trace(name, length=length, scale=scale, seed=seed)


def build_suite(
    length: int = DEFAULT_LENGTH,
    scale: float = 1.0,
    seed: int = 0,
    names: Optional[Sequence[str]] = None,
) -> Dict[str, Trace]:
    """Build (and memoize) the trace suite.

    ``names`` selects a subset; the default is all eight traces.  Results
    are cached per ``(name, length, scale, seed)`` because the experiment
    harness evaluates many cache organizations against the same stimulus,
    exactly as the paper reused its traces across its simulation farm.
    """
    selected = tuple(names) if names is not None else ALL_TRACES
    for name in selected:
        if name not in TRACE_PROGRAMS:
            raise ConfigurationError(f"unknown trace {name!r}")
    return {
        name: _cached_trace(name, length, scale, seed) for name in selected
    }
