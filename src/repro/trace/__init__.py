"""Trace substrate: reference records, synthetic workloads, suite, IO.

This package replaces the paper's captured VAX/ATUM and MIPS R2000 address
traces with calibrated synthetic equivalents (see DESIGN.md §2 for the
substitution rationale) and provides the containers and file formats the
simulators consume.
"""

from .record import Reference, RefKind, Trace
from .stats import TraceStats, compute_stats, stats_table, unique_addresses_over_time
from .suite import (
    ALL_TRACES,
    DEFAULT_LENGTH,
    RISC_TRACES,
    VAX_TRACES,
    build_suite,
    build_trace,
)
from .synthetic import DataModel, InstructionModel, SegmentLayout, ZeroingSweep
from .workloads import PRESETS, Program, WorkloadSpec, make_program
from .multiprogram import interleave, warm_prefix, with_warm_prefix
from .dinero import read_din, round_trip_equal, write_din

__all__ = [
    "Reference",
    "RefKind",
    "Trace",
    "TraceStats",
    "compute_stats",
    "stats_table",
    "unique_addresses_over_time",
    "ALL_TRACES",
    "DEFAULT_LENGTH",
    "RISC_TRACES",
    "VAX_TRACES",
    "build_suite",
    "build_trace",
    "DataModel",
    "InstructionModel",
    "SegmentLayout",
    "ZeroingSweep",
    "PRESETS",
    "Program",
    "WorkloadSpec",
    "make_program",
    "interleave",
    "warm_prefix",
    "with_warm_prefix",
    "read_din",
    "round_trip_equal",
    "write_din",
]
