"""Named program models standing in for the paper's traced programs.

Table 1 of the paper lists the programs inside each trace: compilers,
editors, circuit simulators, text-search tools, linkers and assemblers,
plus VMS/Ultrix operating-system activity.  Each entry below is a
:class:`WorkloadSpec` — a parameter preset for the synthetic models in
:mod:`repro.trace.synthetic` chosen to mimic that program class:

* compilers: large code footprints, moderate data, mixed reuse;
* editors (emacs): very large code, bursty small data;
* circuit/logic simulators (spice, rsim): tight numeric loops over large
  data arrays;
* grep/egrep: tiny code, long sequential data scans, and the start-up
  zeroing sweep the paper observed;
* the OS pseudo-program: wide code footprint, poor locality, standing in
  for VMS/Ultrix system activity inside the VAX-family traces.

Two instruction-mix families are provided, mirroring the paper's two
trace groups: the VAX family issues more data references per instruction
(denser instructions), while the RISC family has a lower instruction
density and tighter loops, which the paper reports as 29–46% lower
instruction miss rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .record import RefKind
from .synthetic import DataModel, InstructionModel, SegmentLayout, ZeroingSweep


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameter preset describing one program class.

    The probabilities are per *instruction fetch*: after each ifetch the
    program issues a data reference with probability ``p_data``, which is
    a store with probability ``p_store_given_data``.
    """

    name: str
    code_words: int = 16384
    mean_loop_body: float = 24.0
    mean_loop_iters: float = 4.0
    p_far_jump: float = 0.25
    p_revisit: float = 0.45
    data_words: int = 32768
    p_data: float = 0.45
    p_store_given_data: float = 0.30
    p_sequential: float = 0.30
    p_reuse: float = 0.68
    mean_run: float = 7.0
    p_run_fresh: float = 0.30
    reuse_window: int = 65536
    reuse_near_mean: float = 40.0
    reuse_mid_mean: float = 2560.0
    p_near: float = 0.40
    p_mid: float = 0.42
    p_stack: float = 0.20
    stack_span: int = 192
    fresh_tau: float = 1200.0
    fresh_floor: float = 0.03
    explore_tau: float = 5000.0
    explore_floor: float = 0.04
    init_words: int = 800
    zero_words: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_data <= 1.0:
            raise ConfigurationError(f"p_data out of range: {self.p_data}")
        if not 0.0 <= self.p_store_given_data <= 1.0:
            raise ConfigurationError(
                f"p_store_given_data out of range: {self.p_store_given_data}"
            )

    def scaled(self, factor: float) -> "WorkloadSpec":
        """Return a copy with code/data footprints scaled by ``factor``.

        Useful for building reduced-footprint suites for fast tests.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive: {factor}")
        return replace(
            self,
            code_words=max(64, int(self.code_words * factor)),
            data_words=max(64, int(self.data_words * factor)),
            init_words=int(self.init_words * factor),
            zero_words=int(self.zero_words * factor),
        )


class Program:
    """A running instance of a workload: stateful, resumable generator.

    The multiprogramming interleaver asks each program for a chunk of
    references at every scheduling quantum; the program keeps its PC and
    data-model state across calls, exactly as a real process keeps its
    context across context switches.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        pid: int,
        seed: int,
        layout: Optional[SegmentLayout] = None,
    ) -> None:
        self.spec = spec
        self.pid = pid
        layout = layout or SegmentLayout()
        self.rng = random.Random(seed)
        self.imodel = InstructionModel(
            code_words=spec.code_words,
            mean_loop_body=spec.mean_loop_body,
            mean_loop_iters=spec.mean_loop_iters,
            p_far_jump=spec.p_far_jump,
            p_revisit=spec.p_revisit,
            explore_tau=spec.explore_tau,
            explore_floor=spec.explore_floor,
            base=layout.text,
            rng=random.Random(seed ^ 0x5EED1),
        )
        self.dmodel = DataModel(
            data_words=spec.data_words,
            p_sequential=spec.p_sequential,
            p_reuse=spec.p_reuse,
            mean_run=spec.mean_run,
            p_run_fresh=spec.p_run_fresh,
            reuse_window=spec.reuse_window,
            reuse_near_mean=spec.reuse_near_mean,
            reuse_mid_mean=spec.reuse_mid_mean,
            p_near=spec.p_near,
            p_mid=spec.p_mid,
            fresh_tau=spec.fresh_tau,
            fresh_floor=spec.fresh_floor,
            init_words=min(spec.init_words, spec.data_words),
            p_stack=spec.p_stack,
            stack_span=spec.stack_span,
            base=layout.data,
            stack_base=layout.stack,
            rng=random.Random(seed ^ 0x5EED2),
        )
        self._zeroing = (
            ZeroingSweep(spec.zero_words, base=layout.data)
            if spec.zero_words
            else None
        )

    def generate(self, n_refs: int) -> Tuple[List[int], List[int]]:
        """Emit approximately ``n_refs`` references (at least ``n_refs``).

        Returns parallel ``(kinds, addrs)`` lists.  References come in
        program order: every instruction fetch optionally followed by one
        data reference, matching the couplet pairing the simulated CPU
        performs.
        """
        kinds: List[int] = []
        addrs: List[int] = []
        rng = self.rng
        spec = self.spec
        ifetch = int(RefKind.IFETCH)
        load = int(RefKind.LOAD)
        store = int(RefKind.STORE)
        inext = self.imodel.next_address
        dnext = self.dmodel.next_address
        while len(kinds) < n_refs:
            kinds.append(ifetch)
            addrs.append(inext())
            if self._zeroing is not None and not self._zeroing.exhausted:
                kinds.append(store)
                addrs.append(self._zeroing.next_address())
                continue
            if rng.random() < spec.p_data:
                if self.dmodel.in_init:
                    # Initialization mixes writes with reads of the
                    # structures being built.
                    p_store = 0.35
                else:
                    p_store = spec.p_store_given_data
                kind = store if rng.random() < p_store else load
                kinds.append(kind)
                addrs.append(dnext())
        return kinds, addrs


def _kw(words_kb: float) -> int:
    """Kilobytes of footprint expressed in words (4-byte words)."""
    return int(words_kb * 1024 / 4)


#: Program presets named after Table 1's constituents.  Footprints are in
#: 4-byte words; e.g. ``code_words=_kw(96)`` is a 96 KB text segment.
PRESETS: Dict[str, WorkloadSpec] = {
    # --- VAX-family programs (denser instructions, more data refs) -----
    "os_kernel": WorkloadSpec(
        name="os_kernel", init_words=1500, code_words=_kw(256), mean_loop_body=14.0,
        mean_loop_iters=3.0, p_far_jump=0.30, data_words=_kw(192),
        p_data=0.55, p_store_given_data=0.35, p_sequential=0.25,
        p_reuse=0.62, reuse_window=16384, p_near=0.45, p_mid=0.35,
        reuse_mid_mean=4096.0, p_revisit=0.70,
    ),
    "fortran_compile": WorkloadSpec(
        name="fortran_compile", init_words=1000, code_words=_kw(160), data_words=_kw(96),
        mean_loop_body=20.0, mean_loop_iters=6.0, p_far_jump=0.15,
        p_data=0.50, p_store_given_data=0.32,
    ),
    "microcode_alloc": WorkloadSpec(
        name="microcode_alloc", init_words=800, code_words=_kw(48), data_words=_kw(64),
        mean_loop_body=16.0, mean_loop_iters=10.0, p_data=0.48,
        p_store_given_data=0.28, p_sequential=0.30,
    ),
    "dir_search": WorkloadSpec(
        name="dir_search", init_words=1500, code_words=_kw(24), data_words=_kw(128),
        mean_loop_body=12.0, mean_loop_iters=20.0, p_data=0.52,
        p_store_given_data=0.10, p_sequential=0.60, p_reuse=0.30,
        mean_run=12.0,
    ),
    "pascal_compile": WorkloadSpec(
        name="pascal_compile", init_words=1000, code_words=_kw(128), data_words=_kw(80),
        mean_loop_body=22.0, mean_loop_iters=6.0, p_data=0.50,
        p_store_given_data=0.30,
    ),
    "spice": WorkloadSpec(
        name="spice", init_words=4000, code_words=_kw(96), data_words=_kw(384),
        mean_loop_body=40.0, mean_loop_iters=30.0, p_far_jump=0.05,
        p_data=0.55, p_store_given_data=0.25, p_sequential=0.50,
        p_reuse=0.35, mean_run=16.0, reuse_window=8192,
    ),
    "jacobian": WorkloadSpec(
        name="jacobian", init_words=3000, code_words=_kw(32), data_words=_kw(256),
        mean_loop_body=36.0, mean_loop_iters=40.0, p_far_jump=0.04,
        p_data=0.58, p_store_given_data=0.30, p_sequential=0.55,
        mean_run=10.0, p_reuse=0.30,
    ),
    "string_search": WorkloadSpec(
        name="string_search", init_words=2000, code_words=_kw(12), data_words=_kw(192),
        mean_loop_body=10.0, mean_loop_iters=50.0, p_data=0.50,
        p_store_given_data=0.05, p_sequential=0.75, p_reuse=0.15,
        mean_run=24.0,
    ),
    "assembler": WorkloadSpec(
        name="assembler", init_words=800, code_words=_kw(64), data_words=_kw(64),
        mean_loop_body=18.0, mean_loop_iters=8.0, p_data=0.48,
        p_store_given_data=0.30,
    ),
    "octal_dump": WorkloadSpec(
        name="octal_dump", init_words=1000, code_words=_kw(8), data_words=_kw(96),
        mean_loop_body=8.0, mean_loop_iters=60.0, p_data=0.45,
        p_store_given_data=0.15, p_sequential=0.70, p_reuse=0.20,
        mean_run=16.0,
    ),
    "linker": WorkloadSpec(
        name="linker", init_words=1500, code_words=_kw(56), data_words=_kw(160),
        mean_loop_body=16.0, mean_loop_iters=10.0, p_data=0.50,
        p_store_given_data=0.35, p_sequential=0.45, p_reuse=0.52, mean_run=10.0,
    ),
    "c_compile": WorkloadSpec(
        name="c_compile", init_words=1000, code_words=_kw(144), data_words=_kw(96),
        mean_loop_body=20.0, mean_loop_iters=6.0, p_data=0.50,
        p_store_given_data=0.30,
    ),
    "misc_activity": WorkloadSpec(
        name="misc_activity", init_words=600, code_words=_kw(80), data_words=_kw(64),
        mean_loop_body=14.0, mean_loop_iters=4.0, p_far_jump=0.25,
        p_data=0.50, p_store_given_data=0.30, p_near=0.50, p_mid=0.35,
    ),
    # --- RISC-family programs (lower instruction density, tight loops) -
    "emacs": WorkloadSpec(
        name="emacs", p_near=0.58, p_mid=0.32, reuse_mid_mean=768.0, p_sequential=0.22, p_reuse=0.74, init_words=600, code_words=_kw(224), data_words=_kw(128),
        mean_loop_body=28.0, mean_loop_iters=12.0, p_far_jump=0.10,
        p_data=0.38, p_store_given_data=0.30,
    ),
    "switch_prog": WorkloadSpec(
        name="switch_prog", p_near=0.58, p_mid=0.32, reuse_mid_mean=768.0, p_sequential=0.22, p_reuse=0.74, init_words=800, code_words=_kw(40), data_words=_kw(48),
        mean_loop_body=24.0, mean_loop_iters=14.0, p_data=0.36,
        p_store_given_data=0.28,
    ),
    "rsim": WorkloadSpec(
        name="rsim", p_near=0.55, p_mid=0.33, reuse_mid_mean=1024.0, init_words=2500, code_words=_kw(72), data_words=_kw(512),
        mean_loop_body=44.0, mean_loop_iters=36.0, p_far_jump=0.04,
        p_data=0.42, p_store_given_data=0.25, p_sequential=0.38, p_reuse=0.58,
        mean_run=14.0, reuse_window=8192,
    ),
    "ccom": WorkloadSpec(
        name="ccom", p_near=0.58, p_mid=0.32, reuse_mid_mean=768.0, p_sequential=0.22, p_reuse=0.74, init_words=600, code_words=_kw(120), data_words=_kw(96),
        mean_loop_body=26.0, mean_loop_iters=10.0, p_data=0.40,
        p_store_given_data=0.30,
    ),
    "troff": WorkloadSpec(
        name="troff", p_near=0.58, p_mid=0.32, reuse_mid_mean=768.0, p_sequential=0.22, p_reuse=0.74, init_words=1000, code_words=_kw(96), data_words=_kw(80),
        mean_loop_body=22.0, mean_loop_iters=12.0, p_data=0.40,
        p_store_given_data=0.28,
    ),
    "trace_analyzer": WorkloadSpec(
        name="trace_analyzer", p_near=0.55, p_mid=0.33, reuse_mid_mean=1024.0, init_words=1200, code_words=_kw(48), data_words=_kw(256),
        mean_loop_body=30.0, mean_loop_iters=24.0, p_data=0.42,
        p_store_given_data=0.20, p_sequential=0.55, p_reuse=0.42, mean_run=18.0,
    ),
    "egrep": WorkloadSpec(
        name="egrep", init_words=0, code_words=_kw(16), data_words=_kw(400),
        mean_loop_body=14.0, mean_loop_iters=60.0, p_data=0.40,
        p_store_given_data=0.04, p_sequential=0.55, p_reuse=0.40,
        p_near=0.70, p_mid=0.25, mean_run=12.0, zero_words=_kw(8),
    ),
    "grep": WorkloadSpec(
        name="grep", init_words=0, code_words=_kw(12), data_words=_kw(320),
        mean_loop_body=12.0, mean_loop_iters=70.0, p_data=0.40,
        p_store_given_data=0.04, p_sequential=0.55, p_reuse=0.40,
        p_near=0.70, p_mid=0.25, mean_run=12.0, zero_words=_kw(6),
    ),
}


def make_program(
    preset: str,
    pid: int,
    seed: int,
    scale: float = 1.0,
    layout: Optional[SegmentLayout] = None,
) -> Program:
    """Instantiate a named preset as a runnable :class:`Program`.

    ``scale`` shrinks (or grows) the program's code and data footprints,
    which is how the fast test suite keeps trace generation cheap while
    preserving each program's qualitative behaviour.  ``layout`` places
    the process's segments in the virtual address space; by default each
    process gets modestly staggered segment bases, the way real programs
    link at similar-but-not-identical addresses and grow data and stack
    regions of different sizes.  The stagger matters in a *virtual*
    cache: with fully shared layouts every process collides on the same
    index range regardless of capacity, which is not how multiprogrammed
    address spaces behave.
    """
    if preset not in PRESETS:
        raise ConfigurationError(
            f"unknown workload preset {preset!r}; available: {sorted(PRESETS)}"
        )
    spec = PRESETS[preset]
    if scale != 1.0:
        spec = spec.scaled(scale)
    if layout is None:
        layout = default_layout(pid)
    return Program(spec, pid=pid, seed=seed, layout=layout)


def default_layout(pid: int) -> SegmentLayout:
    """Staggered segment layout for process ``pid``.

    Offsets are Fibonacci-hashed from the PID so that no pair of
    processes aliases at every power-of-two cache size: a fixed stride
    would make conflicts vanish (or explode) at the particular sizes the
    stride divides, distorting the miss-versus-size curves.
    """
    from .synthetic import DATA_BASE, STACK_BASE, TEXT_BASE

    text_off = (pid * 2654435761) % (16 * 1024)       # within 64 KB
    data_off = (pid * 2654435761) % (3 * 1024 * 1024)  # within 12 MB
    stack_off = (pid * 0x9E3779B1 ^ 0x5A5A5A5) % (3 * 1024 * 1024)
    return SegmentLayout(
        text=TEXT_BASE + text_off,
        data=DATA_BASE + data_off,
        stack=STACK_BASE + stack_off,
    )
