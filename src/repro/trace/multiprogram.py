"""Multiprogrammed interleaving and warm-start prefix construction.

The paper's two trace families motivate the two tools here:

* The VAX/ATUM traces "include operating system references and exhibit
  real multiprogramming behaviour"; :func:`interleave` reproduces that by
  slicing per-process reference streams into scheduling quanta whose
  lengths follow a geometric distribution (memoryless context-switch
  intervals) and concatenating them in round-robin or random order.

* The R2000 traces prepend "all the unique references touched by the
  programs up to the time at which tracing was begun ... in the order of
  their most recent use", which makes warm-start results valid even for
  very large caches; :func:`warm_prefix` reproduces that construction.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .record import Trace
from .workloads import Program


def _draw_quantum(rng: random.Random, mean_interval: float) -> int:
    """Draw a context-switch interval (geometric, mean ``mean_interval``)."""
    if mean_interval <= 1:
        return 1
    p = 1.0 / mean_interval
    n = 1
    while rng.random() > p:
        n += 1
    return n


def interleave(
    programs: Sequence[Program],
    length: int,
    mean_switch_interval: float = 10_000.0,
    scheduler: str = "round_robin",
    seed: int = 0,
    name: str = "multiprogram",
    warm_boundary: int = 0,
) -> Trace:
    """Interleave per-process streams into one multiprogrammed trace.

    Parameters
    ----------
    programs:
        Stateful :class:`Program` instances; each keeps its own PC and
        data-model context across scheduling quanta.
    length:
        Total number of references to emit (the trace may exceed this by
        at most one couplet, then is trimmed to exactly ``length``).
    mean_switch_interval:
        Mean number of references between context switches.  The paper
        randomly interleaved its uniprocess R2000 traces "to duplicate the
        distribution of context switch intervals seen in the VAX traces".
    scheduler:
        ``"round_robin"`` or ``"random"`` (random picks any *other*
        process at each switch).
    """
    if not programs:
        raise ConfigurationError("need at least one program to interleave")
    if length <= 0:
        raise ConfigurationError(f"trace length must be positive, got {length}")
    if scheduler not in ("round_robin", "random"):
        raise ConfigurationError(f"unknown scheduler {scheduler!r}")
    rng = random.Random(seed)
    kinds: List[int] = []
    addrs: List[int] = []
    pids: List[int] = []
    current = 0
    while len(kinds) < length:
        program = programs[current]
        quantum = _draw_quantum(rng, mean_switch_interval)
        chunk_kinds, chunk_addrs = program.generate(quantum)
        kinds.extend(chunk_kinds)
        addrs.extend(chunk_addrs)
        pids.extend([program.pid] * len(chunk_kinds))
        if scheduler == "round_robin" or len(programs) == 1:
            current = (current + 1) % len(programs)
        else:
            nxt = rng.randrange(len(programs) - 1)
            current = nxt if nxt < current else nxt + 1
    return Trace(
        kinds[:length], addrs[:length], pids[:length],
        name=name, warm_boundary=warm_boundary,
    )


def warm_prefix(
    history: Trace,
    interleave_chunk: int = 64,
    seed: int = 0,
) -> Trace:
    """Build the R2000-style warm-start prefix from a history run.

    Given a throwaway *history* trace (standing in for each program's
    execution before tracing began), return a prefix trace containing each
    unique ``(pid, kind-class, address)`` exactly once, ordered least
    recently used first, so that replaying prefix + body leaves any cache
    — of any organization or size — holding approximately what it would
    have held had the programs been simulated from their beginning.

    Within the LRU ordering, references from different processes are
    interleaved in chunks so the prefix also resembles a multiprogrammed
    stream; ``interleave_chunk`` bounds the run length per process.
    """
    if len(history) == 0:
        raise ConfigurationError("history trace is empty")
    # Last-use index per (pid, addr); remember whether the *last* touch
    # was a store so dirty state is warmed too.
    last_use: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for index, (kind, addr, pid) in enumerate(
        zip(history.kinds.tolist(), history.addrs.tolist(), history.pids.tolist())
    ):
        last_use[(pid, addr)] = (index, kind)
    ordered = sorted(last_use.items(), key=lambda item: item[1][0])
    # Partition per process, preserving LRU order inside each process.
    per_pid: Dict[int, List[Tuple[int, int]]] = {}
    for (pid, addr), (_, kind) in ordered:
        per_pid.setdefault(pid, []).append((kind, addr))
    rng = random.Random(seed)
    kinds: List[int] = []
    addrs: List[int] = []
    pids: List[int] = []
    cursors = {pid: 0 for pid in per_pid}
    active = sorted(per_pid)
    while active:
        pid = active[rng.randrange(len(active))] if len(active) > 1 else active[0]
        run = per_pid[pid]
        start = cursors[pid]
        stop = min(start + interleave_chunk, len(run))
        for kind, addr in run[start:stop]:
            kinds.append(kind)
            addrs.append(addr)
            pids.append(pid)
        cursors[pid] = stop
        if stop >= len(run):
            active.remove(pid)
    return Trace(kinds, addrs, pids, name=f"{history.name}-prefix")


def with_warm_prefix(
    body: Trace,
    history: Trace,
    name: Optional[str] = None,
) -> Trace:
    """Prepend an R2000-style warm prefix to ``body``.

    The warm boundary of the result is the prefix length: statistics are
    gathered over the body only, while the prefix initializes cache
    contents for caches of any size — the property the paper relies on to
    trust its large-cache data points.
    """
    prefix = warm_prefix(history)
    combined = Trace(
        np.concatenate([prefix.kinds, body.kinds]),
        np.concatenate([prefix.addrs, body.addrs]),
        np.concatenate([prefix.pids, body.pids]),
        name=name or body.name,
        warm_boundary=len(prefix),
    )
    return combined
