"""CPU substrate: instruction/data couplet issue model."""

from .processor import NO_REF, CoupletStream, pair_couplets, sequentialize

__all__ = ["NO_REF", "CoupletStream", "pair_couplets", "sequentialize"]
