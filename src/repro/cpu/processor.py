"""CPU reference-issue model: instruction/data couplets.

The paper's CPU (§2) "is a pipelined machine capable of issuing
simultaneous instruction and data references.  If there are separate
instruction and data caches then, instruction and data references in the
trace [are] paired up without reordering any of the references.  These
couplets are issued at the same time and both must complete before the
CPU can proceed to the next reference or reference pair."

:func:`pair_couplets` performs exactly that pairing: an instruction
fetch immediately followed by a data reference forms one couplet; either
kind alone forms a degenerate couplet.  The result is a set of parallel
arrays the simulators iterate once per couplet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..trace.record import RefKind, Trace

#: Sentinel meaning "this half of the couplet is absent".
NO_REF = -1


@dataclass
class CoupletStream:
    """Parallel arrays describing the paired reference stream.

    ``i_addr[k]``/``i_pid[k]`` give couplet *k*'s instruction fetch
    (``NO_REF`` when absent); ``d_kind``/``d_addr``/``d_pid`` its data
    reference, with ``d_kind`` one of ``RefKind.LOAD``/``STORE`` values or
    ``NO_REF``.  ``warm_couplet`` is the first couplet whose references
    lie at or beyond the trace's warm boundary.
    """

    i_addr: List[int]
    i_pid: List[int]
    d_kind: List[int]
    d_addr: List[int]
    d_pid: List[int]
    warm_couplet: int
    n_refs: int

    def __len__(self) -> int:
        return len(self.i_addr)

    @property
    def n_warm_refs(self) -> int:
        """References at or beyond the warm boundary (the measured part)."""
        warm_refs = 0
        for k in range(self.warm_couplet, len(self.i_addr)):
            if self.i_addr[k] != NO_REF:
                warm_refs += 1
            if self.d_kind[k] != NO_REF:
                warm_refs += 1
        return warm_refs


def pair_couplets(trace: Trace) -> CoupletStream:
    """Pair a trace into couplets without reordering references."""
    kinds, addrs, pids = trace.as_lists()
    n = len(kinds)
    ifetch = int(RefKind.IFETCH)
    i_addr: List[int] = []
    i_pid: List[int] = []
    d_kind: List[int] = []
    d_addr: List[int] = []
    d_pid: List[int] = []
    warm_couplet = -1
    warm = trace.warm_boundary
    pos = 0
    while pos < n:
        couplet_start = pos
        if kinds[pos] == ifetch:
            ia, ip = addrs[pos], pids[pos]
            pos += 1
            if pos < n and kinds[pos] != ifetch:
                dk, da, dp = kinds[pos], addrs[pos], pids[pos]
                pos += 1
            else:
                dk = da = dp = NO_REF
        else:
            ia = ip = NO_REF
            dk, da, dp = kinds[pos], addrs[pos], pids[pos]
            pos += 1
        if warm_couplet < 0 and couplet_start >= warm:
            warm_couplet = len(i_addr)
        i_addr.append(ia)
        i_pid.append(ip)
        d_kind.append(dk)
        d_addr.append(da)
        d_pid.append(dp)
    if warm_couplet < 0:
        # The warm boundary falls inside (or at the end of) the last
        # couplet: nothing is measured, which callers must guard against.
        warm_couplet = len(i_addr)
    if warm == 0:
        warm_couplet = 0
    return CoupletStream(
        i_addr=i_addr,
        i_pid=i_pid,
        d_kind=d_kind,
        d_addr=d_addr,
        d_pid=d_pid,
        warm_couplet=warm_couplet,
        n_refs=n,
    )


def sequentialize(trace: Trace) -> CoupletStream:
    """Build a degenerate stream with one reference per couplet.

    Used for unified (joint I/D) caches, where the CPU cannot issue the
    pair simultaneously and references are served one at a time.
    """
    kinds, addrs, pids = trace.as_lists()
    ifetch = int(RefKind.IFETCH)
    n = len(kinds)
    i_addr = [NO_REF] * n
    i_pid = [NO_REF] * n
    d_kind = [NO_REF] * n
    d_addr = [NO_REF] * n
    d_pid = [NO_REF] * n
    for pos in range(n):
        if kinds[pos] == ifetch:
            i_addr[pos] = addrs[pos]
            i_pid[pos] = pids[pos]
        else:
            d_kind[pos] = kinds[pos]
            d_addr[pos] = addrs[pos]
            d_pid[pos] = pids[pos]
    warm_couplet = min(trace.warm_boundary, n)
    return CoupletStream(
        i_addr=i_addr,
        i_pid=i_pid,
        d_kind=d_kind,
        d_addr=d_addr,
        d_pid=d_pid,
        warm_couplet=warm_couplet,
        n_refs=n,
    )
