"""Virtual-to-physical address translation.

The paper's simulator lets translation be "placed anywhere in the
hierarchy" (§2); its experiments use virtual caches (PID in the tag),
but §4's associativity discussion hinges on the *physical* alternative:
if the cache is physically addressed and accessed in parallel with
translation, only the page-offset bits are trustworthy for indexing, so
cache size per way is capped at the page size — the reason the IBM 3033
carries a 16-way 64 KB cache.

:class:`PageMapper` provides a deterministic first-touch allocator from
``(pid, virtual page)`` to physical frames: pages are assigned frames in
touch order with a hashed scatter, the way a real free-list allocator
decorrelates physical placement from virtual adjacency.  Everything is
reproducible given the seed.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..errors import ConfigurationError
from ..units import is_power_of_two, log2_exact


class PageMapper:
    """First-touch virtual-to-physical page mapping.

    Parameters
    ----------
    page_words:
        Page size in words (default 1024 words = 4 KB).
    memory_frames:
        Number of physical frames available; mappings wrap (re-use) when
        exhausted, which models a loaded machine without implementing
        eviction.
    seed:
        Seed for the frame-scatter permutation.
    """

    def __init__(
        self,
        page_words: int = 1024,
        memory_frames: int = 1 << 14,
        seed: int = 0,
    ) -> None:
        if not is_power_of_two(page_words):
            raise ConfigurationError(
                f"page size must be a power of two words: {page_words}"
            )
        if memory_frames < 1:
            raise ConfigurationError(
                f"need at least one physical frame: {memory_frames}"
            )
        self.page_words = page_words
        self.memory_frames = memory_frames
        self._offset_bits = log2_exact(page_words)
        self._offset_mask = page_words - 1
        self._map: Dict[Tuple[int, int], int] = {}
        self._next_frame = 0
        self._rng = random.Random(seed)

    @property
    def page_offset_bits(self) -> int:
        return self._offset_bits

    @property
    def pages_mapped(self) -> int:
        return len(self._map)

    def _allocate(self) -> int:
        """Next frame, scattered: sequential allocation hashed across
        the frame pool so physical adjacency does not mirror virtual."""
        index = self._next_frame
        self._next_frame += 1
        frame = (index * 2654435761 + self._rng.randrange(7)) % \
            self.memory_frames
        return frame

    def translate(self, pid: int, vaddr_word: int) -> int:
        """Translate a virtual word address; allocates on first touch."""
        if vaddr_word < 0 or pid < 0:
            raise ConfigurationError("negative pid or address")
        vpage = vaddr_word >> self._offset_bits
        key = (pid, vpage)
        frame = self._map.get(key)
        if frame is None:
            frame = self._allocate()
            self._map[key] = frame
        return (frame << self._offset_bits) | (vaddr_word & self._offset_mask)

    def vpage(self, vaddr_word: int) -> int:
        """Virtual page number of a word address."""
        return vaddr_word >> self._offset_bits


def max_physical_cache_bytes(page_bytes: int, assoc: int) -> int:
    """§4's virtual-memory constraint on physically-indexed caches.

    When translation proceeds in parallel with the cache access, the
    index may use only page-offset bits, so each way is at most one page:
    the cache is capped at ``page size x associativity``.  "For example,
    the IBM 3033 has a 16 way set associative 64KB cache for this
    reason."
    """
    if page_bytes < 1 or assoc < 1:
        raise ConfigurationError("page size and associativity must be >= 1")
    return page_bytes * assoc


def min_assoc_for_physical_cache(cache_bytes: int, page_bytes: int) -> int:
    """Minimum set size letting a physically-indexed cache of
    ``cache_bytes`` be accessed in parallel with translation."""
    if cache_bytes < 1 or page_bytes < 1:
        raise ConfigurationError("sizes must be positive")
    return max(1, -(-cache_bytes // page_bytes))
