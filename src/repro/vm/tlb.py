"""Translation lookaside buffer.

A small set-associative cache of page translations, used by the engine's
physical-cache mode: every CPU reference consults the TLB before (or in
parallel with) the cache; a miss pays a page-table walk — one memory
read serialized through the same main-memory port as cache misses, so
TLB pressure and miss traffic contend realistically.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError
from ..units import is_power_of_two


class TLB:
    """Set-associative TLB over ``(pid, virtual page)`` with LRU.

    Parameters
    ----------
    entries:
        Total number of translations held.
    assoc:
        Set size; the default makes the TLB fully associative, the
        common choice for the small TLBs of the paper's era.
    """

    def __init__(self, entries: int = 64, assoc: int = 0) -> None:
        if entries < 1:
            raise ConfigurationError(f"TLB needs at least one entry: {entries}")
        assoc = assoc or entries
        if entries % assoc:
            raise ConfigurationError(
                f"entries ({entries}) must be a multiple of assoc ({assoc})"
            )
        n_sets = entries // assoc
        if not is_power_of_two(n_sets):
            raise ConfigurationError(
                f"TLB set count must be a power of two, got {n_sets}"
            )
        self.entries = entries
        self.assoc = assoc
        self.n_sets = n_sets
        self._sets: List[List[int]] = [[] for _ in range(n_sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, pid: int, vpage: int) -> bool:
        """Look up a translation; fill on miss (LRU victim).  Returns
        True on a hit."""
        key = (pid << 44) | vpage
        index = vpage & (self.n_sets - 1)
        entries = self._sets[index]
        self.accesses += 1
        if key in entries:
            entries.remove(key)
            entries.append(key)
            return True
        self.misses += 1
        if len(entries) >= self.assoc:
            entries.pop(0)
        entries.append(key)
        return False

    def flush(self) -> None:
        """Invalidate every translation (context-switch behaviour for
        TLBs without PID tags is modeled by the caller choosing to call
        this; ours are PID-tagged so it is rarely needed)."""
        for entries in self._sets:
            entries.clear()

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
