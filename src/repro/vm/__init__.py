"""Virtual-memory substrate: page mapping, TLB, and the §4 constraint
on physically-indexed caches."""

from .paging import (
    PageMapper,
    max_physical_cache_bytes,
    min_assoc_for_physical_cache,
)
from .tlb import TLB

__all__ = [
    "PageMapper",
    "max_physical_cache_bytes",
    "min_assoc_for_physical_cache",
    "TLB",
]
