"""Unit helpers shared across the repro library.

The paper mixes three unit systems and so do we:

* **storage** is measured in bytes, with caches quoted in kilobytes and
  blocks quoted in 32-bit words (the paper's footnote 3: "A word is
  defined to be 32 bits");
* **time** is measured in nanoseconds for physical quantities (DRAM
  latency, cycle time) and in *machine cycles* once quantized onto the
  synchronous CPU/cache clock;
* **addresses** are word addresses throughout the simulator, because the
  preprocessed traces in the paper contain only word references.

Keeping the conversions here, in one well-tested place, prevents the
classic byte/word and ns/cycle mix-ups.
"""

from __future__ import annotations

from .errors import ConfigurationError

#: Number of bytes in one machine word (the paper uses 32-bit words).
BYTES_PER_WORD = 4

#: One kilobyte / megabyte of storage, in bytes.
KB = 1024
MB = 1024 * KB


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer division rounding up; both arguments must be positive."""
    if numerator < 0 or denominator <= 0:
        raise ConfigurationError(
            f"ceil_div requires numerator >= 0 and denominator > 0, "
            f"got {numerator}/{denominator}"
        )
    return -(-numerator // denominator)


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive integral power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two, else raise."""
    if not is_power_of_two(value):
        raise ConfigurationError(f"{value} is not a power of two")
    return value.bit_length() - 1


def words_to_bytes(words: int) -> int:
    """Convert a word count to bytes."""
    return words * BYTES_PER_WORD


def bytes_to_words(nbytes: int) -> int:
    """Convert a byte count to words; must be word aligned."""
    if nbytes % BYTES_PER_WORD:
        raise ConfigurationError(f"{nbytes} bytes is not a whole number of words")
    return nbytes // BYTES_PER_WORD


def quantize_ns(duration_ns: float, cycle_ns: float) -> int:
    """Quantize an asynchronous duration onto a synchronous clock.

    This is the operation at the heart of the paper's Table 2: a memory
    operation that physically takes ``duration_ns`` occupies
    ``ceil(duration_ns / cycle_ns)`` whole machine cycles, because the
    synchronous cache cannot observe completion mid-cycle.  A duration of
    zero costs zero cycles.
    """
    if cycle_ns <= 0:
        raise ConfigurationError(f"cycle time must be positive, got {cycle_ns}")
    if duration_ns < 0:
        raise ConfigurationError(f"duration must be >= 0, got {duration_ns}")
    if duration_ns == 0:
        return 0
    # Guard against float fuzz: 180/20 must be exactly 9 cycles, not 10.
    cycles = duration_ns / cycle_ns
    rounded = round(cycles)
    if abs(cycles - rounded) < 1e-9:
        return int(rounded)
    return int(-(-cycles // 1))


def format_size(nbytes: int) -> str:
    """Render a byte count the way the paper does: ``4KB``, ``2MB``."""
    if nbytes >= MB and nbytes % MB == 0:
        return f"{nbytes // MB}MB"
    if nbytes >= KB and nbytes % KB == 0:
        return f"{nbytes // KB}KB"
    return f"{nbytes}B"
