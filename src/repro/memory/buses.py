"""Named memory/backplane presets.

§2 situates the base memory against real 1988 backplanes: "The backplane
has more than double the transfer rate of VME or MULTIBUS II, and memory
latency is roughly a half that of commercially available boards for
these busses.  The values used are more representative of a single
master private memory bus."  These presets make those comparisons
runnable: pick a bus by name and sweep the paper's experiments over it.

Numbers are word-per-cycle rates at the paper's 40 ns base clock and
latencies chosen to sit where §2 places each technology; they are
engineering-representative, not datasheet transcriptions.
"""

from __future__ import annotations

from typing import Dict

from ..core.timing import MemoryTiming
from ..errors import ConfigurationError

#: The paper's base system: single-master private memory bus.
PRIVATE_BUS = MemoryTiming(
    latency_ns=180.0, transfer_rate=1.0, write_op_ns=100.0,
    recovery_ns=120.0,
)

#: A VME-class backplane: less than half the private bus's transfer
#: rate, commercial-board latency about twice the paper's.
VME = MemoryTiming(
    latency_ns=360.0, transfer_rate=0.4, write_op_ns=200.0,
    recovery_ns=200.0,
)

#: MULTIBUS II class: similar bandwidth ceiling to VME with slightly
#: different latency structure.
MULTIBUS_II = MemoryTiming(
    latency_ns=340.0, transfer_rate=0.45, write_op_ns=180.0,
    recovery_ns=180.0,
)

#: An aggressive wide bus (the §5 sweep's 4 W/cycle extreme): fast
#: DRAMs, no ECC, quadruple-word transfers.
WIDE_PRIVATE_BUS = MemoryTiming(
    latency_ns=100.0, transfer_rate=4.0, write_op_ns=100.0,
    recovery_ns=100.0,
)

#: A conservative board on a slow generic backplane (the §5 sweep's
#: 420 ns / quarter-word extreme).
GENERIC_BACKPLANE = MemoryTiming(
    latency_ns=420.0, transfer_rate=0.25, write_op_ns=420.0,
    recovery_ns=420.0,
)

BUSES: Dict[str, MemoryTiming] = {
    "private": PRIVATE_BUS,
    "vme": VME,
    "multibus2": MULTIBUS_II,
    "wide": WIDE_PRIVATE_BUS,
    "generic": GENERIC_BACKPLANE,
}


def bus_by_name(name: str) -> MemoryTiming:
    """Look up a bus preset; raises with the available names."""
    try:
        return BUSES[name.lower()]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown bus {name!r}; available: {sorted(BUSES)}"
        ) from exc


def scaled_memory(memory: MemoryTiming, factor: float) -> MemoryTiming:
    """Scale every physical time by ``factor`` (transfer rate is per
    cycle and does not scale).

    §6's technology-scaling thought experiment: "If all the temporal
    parameters are divided by a common factor, the shape and position of
    the curves remain the same while the slopes, expressed in
    nanoseconds per doubling, scale down."
    """
    if factor <= 0:
        raise ConfigurationError(f"scale factor must be positive: {factor}")
    return MemoryTiming(
        latency_ns=memory.latency_ns * factor,
        transfer_rate=memory.transfer_rate,
        write_op_ns=memory.write_op_ns * factor,
        recovery_ns=memory.recovery_ns * factor,
        address_cycles=memory.address_cycles,
    )
