"""Memory substrate: the timed main-memory port."""

from .buses import (
    BUSES,
    GENERIC_BACKPLANE,
    MULTIBUS_II,
    PRIVATE_BUS,
    VME,
    WIDE_PRIVATE_BUS,
    bus_by_name,
    scaled_memory,
)
from .mainmemory import MainMemory

__all__ = [
    "BUSES",
    "GENERIC_BACKPLANE",
    "MULTIBUS_II",
    "PRIVATE_BUS",
    "VME",
    "WIDE_PRIVATE_BUS",
    "bus_by_name",
    "scaled_memory",
    "MainMemory",
]
