"""Timed main-memory port.

Main memory is "modeled as a single functional unit" (§2): one operation
at a time, a latency-then-transfer read shape, writes whose internal
operation continues after the data handoff, and a recovery gap between
operations derived from the difference between DRAM access and cycle
times.  All physical times are quantized to whole machine cycles by
:class:`~repro.core.timing.MemoryTiming`.

The port keeps a single piece of temporal state, ``free_at`` — the cycle
at which it can begin its next operation — which is how the engine models
contention between misses, write-buffer drains and write backs.
"""

from __future__ import annotations

from ..core.timing import MemoryTiming
from ..errors import ConfigurationError


class MainMemory:
    """Cycle-accounted main memory.

    Parameters
    ----------
    timing:
        Physical timing (nanoseconds and words/cycle).
    cycle_ns:
        The CPU/cache cycle time the physical times are quantized to.
    """

    def __init__(self, timing: MemoryTiming, cycle_ns: float) -> None:
        if cycle_ns <= 0:
            raise ConfigurationError(f"cycle time must be positive: {cycle_ns}")
        self.timing = timing
        self.cycle_ns = cycle_ns
        # Pre-quantized constants — the inner loop must not re-divide.
        self._latency_cycles = timing.latency_cycles(cycle_ns)
        self._recovery_cycles = timing.recovery_cycles(cycle_ns)
        self._write_op_cycles = timing.write_cycles(1, cycle_ns) - \
            timing.write_handoff_cycles(1)
        self.free_at = 0
        self.reads = 0
        self.writes = 0
        self.busy_cycles = 0
        #: Cycle the current operation's work ends; the gap up to
        #: ``free_at`` is recovery.  Telemetry uses the distinction to
        #: attribute queueing delay to contention versus DRAM recovery.
        self.busy_until = 0
        #: When true, :meth:`read_block` leaves the cycle-attribution
        #: segments of its latest read in :attr:`last_read_segments`
        #: (see :mod:`repro.sim.telemetry`).  Off by default; costs one
        #: branch per read when off.
        self.record_segments = False
        self.last_read_segments = None

    def transfer_cycles(self, words: int) -> int:
        """Cycles to move ``words`` across the memory bus."""
        return self.timing.transfer_cycles(words)

    @property
    def latency_cycles(self) -> int:
        """Address + access latency in cycles (before the first word)."""
        return self._latency_cycles

    def start_read(self, words: int, now: int, overlap_cycles: int = 0) -> int:
        """Begin a block read; return the cycle the last word arrives.

        ``overlap_cycles`` models the §2 dirty-miss mechanism: "the dirty
        block is transferred into the write buffer during the memory
        latency period".  The victim moves over the one-word-wide cache
        data path while memory performs its access; if moving the victim
        takes longer than the latency, the incoming transfer is delayed —
        "since all the data paths are set to be one word wide, this is
        not always the case for long block sizes".
        """
        start = now if now > self.free_at else self.free_at
        first_word_ready = start + max(self._latency_cycles, overlap_cycles)
        done = first_word_ready + self.transfer_cycles(words)
        self.busy_until = done
        self.free_at = done + self._recovery_cycles
        self.reads += 1
        self.busy_cycles += done - start
        return done

    def start_write(self, words: int, now: int) -> int:
        """Begin a write; return the cycle the handoff completes.

        The requester is released after address + transfer; the memory
        stays busy for the internal write operation plus recovery ("at
        this point the cache can proceed with other business while the
        write actually occurs").
        """
        start = now if now > self.free_at else self.free_at
        handoff = start + self.timing.write_handoff_cycles(words)
        internal_done = handoff + self._write_op_cycles
        self.busy_until = internal_done
        self.free_at = internal_done + self._recovery_cycles
        self.writes += 1
        self.busy_cycles += internal_done - start
        return handoff

    # ------------------------------------------------------------------
    # Hierarchy-level protocol (pid/addr accepted for interface parity
    # with cache levels; memory is a flat array and ignores them)
    # ------------------------------------------------------------------
    def read_block(
        self, pid: int, word_addr: int, words: int, now: int,
        overlap_cycles: int = 0,
    ):
        """Protocol form of :meth:`start_read`.

        Returns ``(completion, first_word)``: the cycle the last word has
        arrived and the cycle the *first* word has arrived — the latter
        feeds the early-continuation / load-forward miss-handling modes.
        """
        start = now if now > self.free_at else self.free_at
        transfer = self.transfer_cycles(words)
        transfer_begins = start + max(self._latency_cycles, overlap_cycles)
        done = transfer_begins + transfer
        if self.record_segments:
            # Decompose done - now for the attribution ledger.  The
            # waited interval [now, start) overlaps the previous
            # operation's recovery window [busy_until, free_at);
            # anything earlier is genuine contention.
            wait = start - now
            recovery_wait = 0
            if wait:
                recovery_wait = start - max(now, self.busy_until)
                if recovery_wait < 0:
                    recovery_wait = 0
                elif recovery_wait > wait:
                    recovery_wait = wait
            segments = []
            if wait > recovery_wait:
                segments.append(("mem_busy", wait - recovery_wait))
            if recovery_wait:
                segments.append(("mem_recovery", recovery_wait))
            if self._latency_cycles:
                segments.append(("fetch_latency", self._latency_cycles))
            overlap_excess = transfer_begins - start - self._latency_cycles
            if overlap_excess:
                segments.append(("writeback_overlap", overlap_excess))
            segments.append(("fetch_transfer", transfer))
            self.last_read_segments = segments
        self.busy_until = done
        self.free_at = done + self._recovery_cycles
        self.reads += 1
        self.busy_cycles += done - start
        return done, transfer_begins + self.transfer_cycles(1)

    def write_block(self, pid: int, word_addr: int, words: int, now: int) -> int:
        """Protocol form of :meth:`start_write`."""
        return self.start_write(words, now)

    def reset(self) -> None:
        """Clear temporal state and counters (cache contents untouched —
        memory has none)."""
        self.free_at = 0
        self.reads = 0
        self.writes = 0
        self.busy_cycles = 0
        self.busy_until = 0
        self.last_read_segments = None
