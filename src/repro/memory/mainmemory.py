"""Timed main-memory port.

Main memory is "modeled as a single functional unit" (§2): one operation
at a time, a latency-then-transfer read shape, writes whose internal
operation continues after the data handoff, and a recovery gap between
operations derived from the difference between DRAM access and cycle
times.  All physical times are quantized to whole machine cycles by
:class:`~repro.core.timing.MemoryTiming`.

The port keeps a single piece of temporal state, ``free_at`` — the cycle
at which it can begin its next operation — which is how the engine models
contention between misses, write-buffer drains and write backs.
"""

from __future__ import annotations

from ..core.timing import MemoryTiming
from ..errors import ConfigurationError


class MainMemory:
    """Cycle-accounted main memory.

    Parameters
    ----------
    timing:
        Physical timing (nanoseconds and words/cycle).
    cycle_ns:
        The CPU/cache cycle time the physical times are quantized to.
    """

    def __init__(self, timing: MemoryTiming, cycle_ns: float) -> None:
        if cycle_ns <= 0:
            raise ConfigurationError(f"cycle time must be positive: {cycle_ns}")
        self.timing = timing
        self.cycle_ns = cycle_ns
        # Pre-quantized constants — the inner loop must not re-divide.
        self._latency_cycles = timing.latency_cycles(cycle_ns)
        self._recovery_cycles = timing.recovery_cycles(cycle_ns)
        self._write_op_cycles = timing.write_cycles(1, cycle_ns) - \
            timing.write_handoff_cycles(1)
        self.free_at = 0
        self.reads = 0
        self.writes = 0
        self.busy_cycles = 0

    def transfer_cycles(self, words: int) -> int:
        """Cycles to move ``words`` across the memory bus."""
        return self.timing.transfer_cycles(words)

    @property
    def latency_cycles(self) -> int:
        """Address + access latency in cycles (before the first word)."""
        return self._latency_cycles

    def start_read(self, words: int, now: int, overlap_cycles: int = 0) -> int:
        """Begin a block read; return the cycle the last word arrives.

        ``overlap_cycles`` models the §2 dirty-miss mechanism: "the dirty
        block is transferred into the write buffer during the memory
        latency period".  The victim moves over the one-word-wide cache
        data path while memory performs its access; if moving the victim
        takes longer than the latency, the incoming transfer is delayed —
        "since all the data paths are set to be one word wide, this is
        not always the case for long block sizes".
        """
        start = now if now > self.free_at else self.free_at
        first_word_ready = start + max(self._latency_cycles, overlap_cycles)
        done = first_word_ready + self.transfer_cycles(words)
        self.free_at = done + self._recovery_cycles
        self.reads += 1
        self.busy_cycles += done - start
        return done

    def start_write(self, words: int, now: int) -> int:
        """Begin a write; return the cycle the handoff completes.

        The requester is released after address + transfer; the memory
        stays busy for the internal write operation plus recovery ("at
        this point the cache can proceed with other business while the
        write actually occurs").
        """
        start = now if now > self.free_at else self.free_at
        handoff = start + self.timing.write_handoff_cycles(words)
        internal_done = handoff + self._write_op_cycles
        self.free_at = internal_done + self._recovery_cycles
        self.writes += 1
        self.busy_cycles += internal_done - start
        return handoff

    # ------------------------------------------------------------------
    # Hierarchy-level protocol (pid/addr accepted for interface parity
    # with cache levels; memory is a flat array and ignores them)
    # ------------------------------------------------------------------
    def read_block(
        self, pid: int, word_addr: int, words: int, now: int,
        overlap_cycles: int = 0,
    ):
        """Protocol form of :meth:`start_read`.

        Returns ``(completion, first_word)``: the cycle the last word has
        arrived and the cycle the *first* word has arrived — the latter
        feeds the early-continuation / load-forward miss-handling modes.
        """
        start = now if now > self.free_at else self.free_at
        transfer_begins = start + max(self._latency_cycles, overlap_cycles)
        done = transfer_begins + self.transfer_cycles(words)
        self.free_at = done + self._recovery_cycles
        self.reads += 1
        self.busy_cycles += done - start
        return done, transfer_begins + self.transfer_cycles(1)

    def write_block(self, pid: int, word_addr: int, words: int, now: int) -> int:
        """Protocol form of :meth:`start_write`."""
        return self.start_write(words, now)

    def reset(self) -> None:
        """Clear temporal state and counters (cache contents untouched —
        memory has none)."""
        self.free_at = 0
        self.reads = 0
        self.writes = 0
        self.busy_cycles = 0
