"""Structural rules: REPRO005 (experiment registry closure), REPRO006
(validated config fields), REPRO008 (schema fingerprints), REPRO015
(dead suppression comments).

Most are project-scope checks: each one reasons about relationships
*between* files — an experiment module and the registry, a dataclass
and its ``__post_init__``, a serializer and its committed fingerprint —
that no single-file pass can see.  REPRO015 is the odd one out: a
file-scope hygiene check over the suppression mechanism itself.
"""

from __future__ import annotations

import ast
import hashlib
import io
import tokenize
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .framework import (
    FILE_SUPPRESS_WINDOW,
    _SUPPRESS_RE,
    LintConfig,
    Rule,
    SchemaSpec,
    SourceFile,
    Violation,
    path_matches,
)
from .astutil import dict_literal_keys

#: Experiment-package modules that are infrastructure, not experiments.
_EXPERIMENT_INFRA = {"__init__", "common", "registry"}


def _module_stem(rel: str) -> str:
    return rel.rsplit("/", 1)[-1].rsplit(".py", 1)[0]


class RegistryClosureRule(Rule):
    """REPRO005 — experiments and the registry agree exactly."""

    rule_id = "REPRO005"
    title = "experiment modules and registry entries are in bijection"
    invariant = (
        "sweep completeness: `repro-sim experiment all` and the report "
        "generator resolve artifacts through the registry; an "
        "unregistered module is silently absent from every campaign"
    )
    scope = "project"

    def check_project(
        self, files: Sequence[SourceFile], config: LintConfig
    ) -> List[Violation]:
        package = config.experiments_package
        modules: Dict[str, SourceFile] = {}
        registry: Optional[SourceFile] = None
        for src in files:
            if not path_matches(src.rel, package):
                continue
            stem = _module_stem(src.rel)
            if stem == "registry":
                registry = src
            elif stem not in _EXPERIMENT_INFRA:
                modules[stem] = src
        if registry is None or registry.tree is None:
            return []  # linting a subset without the registry
        imported, iterated = self._registry_names(registry)
        # A module is registered when it is both relatively imported and
        # iterated by the EXPERIMENTS comprehension; an empty iterated
        # set (unrecognized registry shape) degrades to imports-only.
        if iterated:
            registered = set(imported) & set(iterated)
        else:
            registered = set(imported)
        found: List[Violation] = []
        for stem, src in sorted(modules.items()):
            if stem not in registered:
                found.append(Violation(
                    rule_id=self.rule_id, path=src.rel, line=1, col=0,
                    message=(
                        f"experiment module {stem!r} is not registered "
                        f"in {registry.rel}; it will be absent from "
                        f"`repro-sim experiment all` and every report"
                    ),
                ))
            elif src.tree is not None:
                found.extend(self._check_module_shape(stem, src))
        for stem in sorted(set(imported) | set(iterated)):
            if stem in _EXPERIMENT_INFRA:
                continue
            line = iterated.get(stem, imported.get(stem, 1))
            if stem not in modules:
                found.append(Violation(
                    rule_id=self.rule_id, path=registry.rel,
                    line=line, col=0,
                    message=(
                        f"registry entry {stem!r} does not resolve to "
                        f"a module in {package}/"
                    ),
                ))
            elif iterated and stem in iterated and stem not in imported:
                found.append(Violation(
                    rule_id=self.rule_id, path=registry.rel,
                    line=line, col=0,
                    message=(
                        f"registry iterates {stem!r} without importing "
                        f"it; the EXPERIMENTS table raises NameError "
                        f"at import time"
                    ),
                ))
        return found

    @staticmethod
    def _registry_names(
        registry: SourceFile,
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """(relatively imported, comprehension-iterated) name -> line."""
        assert registry.tree is not None
        imported: Dict[str, int] = {}
        iterated: Dict[str, int] = {}
        for node in ast.walk(registry.tree):
            # `from . import fig3_1, ...` — sibling-module imports only;
            # `from .common import X` pulls names, not modules.
            if isinstance(node, ast.ImportFrom) and node.level >= 1 \
                    and not node.module:
                for alias in node.names:
                    imported[alias.asname or alias.name] = node.lineno
            elif isinstance(node, ast.comprehension) and \
                    isinstance(node.iter, ast.Tuple):
                for elt in node.iter.elts:
                    if isinstance(elt, ast.Name):
                        iterated[elt.id] = elt.lineno
        return imported, iterated

    def _check_module_shape(
        self, stem: str, src: SourceFile
    ) -> List[Violation]:
        assert src.tree is not None
        has_id = has_run = False
        for node in src.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            target.id == "EXPERIMENT_ID":
                        has_id = True
            elif isinstance(node, ast.FunctionDef) and node.name == "run":
                has_run = True
        missing = [
            what for what, ok in
            (("EXPERIMENT_ID", has_id), ("run()", has_run))
            if not ok
        ]
        if not missing:
            return []
        return [Violation(
            rule_id=self.rule_id, path=src.rel, line=1, col=0,
            message=(
                f"experiment module {stem!r} lacks "
                f"{' and '.join(missing)}; the registry cannot "
                f"resolve it"
            ),
        )]


_SCALAR_TYPES = {"int", "float", "bool", "str", "bytes", "complex"}
_TYPE_WRAPPERS = {
    "Optional", "Union", "Tuple", "List", "Sequence", "Dict",
    "Mapping", "Set", "FrozenSet", "Iterable", "ClassVar",
}


def _annotation_bases(node: ast.AST) -> Set[str]:
    """Terminal type names an annotation can resolve to."""
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = (
            head.id if isinstance(head, ast.Name)
            else head.attr if isinstance(head, ast.Attribute) else ""
        )
        if head_name in _TYPE_WRAPPERS:
            inner = node.slice
            elements = (
                inner.elts if isinstance(inner, ast.Tuple) else [inner]
            )
            bases: Set[str] = set()
            for element in elements:
                bases |= _annotation_bases(element)
            return bases
        return {head_name} if head_name else set()
    if isinstance(node, ast.Constant):
        if node.value is None or node.value is Ellipsis:
            return set()
        return {"?"}  # string annotation: treat as non-scalar
    return set()


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = (
            target.id if isinstance(target, ast.Name)
            else target.attr if isinstance(target, ast.Attribute)
            else ""
        )
        if name == "dataclass":
            return True
    return False


class ConfigValidationRule(Rule):
    """REPRO006 — scalar config fields are validated in __post_init__."""

    rule_id = "REPRO006"
    title = "config dataclass fields validated in __post_init__"
    invariant = (
        "fail-fast configuration: an out-of-range parameter caught at "
        "construction costs one exception; caught mid-sweep it costs "
        "hours of wrong simulation"
    )

    def applies_to(self, rel: str, config: LintConfig) -> bool:
        return path_matches(rel, config.config_module)

    def check_file(
        self, src: SourceFile, config: LintConfig
    ) -> List[Violation]:
        tree = src.tree
        if tree is None:
            return []
        found: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                found.extend(self._check_class(node, src))
        return found

    def _check_class(
        self, cls: ast.ClassDef, src: SourceFile
    ) -> List[Violation]:
        fields: List[Tuple[str, ast.AnnAssign]] = []
        post_init: Optional[ast.FunctionDef] = None
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                bases = _annotation_bases(stmt.annotation)
                if bases and bases <= _SCALAR_TYPES:
                    fields.append((stmt.target.id, stmt))
            elif isinstance(stmt, ast.FunctionDef) and \
                    stmt.name == "__post_init__":
                post_init = stmt
        if not fields:
            return []
        validated: Set[str] = set()
        if post_init is not None:
            for node in ast.walk(post_init):
                if isinstance(node, ast.Attribute) and \
                        isinstance(node.value, ast.Name) and \
                        node.value.id == "self":
                    validated.add(node.attr)
        return [
            Violation(
                rule_id=self.rule_id, path=src.rel,
                line=stmt.lineno, col=stmt.col_offset,
                message=(
                    f"{cls.name}.{name} is a scalar config field never "
                    f"referenced in __post_init__; validate it (or "
                    f"justify with a suppression)"
                ),
            )
            for name, stmt in fields if name not in validated
        ]


def schema_fields_fingerprint(fields: Sequence[str]) -> str:
    """Stable digest of a serialized field set (order-insensitive)."""
    key = ",".join(sorted(set(fields)))
    return hashlib.sha256(key.encode()).hexdigest()[:16]


def _find_constant(tree: ast.AST, name: str) -> Tuple[Optional[int],
                                                      Optional[int]]:
    """(value, lineno) of module-level integer ``name = <int>``."""
    for node in tree.body:  # type: ignore[attr-defined]
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    if isinstance(node.value, ast.Constant) and \
                            isinstance(node.value.value, int):
                        return node.value.value, node.lineno
                    return None, node.lineno
    return None, None


def _locate_fields(
    tree: ast.AST, locator: Tuple[str, str, str]
) -> Optional[List[str]]:
    """Keys of the dict literal a :class:`SchemaSpec` locator names."""
    kind, scope_name, member = locator
    if kind == "assign":
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and \
                    node.name == scope_name:
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Assign):
                        for target in inner.targets:
                            if isinstance(target, ast.Name) and \
                                    target.id == member:
                                keys = dict_literal_keys(inner.value)
                                if keys is not None:
                                    return keys
        return None
    if kind == "return":
        for node in ast.walk(tree):
            if not (isinstance(node, ast.ClassDef) and
                    node.name == scope_name):
                continue
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef) and \
                        stmt.name == member:
                    for inner in ast.walk(stmt):
                        if isinstance(inner, ast.Return) and \
                                inner.value is not None:
                            keys = dict_literal_keys(inner.value)
                            if keys is not None:
                                return keys
        return None
    return None


def extract_schemas(
    files: Sequence[SourceFile], config: LintConfig
) -> Dict[str, Dict]:
    """Current (version, field set) of every schema the config names.

    Entries whose module is absent from ``files`` are omitted; an
    entry whose module is present but unparseable carries an ``error``
    key instead of fields.
    """
    out: Dict[str, Dict] = {}
    for spec in config.schemas:
        src = next(
            (f for f in files if path_matches(f.rel, spec.module)), None
        )
        if src is None or src.tree is None:
            continue
        version, line = _find_constant(src.tree, spec.constant)
        fields = _locate_fields(src.tree, spec.locator)
        entry: Dict = {"module": src.rel, "line": line or 1}
        if version is None:
            entry["error"] = (
                f"could not extract integer constant {spec.constant}"
            )
        elif fields is None:
            entry["error"] = (
                f"could not locate the serialized dict literal via "
                f"{spec.locator!r}"
            )
        else:
            entry["version"] = version
            entry["fields"] = sorted(set(fields))
            entry["fingerprint"] = schema_fields_fingerprint(fields)
        out[spec.name] = entry
    return out


class SchemaFingerprintRule(Rule):
    """REPRO008 — serialized field changes must bump the schema."""

    rule_id = "REPRO008"
    title = "schema constants bump when serialized fields change"
    invariant = (
        "forward-compatible persistence: readers tolerate newer "
        "payloads *by schema number*; changing the field set without "
        "bumping it makes old archives silently ambiguous"
    )
    scope = "project"

    def check_project(
        self, files: Sequence[SourceFile], config: LintConfig
    ) -> List[Violation]:
        current = extract_schemas(files, config)
        if not current:
            return []
        committed = (config.fingerprints_data or {}).get("schemas", {})
        found: List[Violation] = []
        for name, entry in sorted(current.items()):
            if "error" in entry:
                found.append(Violation(
                    rule_id=self.rule_id, path=entry["module"],
                    line=entry["line"], col=0,
                    message=(
                        f"schema {name!r}: {entry['error']}; the "
                        f"fingerprint check cannot run — update the "
                        f"[tool.reprolint] schema locator"
                    ),
                ))
                continue
            baseline = committed.get(name)
            if not isinstance(baseline, dict):
                found.append(Violation(
                    rule_id=self.rule_id, path=entry["module"],
                    line=entry["line"], col=0,
                    message=(
                        f"schema {name!r} has no committed "
                        f"fingerprint; run `repro-sim lint "
                        f"--update-fingerprints` and commit the result"
                    ),
                ))
                continue
            same_fields = (
                baseline.get("fingerprint") == entry["fingerprint"]
            )
            same_version = baseline.get("version") == entry["version"]
            if same_fields and same_version:
                continue
            if same_version:  # fields drifted, constant did not
                added = sorted(
                    set(entry["fields"]) - set(baseline.get("fields", []))
                )
                removed = sorted(
                    set(baseline.get("fields", [])) - set(entry["fields"])
                )
                delta = "; ".join(
                    part for part in (
                        f"added {added}" if added else "",
                        f"removed {removed}" if removed else "",
                    ) if part
                )
                found.append(Violation(
                    rule_id=self.rule_id, path=entry["module"],
                    line=entry["line"], col=0,
                    message=(
                        f"schema {name!r} serialized field set changed "
                        f"({delta}) but {config_constant(config, name)} "
                        f"is still {entry['version']}; bump it and "
                        f"refresh the fingerprint file"
                    ),
                ))
            else:
                found.append(Violation(
                    rule_id=self.rule_id, path=entry["module"],
                    line=entry["line"], col=0,
                    message=(
                        f"schema {name!r} changed (version "
                        f"{baseline.get('version')} -> "
                        f"{entry['version']}); refresh the committed "
                        f"fingerprints with `repro-sim lint "
                        f"--update-fingerprints` so the ratchet "
                        f"tracks the new shape"
                    ),
                ))
        return found


def config_constant(config: LintConfig, schema_name: str) -> str:
    for spec in config.schemas:
        if spec.name == schema_name:
            return spec.constant
    return "the schema constant"


def write_fingerprints(
    files: Sequence[SourceFile], config: LintConfig, path
) -> Dict[str, Dict]:
    """Regenerate the committed fingerprint file from current sources.

    Used by ``repro-sim lint --update-fingerprints`` after a deliberate,
    version-bumped schema change.  Extraction errors raise so a broken
    locator cannot silently write an empty ratchet.
    """
    import json

    current = extract_schemas(files, config)
    schemas: Dict[str, Dict] = {}
    for name, entry in sorted(current.items()):
        if "error" in entry:
            raise ValueError(f"schema {name!r}: {entry['error']}")
        schemas[name] = {
            "version": entry["version"],
            "fields": entry["fields"],
            "fingerprint": entry["fingerprint"],
        }
    payload = {
        "comment": (
            "reprolint REPRO008 ratchet: the committed (version, "
            "serialized field set) of each schema-versioned payload. "
            "Regenerate with `repro-sim lint --update-fingerprints` "
            "after a deliberate, version-bumped schema change."
        ),
        "schemas": schemas,
    }
    Path(path).write_text(
        json.dumps(payload, indent=1) + "\n", encoding="utf-8"
    )
    return schemas


def _suppression_comments(
    src: SourceFile,
) -> List[Tuple[int, str, List[str]]]:
    """``(line, kind, rule_ids)`` for every *real* suppression comment.

    Tokenize-based on purpose: the framework's line regex also matches
    suppression-shaped text inside string literals (fixture sources in
    ``selftest.py``, docs in docstrings) — those are not suppressions
    and must not be audited as dead ones.
    """
    out: List[Tuple[int, str, List[str]]] = []
    try:
        tokens = tokenize.generate_tokens(
            io.StringIO(src.text).readline
        )
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            kind, raw = match.groups()
            ids = [r.strip() for r in raw.split(",") if r.strip()]
            out.append((tok.start[0], kind, ids))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    return out


class DeadSuppressionRule(Rule):
    """REPRO015 — every suppression comment still suppresses something.

    A ``# reprolint: disable=...`` that no longer matches any raw
    finding is not harmless: it pre-authorizes a *future* violation on
    that line, silently, and rots the audit trail the in-line
    suppression design exists for.  The check replays the other
    enabled file-scope rules on the file (only when suppression
    comments are present) and flags each suppressed rule id that has
    no finding left to suppress, plus unknown rule ids and
    ``disable-file`` comments below the honoured window.  Project-scope
    ids are skipped — their findings need the whole file set, which a
    file-scope audit does not see.
    """

    rule_id = "REPRO015"
    title = "no dead suppression comments"
    invariant = (
        "suppression auditability: `git log -S reprolint` only shows "
        "who accepted which exception if every disable comment maps "
        "to a live, intentional finding"
    )

    def check_file(
        self, src: SourceFile, config: LintConfig
    ) -> List[Violation]:
        comments = _suppression_comments(src)
        if not comments or src.tree is None:
            return []
        from .framework import all_rules

        registered = all_rules(None)
        known = {r.rule_id for r in registered}
        project_ids = {
            r.rule_id for r in registered if r.scope == "project"
        }
        peers = [
            r for r in all_rules(config)
            if r.scope == "file" and r.rule_id != self.rule_id
            and r.applies_to(src.rel, config)
        ]
        raw_lines: Dict[str, Set[int]] = {}
        for rule in peers:
            for violation in rule.check_file(src, config):
                raw_lines.setdefault(
                    violation.rule_id, set()
                ).add(violation.line)

        found: List[Violation] = []
        for line, kind, ids in comments:
            for rid in ids:
                if rid == "all":
                    continue  # blanket: auditing it needs every rule
                if rid not in known:
                    found.append(Violation(
                        rule_id=self.rule_id, path=src.rel,
                        line=line, col=0,
                        message=(
                            f"suppression names unknown rule {rid!r}; "
                            f"it disables nothing"
                        ),
                    ))
                    continue
                if rid in project_ids:
                    continue
                if kind == "disable":
                    dead = line not in raw_lines.get(rid, ())
                    where = f"at line {line}"
                else:
                    if line > FILE_SUPPRESS_WINDOW:
                        found.append(Violation(
                            rule_id=self.rule_id, path=src.rel,
                            line=line, col=0,
                            message=(
                                f"disable-file={rid} below line "
                                f"{FILE_SUPPRESS_WINDOW} is outside "
                                f"the honoured window and has no "
                                f"effect"
                            ),
                        ))
                        continue
                    dead = not raw_lines.get(rid)
                    where = "anywhere in the file"
                if dead:
                    found.append(Violation(
                        rule_id=self.rule_id, path=src.rel,
                        line=line, col=0,
                        message=(
                            f"dead suppression: no {rid} finding "
                            f"{where} is left to suppress — remove "
                            f"the comment so it cannot silently "
                            f"pre-authorize a future violation"
                        ),
                    ))
        return found


STRUCTURE_RULES = (
    RegistryClosureRule(), ConfigValidationRule(), SchemaFingerprintRule(),
    DeadSuppressionRule(),
)
