"""Shared AST helpers for the reprolint rules.

Everything here is pure stdlib-:mod:`ast` analysis: canonicalizing
call targets through a module's import aliases, locating enclosing
function definitions, and classifying expressions that can introduce
floats into integer cycle arithmetic.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


# ----------------------------------------------------------------------
# Import-aware name resolution
# ----------------------------------------------------------------------
def module_dotted(rel: str) -> str:
    """Dotted module name of a repo-relative path.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    ``src/repro/sim/__init__.py`` -> ``repro.sim``.  A leading ``src/``
    (the layout's import root) is stripped; other ancestors are kept,
    which is correct for anything importable from the repo root.
    """
    parts = rel.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def module_package(rel: str) -> str:
    """Dotted name of the package *containing* ``rel``.

    For a plain module this is its parent package; for an
    ``__init__.py`` it is the package itself (matching how a
    one-level-relative import resolves from either).
    """
    dotted = module_dotted(rel)
    if rel.replace("\\", "/").endswith("/__init__.py"):
        return dotted
    return dotted.rsplit(".", 1)[0] if "." in dotted else ""


def _resolve_relative(package: str, level: int, module: str) -> str:
    """Absolute dotted target of ``from <dots><module> import ...``.

    ``level`` is the number of leading dots; ``package`` is the dotted
    package containing the importing module.  Over-deep relatives
    (more dots than packages) degrade to the bare module name, the
    pre-existing suffix-matching behaviour.
    """
    parts = package.split(".") if package else []
    if level - 1 > len(parts):
        return module
    base = parts[: len(parts) - (level - 1)]
    if module:
        base.append(module)
    return ".".join(base)


def import_aliases(
    tree: ast.AST, package: Optional[str] = None
) -> Dict[str, str]:
    """Map local names to the dotted path they were imported as.

    ``import time as t`` yields ``{"t": "time"}``;
    ``from time import perf_counter as pc`` yields
    ``{"pc": "time.perf_counter"}``.

    With ``package`` (the importing module's dotted package, e.g.
    ``"repro.sim"``), relative imports resolve to absolute dotted
    paths: ``from . import engine`` yields
    ``{"engine": "repro.sim.engine"}`` and ``from ..cache.cache import
    Cache`` yields ``{"Cache": "repro.cache.cache.Cache"}``.  Without
    it they keep their bare module name (callers match on suffixes).

    A module-level assignment, function or class definition that
    rebinds an imported name *after* the import shadows it — the alias
    is dropped so ``time = FakeClock()`` stops ``time.time()`` from
    resolving to the real clock.
    """
    aliases: Dict[str, str] = {}
    import_lines: Dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                full = alias.name if alias.asname else local
                aliases[local] = full
                import_lines[local] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level and package is not None:
                module = _resolve_relative(package, node.level, module)
            for alias in node.names:
                local = alias.asname or alias.name
                full = f"{module}.{alias.name}" if module else alias.name
                aliases[local] = full
                import_lines[local] = node.lineno
    for name, line in _module_level_bindings(tree):
        if name in aliases and line > import_lines.get(name, 0):
            del aliases[name]
    return aliases


def _module_level_bindings(tree: ast.AST) -> List[Tuple[str, int]]:
    """(name, line) for every module-level non-import binding."""
    bound: List[Tuple[str, int]] = []
    body = getattr(tree, "body", [])
    for node in body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                targets = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for t in targets:
                    if isinstance(t, ast.Name):
                        bound.append((t.id, node.lineno))
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                bound.append((node.target.id, node.lineno))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            bound.append((node.name, node.lineno))
    return bound


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def canonical_call_name(
    func: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """Resolve a call's target through the module's import aliases.

    With ``from time import perf_counter``, a bare ``perf_counter()``
    resolves to ``time.perf_counter``; with ``import time as t``,
    ``t.time()`` resolves to ``time.time``.
    """
    name = dotted_name(func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    expanded = aliases.get(head)
    if expanded is None:
        return name
    return f"{expanded}.{rest}" if rest else expanded


# ----------------------------------------------------------------------
# Structure helpers
# ----------------------------------------------------------------------
def walk_functions(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Optional[ast.AST]]]:
    """Yield ``(node, enclosing_function)`` for every node.

    ``enclosing_function`` is the innermost FunctionDef/AsyncFunctionDef
    containing the node (``None`` at module/class level).
    """
    def visit(node: ast.AST, func: Optional[ast.AST]):
        yield node, func
        inner = (
            node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            else func
        )
        for child in ast.iter_child_nodes(node):
            yield from visit(child, inner)

    yield from visit(tree, None)


def dict_literal_keys(node: ast.AST) -> Optional[List[str]]:
    """Constant string keys of a dict literal (``None`` for non-dicts
    or dicts with any non-constant key, including ``**spread``)."""
    if not isinstance(node, ast.Dict):
        return None
    keys: List[str] = []
    for key in node.keys:
        if not isinstance(key, ast.Constant) or \
                not isinstance(key.value, str):
            return None
        keys.append(key.value)
    return keys


def terminal_name(target: ast.AST) -> Optional[str]:
    """The final identifier of an assignment target (``x``, ``obj.x``,
    ``x[i]`` all yield ``x``; tuples yield ``None`` — callers unpack)."""
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Subscript):
        return terminal_name(target.value)
    return None


# ----------------------------------------------------------------------
# Float-introduction analysis (REPRO002)
# ----------------------------------------------------------------------
#: Calls that always yield an int (or whose result is re-quantized),
#: terminating the float taint.
_INT_SAFE_CALLS = {
    "int", "round", "len", "sum", "max", "min", "abs", "ord",
    "math.floor", "math.ceil", "math.trunc",
}


def is_floaty(node: ast.AST, aliases: Dict[str, str]) -> bool:
    """Can evaluating ``node`` introduce a float?

    Conservative on unknowns (plain names, attribute loads and calls
    report ``False``): the rule exists to catch *textually visible*
    float creation — literals, ``float()``, true division — not to be a
    type checker.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        name = canonical_call_name(node.func, aliases)
        if name == "float":
            return True
        if name in _INT_SAFE_CALLS:
            return False
        return False  # unknown call: assume it honours its contract
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return is_floaty(node.left, aliases) or \
            is_floaty(node.right, aliases)
    if isinstance(node, ast.UnaryOp):
        return is_floaty(node.operand, aliases)
    if isinstance(node, ast.IfExp):
        return is_floaty(node.body, aliases) or \
            is_floaty(node.orelse, aliases)
    if isinstance(node, (ast.Tuple, ast.List)):
        return any(is_floaty(elt, aliases) for elt in node.elts)
    return False


#: Name segments marking a quantity that is *not* an integer cycle
#: count even though it mentions cycles (times, rates, ratios).
_CYCLE_EXEMPT_SEGMENTS = {
    "ns", "us", "ms", "s", "sec", "secs", "seconds", "time",
    "ratio", "per", "frac", "fraction", "pct", "percent",
    "rate", "hz", "khz", "mhz", "ghz",
}


def is_cycle_counter_name(name: Optional[str]) -> bool:
    """Does ``name`` denote an integer cycle count?

    Matches snake_case names with a ``cycle``/``cycles`` segment unless
    another segment marks a physical time or a ratio (``cycle_ns``,
    ``cycles_per_reference`` are floats by design).
    """
    if not name:
        return False
    segments = name.lower().split("_")
    if "cycle" not in segments and "cycles" not in segments:
        return False
    return not any(seg in _CYCLE_EXEMPT_SEGMENTS for seg in segments)
