"""reprolint: AST-based invariant checking for the simulator.

Runtime layers assume properties no test asserts globally: re-simulation
is byte-identical (the quarantine/retry machinery of
:mod:`repro.sim.resilience`), cycle arithmetic is exactly conserved
(:mod:`repro.sim.telemetry`'s ledger), campaign persistence is atomic
(:mod:`repro.sim.campaign`).  This package checks those invariants
statically over the repo's own source — stdlib :mod:`ast` only, no new
dependencies — as ``repro-sim lint`` and as an importable API:

>>> from repro.lint import lint_paths
>>> result = lint_paths(["src"])
>>> result.clean, len(result.violations)

Rule IDs, the invariants they protect, and the suppression syntax are
documented in ``docs/invariants.md``.
"""

from .framework import (  # noqa: F401
    Baseline,
    LintCache,
    LintConfig,
    LintResult,
    Rule,
    SourceFile,
    Violation,
    all_rules,
    find_repo_root,
    lint_paths,
    lint_sources,
    load_config,
)
from .projectgraph import (  # noqa: F401
    ProjectGraph,
    build_project_graph,
)
from .selftest import run_self_test  # noqa: F401

__all__ = [
    "ProjectGraph",
    "build_project_graph",
    "Baseline",
    "LintCache",
    "LintConfig",
    "LintResult",
    "Rule",
    "SourceFile",
    "Violation",
    "all_rules",
    "find_repo_root",
    "lint_paths",
    "lint_sources",
    "load_config",
    "run_self_test",
]
