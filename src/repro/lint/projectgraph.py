"""Whole-project import/call graph with bottom-up function summaries.

The per-file rules (REPRO001, REPRO003 and friends) see one module at a
time, so a helper that reads the wall clock or writes a raw file is
invisible to them the moment it moves one module away from the scoped
code that calls it.  This module is the second analysis engine: it
parses every source handed to the linter, builds

* a **module-import graph** (who imports whom, project modules only),
* an **alias-resolved call graph** (``from .campaign import save as s``
  and re-exports through ``__init__`` both resolve to the defining
  function), and
* **per-function summaries** — for each function (and each module's
  top-level code, the ``<module>`` pseudo-function), whether it can
  *transitively* reach a wall-clock/entropy source, perform a raw
  filesystem write, introduce a float into cycle math, spawn a
  thread/process, take an exclusive spool claim, or return a monotonic
  clock reading.

Summaries are computed bottom-up over the call graph with a fixed-point
loop, so mutual recursion converges (properties only ever turn on —
the lattice is a product of booleans).  Each summary stores a *next
hop* rather than a flat flag: either the offending call site itself or
the call edge it was inherited through, so ``lint --why`` can print the
full chain from an entry point down to ``time.time()``.

Results are cached on disk (``.reprolint-graph-cache.json``), keyed
per-module on a fingerprint of the module's **transitive import
closure** contents: editing ``campaign.py`` invalidates the summaries
of every module that can reach it through imports, and nothing else.

Known over-approximations (deliberate — this is a linter, not a
verifier): code inside nested functions and lambdas is attributed to
the enclosing top-level function whether or not the closure is ever
called, and calls through variables or data structures do not create
edges (the per-file rules still catch direct use at the definition
site).
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .astutil import (
    dotted_name,
    import_aliases,
    is_cycle_counter_name,
    is_floaty,
    module_dotted,
    module_package,
    terminal_name,
)
from .framework import LintConfig, SourceFile
from .rules_determinism import _BANNED_CALLS, _BANNED_PREFIXES
from .rules_robustness import _open_write_mode

#: Bumped whenever summary semantics change; invalidates graph caches.
GRAPH_VERSION = 1

# The summary lattice: one monotone boolean per property.
PROP_WALLCLOCK = "wallclock"    # reaches a wall-clock/entropy source
PROP_RAWWRITE = "rawwrite"      # performs a raw (non-atomic) FS write
PROP_FLOATCYCLE = "floatcycle"  # introduces a float into cycle math
PROP_THREAD = "thread"          # spawns a thread/process/pool
PROP_LEASE = "lease"            # takes an exclusive spool claim
PROP_MONOTONIC = "monotonic"    # returns a monotonic clock reading

PROPS = (
    PROP_WALLCLOCK, PROP_RAWWRITE, PROP_FLOATCYCLE,
    PROP_THREAD, PROP_LEASE, PROP_MONOTONIC,
)

#: Host-clock readers (the monotonic-discipline sources, REPRO014).
HOST_CLOCK_CALLS = frozenset(
    name for name in _BANNED_CALLS if name.startswith("time.")
)

_THREAD_CALLS = {
    "threading.Thread": "spawns a thread",
    "concurrent.futures.ThreadPoolExecutor": "spawns a thread pool",
    "concurrent.futures.ProcessPoolExecutor": "spawns worker processes",
    "multiprocessing.Process": "spawns a process",
    "multiprocessing.Pool": "spawns a process pool",
    "os.fork": "forks the process",
}

_CLAIM_WRITER = "atomic_claim_text"

#: A direct fact is skipped when its line carries a suppression for any
#: of these rule ids — an accepted, documented exception (StageTimer's
#: host profiling, the torn-write fault helpers) must not taint every
#: caller upstream.
_PROP_SUPPRESS: Dict[str, Tuple[str, ...]] = {
    PROP_WALLCLOCK: ("REPRO001", "REPRO012"),
    PROP_RAWWRITE: (
        "REPRO003", "REPRO009", "REPRO010", "REPRO011", "REPRO013",
    ),
    PROP_FLOATCYCLE: ("REPRO002",),
    PROP_MONOTONIC: ("REPRO001", "REPRO014"),
    PROP_THREAD: (),
    PROP_LEASE: (),
}


def fkey(rel: str, qualname: str) -> str:
    """Stable function key: ``<repo-relative path>::<qualname>``."""
    return f"{rel}::{qualname}"


def fkey_parts(key: str) -> Tuple[str, str]:
    rel, _, qualname = key.partition("::")
    return rel, qualname


def _last_segment(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


@dataclasses.dataclass(frozen=True)
class Hop:
    """One step of a summary's explanation chain.

    ``kind == "direct"``: the fact itself — ``detail`` describes the
    offending expression at ``rel:line``.  ``kind == "call"``: the fact
    was inherited through the call at ``rel:line`` to the function key
    in ``detail``; follow that key's summary for the next hop.
    """

    kind: str
    rel: str
    line: int
    detail: str

    def to_list(self) -> List:
        return [self.kind, self.rel, self.line, self.detail]

    @classmethod
    def from_list(cls, row: Sequence) -> "Hop":
        return cls(str(row[0]), str(row[1]), int(row[2]), str(row[3]))


@dataclasses.dataclass
class ModuleTable:
    """One module's resolvable surface: defs, classes, import aliases."""

    functions: Set[str]
    classes: Dict[str, Set[str]]
    aliases: Dict[str, str]


@dataclasses.dataclass
class FunctionNode:
    """One scanned function: resolved call sites plus direct facts."""

    key: str
    rel: str
    qualname: str
    lineno: int
    calls: List[Tuple[int, str]] = dataclasses.field(default_factory=list)
    return_calls: List[Tuple[int, str]] = \
        dataclasses.field(default_factory=list)
    direct: Dict[str, Hop] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class GraphStats:
    """Build statistics for ``lint --graph-stats``."""

    modules: int = 0
    functions: int = 0
    call_edges: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    prop_counts: Dict[str, int] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        props = ", ".join(
            f"{p}={self.prop_counts.get(p, 0)}" for p in PROPS
        )
        return (
            f"project graph: {self.modules} module(s), "
            f"{self.functions} function(s), "
            f"{self.call_edges} call edge(s)\n"
            f"summaries: {props}\n"
            f"graph cache: {self.cache_hits} module(s) reused, "
            f"{self.cache_misses} rescanned"
        )


class CallResolver:
    """Resolve one module's call expressions to project functions.

    Resolution order: ``self.``/``cls.`` methods of the enclosing
    class; import aliases (already shadowing-aware) expanded to dotted
    paths and matched against project modules by longest prefix, with
    re-exports chased through ``__init__`` aliases; local top-level
    functions and class constructors; everything else is external and
    reported by its canonical dotted name for fact classification.
    """

    _MAX_CHASE = 5  # re-export indirection bound

    def __init__(
        self,
        rel: str,
        tables: Dict[str, ModuleTable],
        dotted_to_rel: Dict[str, str],
    ) -> None:
        self.rel = rel
        self.tables = tables
        self.dotted_to_rel = dotted_to_rel

    def resolve(
        self, func: ast.AST, enclosing_class: Optional[str] = None
    ) -> Optional[Tuple[str, str]]:
        """``("local", fkey)`` | ``("ext", dotted name)`` | ``None``."""
        name = dotted_name(func)
        if name is None:
            return None  # call on a call result, subscript, lambda, ...
        table = self.tables[self.rel]
        parts = name.split(".")
        head = parts[0]
        if head in ("self", "cls") and enclosing_class is not None:
            if len(parts) == 2 and \
                    parts[1] in table.classes.get(enclosing_class, ()):
                return ("local",
                        fkey(self.rel, f"{enclosing_class}.{parts[1]}"))
            return None
        if len(parts) == 1:
            if head in table.aliases:
                hit = self._resolve_dotted(table.aliases[head], 0)
                return hit or ("ext", table.aliases[head])
            if head in table.functions:
                return ("local", fkey(self.rel, head))
            if head in table.classes:
                return self._constructor(self.rel, head) or None
            return ("ext", head)
        if head in table.aliases:
            full = table.aliases[head] + "." + ".".join(parts[1:])
            hit = self._resolve_dotted(full, 0)
            return hit or ("ext", full)
        if head in table.classes and len(parts) == 2 and \
                parts[1] in table.classes[head]:
            return ("local", fkey(self.rel, f"{head}.{parts[1]}"))
        return ("ext", name)

    def _constructor(
        self, rel: str, cls: str
    ) -> Optional[Tuple[str, str]]:
        if "__init__" in self.tables[rel].classes.get(cls, ()):
            return ("local", fkey(rel, f"{cls}.__init__"))
        return None  # synthesized __init__ (dataclass etc.): no edge

    def _resolve_dotted(
        self, full: str, depth: int
    ) -> Optional[Tuple[str, str]]:
        if depth >= self._MAX_CHASE:
            return None
        parts = full.split(".")
        for i in range(len(parts) - 1, 0, -1):
            rel2 = self.dotted_to_rel.get(".".join(parts[:i]))
            if rel2 is not None:
                return self._member(rel2, parts[i:], depth)
        return None

    def _member(
        self, rel2: str, rest: Sequence[str], depth: int
    ) -> Optional[Tuple[str, str]]:
        table = self.tables.get(rel2)
        if table is None:
            return None
        if len(rest) == 1:
            name = rest[0]
            if name in table.functions:
                return ("local", fkey(rel2, name))
            if name in table.classes:
                return self._constructor(rel2, name)
            if name in table.aliases:  # re-export (__init__ surface)
                return self._resolve_dotted(table.aliases[name],
                                            depth + 1)
            return None
        if len(rest) == 2:
            cls, method = rest
            if cls in table.classes and method in table.classes[cls]:
                return ("local", fkey(rel2, f"{cls}.{method}"))
            if cls in table.aliases:
                return self._resolve_dotted(
                    table.aliases[cls] + "." + method, depth + 1
                )
        return None


class ProjectGraph:
    """The built graph: summaries, chains, per-module function lists."""

    def __init__(
        self,
        tables: Dict[str, ModuleTable],
        dotted_to_rel: Dict[str, str],
        summaries: Dict[str, Dict[str, Hop]],
        functions_by_module: Dict[str, List[Tuple[str, int]]],
        stats: GraphStats,
    ) -> None:
        self.tables = tables
        self.dotted_to_rel = dotted_to_rel
        self.summaries = summaries
        self.functions_by_module = functions_by_module
        self.stats = stats

    def summary(self, key: str) -> Dict[str, Hop]:
        return self.summaries.get(key, {})

    def functions_in(self, rel: str) -> List[Tuple[str, int]]:
        """``(qualname, lineno)`` of every function unit in ``rel``."""
        return self.functions_by_module.get(rel, [])

    def resolver_for(self, rel: str) -> CallResolver:
        return CallResolver(rel, self.tables, self.dotted_to_rel)

    def chain(self, key: str, prop: str) -> List[Hop]:
        """The hop chain from ``key`` down to the direct fact."""
        hops: List[Hop] = []
        seen: Set[str] = set()
        current = key
        while current not in seen:
            seen.add(current)
            hop = self.summaries.get(current, {}).get(prop)
            if hop is None:
                break
            hops.append(hop)
            if hop.kind != "call":
                break
            current = hop.detail
        return hops

    def describe_chain(self, key: str, prop: str) -> str:
        """One-line rendering of the chain, for messages and --why."""
        rel, qualname = fkey_parts(key)
        parts = [f"{qualname} ({rel})"]
        for hop in self.chain(key, prop):
            if hop.kind == "call":
                _, callee = fkey_parts(hop.detail)
                parts.append(f"{hop.rel}:{hop.line} calls {callee}")
            else:
                parts.append(f"{hop.rel}:{hop.line} {hop.detail}")
        return " -> ".join(parts)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def _config_key(config: LintConfig) -> str:
    cfg = dataclasses.replace(
        config, fingerprints_data=None, graph_cache_path=None
    )
    return json.dumps(
        dataclasses.asdict(cfg), sort_keys=True, default=str
    )


def _graph_signature(config: LintConfig) -> str:
    key = f"g{GRAPH_VERSION}|{_config_key(config)}"
    return hashlib.sha256(key.encode()).hexdigest()[:16]


#: One-slot memo: the three interprocedural rules (and --why) all build
#: the graph for the same (sources, config) within one lint run.
_MEMO: Dict[Tuple, ProjectGraph] = {}


def build_project_graph(
    sources: Sequence[SourceFile], config: LintConfig
) -> ProjectGraph:
    """Build (or reuse) the project graph over ``sources``.

    The graph covers exactly the files handed to the linter — lint a
    single module and the analysis is correspondingly partial; CI and
    the acceptance gate run over all of ``src/``.
    """
    files = sorted(
        (s for s in sources if s.rel.endswith(".py")
         and s.tree is not None),
        key=lambda s: s.rel,
    )
    memo_key = (
        tuple((s.rel, s.content_hash) for s in files),
        _config_key(config),
    )
    cached = _MEMO.get(memo_key)
    if cached is not None:
        return cached
    graph = _build(files, config)
    _MEMO.clear()
    _MEMO[memo_key] = graph
    return graph


def _load_disk_cache(path: Optional[Path], signature: str) -> Dict:
    if path is None or not path.is_file():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if payload.get("signature") != signature:
        return {}
    modules = payload.get("modules", {})
    return modules if isinstance(modules, dict) else {}


def _module_imports(
    src: SourceFile, dotted_to_rel: Dict[str, str]
) -> Tuple[str, ...]:
    """Repo-relative paths of the project modules ``src`` imports."""
    package = module_package(src.rel)
    deps: Set[str] = set()

    def add(dotted: str) -> None:
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            rel = dotted_to_rel.get(".".join(parts[:i]))
            if rel is not None:
                if rel != src.rel:
                    deps.add(rel)
                return

    for node in ast.walk(src.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                from .astutil import _resolve_relative
                base = _resolve_relative(package, node.level, base)
            for alias in node.names:
                if alias.name == "*" or not base:
                    add(base or alias.name)
                else:
                    add(f"{base}.{alias.name}")
    return tuple(sorted(deps))


def _module_table(src: SourceFile) -> ModuleTable:
    functions: Set[str] = set()
    classes: Dict[str, Set[str]] = {}
    for node in src.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.add(node.name)
        elif isinstance(node, ast.ClassDef):
            methods = {
                sub.name for sub in node.body
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            classes[node.name] = methods
    aliases = import_aliases(src.tree, package=module_package(src.rel))
    return ModuleTable(
        functions=functions, classes=classes, aliases=aliases
    )


def _scan_module(
    src: SourceFile, resolver: CallResolver, config: LintConfig
) -> List[FunctionNode]:
    """Function units of ``src`` with resolved calls and direct facts."""
    module_stmts: List[ast.stmt] = []
    units: List[Tuple[str, int, List[ast.stmt], Optional[str]]] = []
    for node in src.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            units.append((node.name, node.lineno, [node], None))
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    units.append((
                        f"{node.name}.{sub.name}", sub.lineno, [sub],
                        node.name,
                    ))
                else:  # class-level code runs at import time
                    module_stmts.append(sub)
        else:
            module_stmts.append(node)
    units.append(("<module>", 1, module_stmts, None))
    return [
        _scan_unit(src, resolver, config, qual, lineno, stmts, cls)
        for qual, lineno, stmts, cls in units
    ]


def _scan_unit(
    src: SourceFile,
    resolver: CallResolver,
    config: LintConfig,
    qualname: str,
    lineno: int,
    stmts: List[ast.stmt],
    enclosing_class: Optional[str],
) -> FunctionNode:
    node_fn = FunctionNode(
        key=fkey(src.rel, qualname), rel=src.rel, qualname=qualname,
        lineno=lineno,
    )
    aliases = resolver.tables[src.rel].aliases

    return_call_ids: Set[int] = set()
    for stmt in stmts:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Return) and \
                    isinstance(sub.value, ast.Call):
                return_call_ids.add(id(sub.value))

    def add_direct(prop: str, line: int, desc: str) -> None:
        if prop in node_fn.direct:
            return
        if any(src.suppressed(line, rid)
               for rid in _PROP_SUPPRESS[prop]):
            return
        node_fn.direct[prop] = Hop("direct", src.rel, line, desc)

    def handle_call(call: ast.Call, func_name: Optional[str]) -> None:
        line = call.lineno
        hit = resolver.resolve(call.func, enclosing_class)
        ext_name: Optional[str] = None
        if hit is not None and hit[0] == "local":
            callee = hit[1]
            if callee != node_fn.key:  # self-recursion adds nothing
                node_fn.calls.append((line, callee))
                if id(call) in return_call_ids:
                    node_fn.return_calls.append((line, callee))
            if _last_segment(fkey_parts(callee)[1]) == _CLAIM_WRITER:
                add_direct(PROP_LEASE, line,
                           f"{_CLAIM_WRITER}() takes an exclusive "
                           f"spool claim")
        elif hit is not None:
            ext_name = hit[1]
        if ext_name is not None:
            _external_facts(call, ext_name, line, add_direct,
                            return_call_ids)
        blessed = func_name is not None and \
            func_name in config.atomic_writers
        if not blessed:
            if ext_name == "open":
                mode = _open_write_mode(call)
                if mode is not None:
                    add_direct(PROP_RAWWRITE, line,
                               f"open(..., {mode!r}) raw write")
            elif isinstance(call.func, ast.Attribute) and \
                    call.func.attr in ("write_text", "write_bytes"):
                add_direct(PROP_RAWWRITE, line,
                           f".{call.func.attr}() raw write")

    def visit(node: ast.AST, func_name: Optional[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func_name = node.name
        if isinstance(node, ast.Call):
            handle_call(node, func_name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                flat = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for t in flat:
                    name = terminal_name(t)
                    if is_cycle_counter_name(name) and \
                            is_floaty(node.value, aliases):
                        add_direct(
                            PROP_FLOATCYCLE, node.lineno,
                            f"float-producing expression assigned to "
                            f"cycle counter {name!r}",
                        )
        elif isinstance(node, ast.AugAssign):
            name = terminal_name(node.target)
            if is_cycle_counter_name(name) and (
                isinstance(node.op, ast.Div)
                or is_floaty(node.value, aliases)
            ):
                add_direct(
                    PROP_FLOATCYCLE, node.lineno,
                    f"float-producing expression assigned to cycle "
                    f"counter {name!r}",
                )
        for child in ast.iter_child_nodes(node):
            visit(child, func_name)

    outer = qualname if qualname != "<module>" else None
    outer_name = _last_segment(outer) if outer else None
    for stmt in stmts:
        visit(stmt, outer_name)
    return node_fn


def _external_facts(
    call: ast.Call, name: str, line: int, add_direct, return_call_ids
) -> None:
    """Classify an external call target into direct facts."""
    if name in _BANNED_CALLS:
        add_direct(PROP_WALLCLOCK, line,
                   f"{name}() {_BANNED_CALLS[name]}")
    else:
        for prefix, why in _BANNED_PREFIXES:
            if name.startswith(prefix):
                add_direct(PROP_WALLCLOCK, line, f"{name}() {why}")
                break
        else:
            _random_fact(call, name, line, add_direct)
    if name in HOST_CLOCK_CALLS and id(call) in return_call_ids:
        add_direct(PROP_MONOTONIC, line, f"returns {name}()")
    if name in _THREAD_CALLS:
        add_direct(PROP_THREAD, line, f"{name}() {_THREAD_CALLS[name]}")
    if _last_segment(name) == _CLAIM_WRITER:
        add_direct(PROP_LEASE, line,
                   f"{_CLAIM_WRITER}() takes an exclusive spool claim")


def _random_fact(call: ast.Call, name: str, line: int, add_direct):
    head, _, tail = name.partition(".")
    if name == "Random" or name.endswith(".Random"):
        if not call.args and not call.keywords:
            add_direct(PROP_WALLCLOCK, line,
                       "random.Random() without a seed draws OS entropy")
        elif call.args and isinstance(call.args[0], ast.Constant) and \
                call.args[0].value is None:
            add_direct(PROP_WALLCLOCK, line,
                       "random.Random(None) seeds from OS entropy")
    elif head == "random" and tail and "." not in tail:
        add_direct(PROP_WALLCLOCK, line,
                   f"module-level random.{tail}() uses the "
                   f"interpreter-global RNG")


def _build(
    files: Sequence[SourceFile], config: LintConfig
) -> ProjectGraph:
    by_rel = {s.rel: s for s in files}
    dotted_to_rel: Dict[str, str] = {}
    for s in files:
        dotted_to_rel.setdefault(module_dotted(s.rel), s.rel)

    signature = _graph_signature(config)
    cache_path = (
        Path(config.graph_cache_path)
        if config.graph_cache_path else None
    )
    disk = _load_disk_cache(cache_path, signature)

    # Phase 1: the import graph (cached entries avoid re-parsing only
    # when the module's own content is unchanged).
    imports: Dict[str, Tuple[str, ...]] = {}
    for s in files:
        entry = disk.get(s.rel)
        if entry and entry.get("self_hash") == s.content_hash:
            imports[s.rel] = tuple(
                r for r in entry.get("imports", ()) if r in by_rel
            )
        else:
            imports[s.rel] = _module_imports(s, dotted_to_rel)

    # Phase 2: per-module dependency fingerprints over the transitive
    # import closure — the cache key that makes cross-file
    # invalidation sound.
    dep_fp: Dict[str, str] = {}
    for s in files:
        closure = {s.rel}
        stack = [s.rel]
        while stack:
            for dep in imports.get(stack.pop(), ()):
                if dep not in closure:
                    closure.add(dep)
                    stack.append(dep)
        blob = "|".join(
            f"{rel}:{by_rel[rel].content_hash}"
            for rel in sorted(closure)
        )
        dep_fp[s.rel] = hashlib.sha256(blob.encode()).hexdigest()[:16]

    # Phase 3: split into cache-valid (frozen) and to-scan modules.
    tables: Dict[str, ModuleTable] = {}
    summaries: Dict[str, Dict[str, Hop]] = {}
    functions_by_module: Dict[str, List[Tuple[str, int]]] = {}
    frozen: Set[str] = set()
    edge_count = 0
    for s in files:
        entry = disk.get(s.rel)
        if not (entry and entry.get("self_hash") == s.content_hash
                and entry.get("dep_fp") == dep_fp[s.rel]):
            continue
        frozen.add(s.rel)
        table = entry.get("table", {})
        tables[s.rel] = ModuleTable(
            functions=set(table.get("functions", ())),
            classes={
                k: set(v) for k, v in table.get("classes", {}).items()
            },
            aliases=dict(table.get("aliases", {})),
        )
        funcs = entry.get("funcs", {})
        functions_by_module[s.rel] = sorted(
            (q, int(info.get("lineno", 1)))
            for q, info in funcs.items()
        )
        for q, info in funcs.items():
            summaries[fkey(s.rel, q)] = {
                prop: Hop.from_list(row)
                for prop, row in info.get("summary", {}).items()
            }
        edge_count += int(entry.get("nedges", 0))

    scanned = [s for s in files if s.rel not in frozen]
    for s in scanned:
        tables[s.rel] = _module_table(s)

    # Phase 4: scan — resolve call sites, collect direct facts.
    nodes: Dict[str, FunctionNode] = {}
    module_edges: Dict[str, int] = {}
    for s in scanned:
        resolver = CallResolver(s.rel, tables, dotted_to_rel)
        mod_nodes = _scan_module(s, resolver, config)
        functions_by_module[s.rel] = sorted(
            (n.qualname, n.lineno) for n in mod_nodes
        )
        module_edges[s.rel] = sum(len(n.calls) for n in mod_nodes)
        edge_count += module_edges[s.rel]
        for n in mod_nodes:
            nodes[n.key] = n
            summaries[n.key] = dict(n.direct)

    # Phase 5: fixed point — propagate properties bottom-up.  Each
    # property only ever turns on, so the loop terminates; sorted
    # iteration keeps the chosen chains deterministic.
    atomic = set(config.atomic_writers)
    ordered = sorted(nodes)
    changed = True
    while changed:
        changed = False
        for key in ordered:
            node = nodes[key]
            summary = summaries[key]
            for prop in PROPS:
                if prop in summary:
                    continue
                sites = (
                    node.return_calls if prop == PROP_MONOTONIC
                    else node.calls
                )
                for line, callee in sites:
                    if callee not in summaries:
                        continue
                    if prop == PROP_RAWWRITE and \
                            _last_segment(fkey_parts(callee)[1]) \
                            in atomic:
                        continue  # blessed: the write inside is atomic
                    if prop in summaries[callee]:
                        summary[prop] = Hop("call", node.rel, line,
                                            callee)
                        changed = True
                        break

    prop_counts = {
        prop: sum(1 for s in summaries.values() if prop in s)
        for prop in PROPS
    }
    stats = GraphStats(
        modules=len(files),
        functions=len(summaries),
        call_edges=edge_count,
        cache_hits=len(frozen),
        cache_misses=len(scanned),
        prop_counts=prop_counts,
    )

    if cache_path is not None and scanned:
        _save_disk_cache(
            cache_path, signature, files, disk, frozen, imports,
            dep_fp, tables, functions_by_module, summaries,
            module_edges,
        )

    return ProjectGraph(
        tables=tables,
        dotted_to_rel=dotted_to_rel,
        summaries=summaries,
        functions_by_module=functions_by_module,
        stats=stats,
    )


def _save_disk_cache(
    path: Path,
    signature: str,
    files: Sequence[SourceFile],
    disk: Dict,
    frozen: Set[str],
    imports: Dict[str, Tuple[str, ...]],
    dep_fp: Dict[str, str],
    tables: Dict[str, ModuleTable],
    functions_by_module: Dict[str, List[Tuple[str, int]]],
    summaries: Dict[str, Dict[str, Hop]],
    module_edges: Dict[str, int],
) -> None:
    modules: Dict[str, Dict] = {}
    for s in files:
        if s.rel in frozen:
            modules[s.rel] = disk[s.rel]
            continue
        table = tables[s.rel]
        funcs = {}
        for qualname, lineno in functions_by_module.get(s.rel, []):
            summary = summaries.get(fkey(s.rel, qualname), {})
            funcs[qualname] = {
                "lineno": lineno,
                "summary": {
                    prop: hop.to_list()
                    for prop, hop in sorted(summary.items())
                },
            }
        modules[s.rel] = {
            "self_hash": s.content_hash,
            "dep_fp": dep_fp[s.rel],
            "imports": sorted(imports[s.rel]),
            "table": {
                "functions": sorted(table.functions),
                "classes": {
                    k: sorted(v)
                    for k, v in sorted(table.classes.items())
                },
                "aliases": dict(sorted(table.aliases.items())),
            },
            "funcs": funcs,
            "nedges": module_edges.get(s.rel, 0),
        }
    payload = {
        "signature": signature,
        "version": GRAPH_VERSION,
        "modules": modules,
    }
    try:
        path.write_text(
            json.dumps(payload, indent=1, sort_keys=True),
            encoding="utf-8",
        )
    except OSError:  # best-effort, like the per-file lint cache
        pass
