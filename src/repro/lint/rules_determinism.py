"""Determinism rules: REPRO001 (no wall clock/entropy) and REPRO002
(integer-only cycle arithmetic).

These protect the two invariants the previous PRs *assume* at runtime:

* the resilience layer (PR 1) quarantines a corrupt result and
  re-simulates, trusting that re-simulation is byte-identical — one
  ``time.time()`` or unseeded ``random`` call in a simulator makes the
  retry produce a different file and the checksum machinery useless;
* the CycleLedger (PR 2) verifies that attribution buckets sum
  *exactly* to the total cycle count — conservation is only decidable
  because every quantity involved is an integer; a single float creeping
  into a cycle counter turns an identity into an epsilon comparison.
"""

from __future__ import annotations

import ast
from typing import List

from .astutil import (
    canonical_call_name,
    import_aliases,
    is_cycle_counter_name,
    is_floaty,
    terminal_name,
)
from .framework import LintConfig, Rule, SourceFile, Violation, path_matches

#: Exact dotted call targets that read a wall clock or entropy source.
_BANNED_CALLS = {
    "time.time": "reads the wall clock",
    "time.time_ns": "reads the wall clock",
    "time.monotonic": "reads a host clock",
    "time.monotonic_ns": "reads a host clock",
    "time.perf_counter": "reads a host clock",
    "time.perf_counter_ns": "reads a host clock",
    "time.process_time": "reads a host clock",
    "time.process_time_ns": "reads a host clock",
    "datetime.datetime.now": "reads the wall clock",
    "datetime.datetime.utcnow": "reads the wall clock",
    "datetime.datetime.today": "reads the wall clock",
    "datetime.date.today": "reads the wall clock",
    "datetime.now": "reads the wall clock",
    "datetime.utcnow": "reads the wall clock",
    "os.urandom": "draws OS entropy",
    "uuid.uuid1": "draws host state",
    "uuid.uuid4": "draws OS entropy",
}

#: Prefixes banned wholesale: any call into these namespaces is either
#: entropy or global-RNG state.
_BANNED_PREFIXES = (
    ("secrets.", "draws OS entropy"),
    ("numpy.random.", "uses numpy's global RNG"),
    ("np.random.", "uses numpy's global RNG"),
)

#: ``random.<fn>`` module-level calls share the interpreter-global RNG,
#: whose state any import can perturb; only explicit ``random.Random``
#: instances (seeded) are allowed in simulation code.
_RANDOM_MODULE = "random"


class WallClockEntropyRule(Rule):
    """REPRO001 — no wall-clock or entropy calls in simulation code."""

    rule_id = "REPRO001"
    title = "no wall-clock/entropy calls in simulation code"
    invariant = (
        "byte-identical re-simulation: quarantine-and-retry (PR 1) "
        "assumes re-running a (config, trace, seed) produces the exact "
        "same statistics"
    )

    def applies_to(self, rel: str, config: LintConfig) -> bool:
        return any(
            path_matches(rel, p) for p in config.deterministic_paths
        )

    def check_file(
        self, src: SourceFile, config: LintConfig
    ) -> List[Violation]:
        tree = src.tree
        if tree is None:
            return []
        aliases = import_aliases(tree)
        found: List[Violation] = []

        def report(node: ast.AST, name: str, why: str) -> None:
            found.append(Violation(
                rule_id=self.rule_id, path=src.rel,
                line=node.lineno, col=node.col_offset,
                message=(
                    f"{name}() {why}; simulation code must be "
                    f"deterministic (re-simulation is assumed "
                    f"byte-identical)"
                ),
            ))

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call_name(node.func, aliases)
            if name is None:
                continue
            if name in _BANNED_CALLS:
                report(node, name, _BANNED_CALLS[name])
                continue
            for prefix, why in _BANNED_PREFIXES:
                if name.startswith(prefix):
                    report(node, name, why)
                    break
            else:
                found.extend(
                    self._check_random(node, name, src)
                )
        return found

    def _check_random(
        self, node: ast.Call, name: str, src: SourceFile
    ) -> List[Violation]:
        head, _, tail = name.partition(".")
        if head != _RANDOM_MODULE:
            # `from random import Random` resolves to "random.Random".
            if name == "Random" or name.endswith(".Random"):
                tail = "Random"
            else:
                return []
        if tail == "Random":
            if node.args or node.keywords:
                first = node.args[0] if node.args else None
                if isinstance(first, ast.Constant) and \
                        first.value is None:
                    return [self._violation(
                        node, src,
                        "random.Random(None) seeds from OS entropy; "
                        "pass an explicit integer seed",
                    )]
                return []
            return [self._violation(
                node, src,
                "random.Random() without a seed draws OS entropy; "
                "pass an explicit integer seed",
            )]
        if not tail:
            return []
        return [self._violation(
            node, src,
            f"module-level random.{tail}() uses the interpreter-global "
            f"RNG; use a seeded random.Random instance",
        )]

    def _violation(
        self, node: ast.AST, src: SourceFile, message: str
    ) -> Violation:
        return Violation(
            rule_id=self.rule_id, path=src.rel,
            line=node.lineno, col=node.col_offset, message=message,
        )


#: Methods whose cycle arguments feed the conservation ledger.
_LEDGER_METHODS = {"charge", "charge_couplet"}


class IntegerCycleRule(Rule):
    """REPRO002 — cycle counters carry ints only (``//``, never ``/``)."""

    rule_id = "REPRO002"
    title = "integer-only cycle arithmetic"
    invariant = (
        "exact cycle conservation: CycleLedger.verify (PR 2) asserts "
        "buckets sum to the total as an integer identity, not within "
        "an epsilon"
    )

    def applies_to(self, rel: str, config: LintConfig) -> bool:
        return any(
            path_matches(rel, p) for p in config.deterministic_paths
        )

    def check_file(
        self, src: SourceFile, config: LintConfig
    ) -> List[Violation]:
        tree = src.tree
        if tree is None:
            return []
        aliases = import_aliases(tree)
        found: List[Violation] = []

        def report(node: ast.AST, name: str, detail: str) -> None:
            found.append(Violation(
                rule_id=self.rule_id, path=src.rel,
                line=node.lineno, col=node.col_offset,
                message=(
                    f"{detail} assigned to cycle counter {name!r}; "
                    f"cycle arithmetic must stay integer (use //, "
                    f"int() or the quantize helpers)"
                ),
            ))

        def check_target(target: ast.AST, value: ast.AST,
                         node: ast.AST) -> None:
            name = terminal_name(target)
            if is_cycle_counter_name(name) and is_floaty(value, aliases):
                detail = "float-producing expression"
                if isinstance(value, ast.Constant):
                    detail = f"float literal {value.value!r}"
                elif isinstance(value, ast.BinOp) and \
                        isinstance(value.op, ast.Div):
                    detail = "true division (/)"
                elif isinstance(value, ast.Call):
                    detail = "float() conversion"
                report(node, name or "?", detail)

        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    targets = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for t in targets:
                        check_target(t, node.value, node)
            elif isinstance(node, ast.AnnAssign):
                name = terminal_name(node.target)
                if is_cycle_counter_name(name):
                    ann = node.annotation
                    if isinstance(ann, ast.Name) and ann.id == "float":
                        found.append(Violation(
                            rule_id=self.rule_id, path=src.rel,
                            line=node.lineno, col=node.col_offset,
                            message=(
                                f"cycle counter {name!r} annotated as "
                                f"float; cycle counts are integers"
                            ),
                        ))
                    elif node.value is not None:
                        check_target(node.target, node.value, node)
            elif isinstance(node, ast.AugAssign):
                name = terminal_name(node.target)
                if not is_cycle_counter_name(name):
                    continue
                if isinstance(node.op, ast.Div):
                    report(node, name or "?", "in-place true division (/=)")
                elif is_floaty(node.value, aliases):
                    report(node, name or "?", "float-producing expression")
            elif isinstance(node, ast.Call):
                found.extend(self._check_call(node, src, aliases))
        return found

    def _check_call(self, node: ast.Call, src: SourceFile,
                    aliases) -> List[Violation]:
        found: List[Violation] = []
        # Ledger charges: every positional/keyword cycle argument.
        func_name = (
            node.func.attr if isinstance(node.func, ast.Attribute)
            else getattr(node.func, "id", "")
        )
        if func_name in _LEDGER_METHODS:
            for arg in list(node.args) + [k.value for k in node.keywords]:
                if is_floaty(arg, aliases):
                    found.append(Violation(
                        rule_id=self.rule_id, path=src.rel,
                        line=node.lineno, col=node.col_offset,
                        message=(
                            f"float-producing argument to "
                            f"{func_name}(); the ledger's conservation "
                            f"check needs exact integer cycle counts"
                        ),
                    ))
                    break
        # Any call site: keyword args named like cycle counters.
        for keyword in node.keywords:
            if is_cycle_counter_name(keyword.arg) and \
                    is_floaty(keyword.value, aliases):
                found.append(Violation(
                    rule_id=self.rule_id, path=src.rel,
                    line=node.lineno, col=node.col_offset,
                    message=(
                        f"float-producing value for cycle argument "
                        f"{keyword.arg!r}; cycle counts are integers"
                    ),
                ))
        return found


DETERMINISM_RULES = (WallClockEntropyRule(), IntegerCycleRule())
