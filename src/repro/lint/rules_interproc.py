"""Interprocedural rules over the project graph: REPRO012 (hot-path
determinism taint), REPRO013 (atomic-write reachability), REPRO014
(monotonic clock discipline).

These are the cross-module closures of invariants the per-file rules
already enforce locally:

* REPRO001 flags a ``time.time()`` written *in* a deterministic
  package; REPRO012 flags a hot-path function whose **call chain**
  reaches one through helpers in modules REPRO001 never scopes.
* REPRO003/009/010/011 flag a raw write *in* their scoped modules;
  REPRO013 flags a raw write a scoped entry point reaches in a module
  **outside every scope** — the hole a refactor opens by moving a
  write helper one file away.
* REPRO014 hardens the lease protocol's "expiry by observation only"
  rule: a monotonic clock reading is process-local, so serializing one
  into a spool/bench document silently re-introduces cross-host clock
  comparison.  Durations (differences of two readings) are fine.

All three report the full offending chain in the message; ``lint
--why RULE:path`` prints the same chains standalone.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .astutil import terminal_name
from .framework import (
    LintConfig,
    Rule,
    SourceFile,
    Violation,
    path_matches,
)
from .projectgraph import (
    HOST_CLOCK_CALLS,
    PROP_MONOTONIC,
    PROP_RAWWRITE,
    PROP_WALLCLOCK,
    ProjectGraph,
    build_project_graph,
    fkey,
)

#: The per-module atomic-write scopes REPRO013 unifies: each pairs a
#: LintConfig attribute with the per-file rule that owns *direct*
#: writes inside it.  REPRO013 only fires when a chain terminates in a
#: module covered by none of them.
WRITE_SCOPES: Tuple[Tuple[str, str], ...] = (
    ("persistence_modules", "REPRO003"),
    ("pass_cache_modules", "REPRO009"),
    ("workqueue_modules", "REPRO010"),
    ("bench_modules", "REPRO011"),
)


def _in_write_scope(rel: str, config: LintConfig) -> bool:
    return any(
        path_matches(rel, prefix)
        for attr, _ in WRITE_SCOPES
        for prefix in getattr(config, attr)
    )


class HotPathDeterminismRule(Rule):
    """REPRO012 — no call chain from hot-path code to the wall clock."""

    rule_id = "REPRO012"
    title = "hot-path call chains never reach wall-clock/entropy"
    invariant = (
        "byte-identical re-simulation, transitively: REPRO001 only "
        "sees direct calls, so a clean-looking helper in an unscoped "
        "module can smuggle time.time() into the simulation path — "
        "the call graph proves no such chain exists"
    )
    scope = "project"

    def check_project(
        self, files: Sequence[SourceFile], config: LintConfig
    ) -> List[Violation]:
        graph = build_project_graph(files, config)
        found: List[Violation] = []
        for src in files:
            if not any(path_matches(src.rel, p)
                       for p in config.hot_path_modules):
                continue
            for qualname, _lineno in graph.functions_in(src.rel):
                key = fkey(src.rel, qualname)
                hop = graph.summary(key).get(PROP_WALLCLOCK)
                if hop is None or hop.kind != "call":
                    continue  # direct calls are REPRO001's finding
                found.append(Violation(
                    rule_id=self.rule_id, path=src.rel,
                    line=hop.line, col=0,
                    message=(
                        f"call chain from {qualname}() reaches a "
                        f"wall-clock/entropy source: "
                        f"{graph.describe_chain(key, PROP_WALLCLOCK)}"
                        f" — hot-path code must be deterministic even "
                        f"through helpers in unscoped modules"
                    ),
                ))
        return found


class AtomicReachabilityRule(Rule):
    """REPRO013 — scoped entry points never reach an unscoped raw write."""

    rule_id = "REPRO013"
    title = "persistence entry points never reach unscoped raw writes"
    invariant = (
        "atomic persistence, transitively: REPRO003/009/010/011 guard "
        "writes inside their module scopes — a write helper moved one "
        "module away would silently escape all four, and only the "
        "call graph sees the chain back into the scoped entry point"
    )
    scope = "project"

    def check_project(
        self, files: Sequence[SourceFile], config: LintConfig
    ) -> List[Violation]:
        graph = build_project_graph(files, config)
        atomic = set(config.atomic_writers)
        found: List[Violation] = []
        for src in files:
            if not _in_write_scope(src.rel, config):
                continue
            for qualname, _lineno in graph.functions_in(src.rel):
                if qualname.rsplit(".", 1)[-1] in atomic:
                    continue  # the blessed primitives themselves
                key = fkey(src.rel, qualname)
                hop = graph.summary(key).get(PROP_RAWWRITE)
                if hop is None or hop.kind != "call":
                    continue  # direct writes are the per-file rules'
                chain = graph.chain(key, PROP_RAWWRITE)
                terminal = chain[-1] if chain else None
                if terminal is None or terminal.kind != "direct":
                    continue
                if _in_write_scope(terminal.rel, config):
                    continue  # that module's own rule owns the write
                found.append(Violation(
                    rule_id=self.rule_id, path=src.rel,
                    line=hop.line, col=0,
                    message=(
                        f"raw write reachable from {qualname}() in an "
                        f"unscoped module: "
                        f"{graph.describe_chain(key, PROP_RAWWRITE)}"
                        f" — route it through "
                        f"{'/'.join(sorted(atomic))}"
                    ),
                ))
        return found


class ClockDisciplineRule(Rule):
    """REPRO014 — monotonic readings never serialized into documents."""

    rule_id = "REPRO014"
    title = "monotonic readings never cross process boundaries"
    invariant = (
        "expiry by observation only (the PR 6 lease protocol): a "
        "monotonic reading is meaningless on any other host or "
        "process, so one serialized into a spool/bench document "
        "re-introduces exactly the cross-host clock comparison the "
        "protocol exists to avoid; durations (reading minus reading) "
        "are portable and stay legal"
    )
    scope = "project"

    def _scoped(self, rel: str, config: LintConfig) -> bool:
        return any(
            path_matches(rel, p)
            for p in config.workqueue_modules + config.bench_modules
        )

    def check_project(
        self, files: Sequence[SourceFile], config: LintConfig
    ) -> List[Violation]:
        graph = build_project_graph(files, config)
        found: List[Violation] = []
        for src in files:
            if not self._scoped(src.rel, config) or src.tree is None:
                continue
            resolver = graph.resolver_for(src.rel)
            for funcdef, cls in _function_defs(src.tree):
                found.extend(self._check_function(
                    src, funcdef, cls, resolver, graph
                ))
        return found

    def _check_function(
        self,
        src: SourceFile,
        funcdef: ast.AST,
        cls: Optional[str],
        resolver,
        graph: ProjectGraph,
    ) -> List[Violation]:
        tainted: Set[str] = set()

        def is_reading(expr: Optional[ast.AST]) -> bool:
            """Is ``expr`` an *absolute* monotonic reading?

            A difference of two readings is a duration — portable,
            legal.  Any other arithmetic on a reading (offsets,
            scaling) keeps its absolute character.
            """
            if expr is None:
                return False
            if isinstance(expr, ast.Call):
                hit = resolver.resolve(expr.func, cls)
                if hit is None:
                    return False
                kind, target = hit
                if kind == "ext":
                    return target in HOST_CLOCK_CALLS
                return PROP_MONOTONIC in graph.summary(target)
            if isinstance(expr, ast.Name):
                return expr.id in tainted
            if isinstance(expr, ast.BinOp):
                left, right = expr.left, expr.right
                if isinstance(expr.op, ast.Sub) and \
                        is_reading(left) and is_reading(right):
                    return False
                return is_reading(left) or is_reading(right)
            if isinstance(expr, ast.UnaryOp):
                return is_reading(expr.operand)
            if isinstance(expr, ast.IfExp):
                return is_reading(expr.body) or is_reading(expr.orelse)
            return False

        body_nodes = list(_walk_scope(funcdef))
        # Two passes so a loop-carried assignment taints uses that
        # appear textually earlier; booleans only turn on, so two
        # passes reach the fixed point of this flat lattice.
        for _ in range(2):
            for node in body_nodes:
                if isinstance(node, ast.Assign):
                    if is_reading(node.value):
                        for target in node.targets:
                            flat = (
                                target.elts
                                if isinstance(target,
                                              (ast.Tuple, ast.List))
                                else [target]
                            )
                            for t in flat:
                                name = terminal_name(t)
                                if name:
                                    tainted.add(name)
                elif isinstance(node, ast.AnnAssign):
                    if node.value is not None and \
                            is_reading(node.value):
                        name = terminal_name(node.target)
                        if name:
                            tainted.add(name)
                elif isinstance(node, ast.AugAssign):
                    if is_reading(node.value):
                        name = terminal_name(node.target)
                        if name:
                            tainted.add(name)

        found: List[Violation] = []
        for node in body_nodes:
            if not isinstance(node, ast.Dict):
                continue
            for value in node.values:
                if value is not None and is_reading(value):
                    found.append(Violation(
                        rule_id=self.rule_id, path=src.rel,
                        line=value.lineno, col=value.col_offset,
                        message=(
                            "monotonic clock reading serialized into "
                            "a document literal; monotonic values are "
                            "process-local and must never be compared "
                            "across process boundaries (serialize "
                            "durations — differences of readings — "
                            "or nothing)"
                        ),
                    ))
        return found


def _function_defs(
    tree: ast.AST,
) -> List[Tuple[ast.AST, Optional[str]]]:
    """Every function def with its directly-enclosing class (if any)."""
    out: List[Tuple[ast.AST, Optional[str]]] = []
    class_of: Dict[int, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    class_of[id(sub)] = node.name
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((node, class_of.get(id(node))))
    return out


def _walk_scope(funcdef: ast.AST):
    """Walk a function body without descending into nested defs (they
    are separate scopes, analyzed on their own)."""
    def visit(node: ast.AST):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                continue
            yield child
            yield from visit(child)
    yield from visit(funcdef)


# ----------------------------------------------------------------------
# `lint --why` / `lint --graph-stats` support
# ----------------------------------------------------------------------
_WHY_PROPS = {
    "REPRO012": PROP_WALLCLOCK,
    "REPRO013": PROP_RAWWRITE,
}


def explain_why(
    files: Sequence[SourceFile],
    config: LintConfig,
    rule_id: str,
    path_filter: Optional[str] = None,
) -> List[str]:
    """Chains (REPRO012/013) or findings (REPRO014) for ``--why``.

    With a path filter, every function in matching modules that
    carries the property is explained — including mid-chain helpers,
    not just scoped entry points; without one, only the rule's actual
    entry-point scope is walked.
    """
    if rule_id == "REPRO014":
        rule = ClockDisciplineRule()
        return [
            v.render() for v in rule.check_project(list(files), config)
            if path_filter is None or path_filter in v.path
        ]
    prop = _WHY_PROPS.get(rule_id)
    if prop is None:
        raise ValueError(
            f"--why supports REPRO012/REPRO013/REPRO014, not {rule_id}"
        )
    graph = build_project_graph(files, config)

    def in_default_scope(rel: str) -> bool:
        if rule_id == "REPRO012":
            return any(path_matches(rel, p)
                       for p in config.hot_path_modules)
        return _in_write_scope(rel, config)

    lines: List[str] = []
    for rel in sorted(graph.functions_by_module):
        if path_filter is not None:
            if path_filter not in rel:
                continue
        elif not in_default_scope(rel):
            continue
        for qualname, _lineno in graph.functions_in(rel):
            key = fkey(rel, qualname)
            if prop in graph.summary(key):
                lines.append(graph.describe_chain(key, prop))
    return lines


INTERPROC_RULES = (
    HotPathDeterminismRule(),
    AtomicReachabilityRule(),
    ClockDisciplineRule(),
)
