"""reprolint self-test: every rule must catch its own fixture.

A linter that silently stops matching is worse than no linter — CI
would keep passing while the invariants rot.  ``repro-sim lint
--self-test`` runs each rule against a known-violating fixture (must
fire) and a known-clean fixture (must stay silent), plus a framework
check that suppression comments actually suppress.  The same fixtures
drive ``tests/lint/``.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Tuple

from .framework import LintConfig, SourceFile, all_rules, lint_sources
from .rules_structure import schema_fields_fingerprint

FileSpec = Tuple[str, str]  # (repo-relative path, source text)


@dataclass(frozen=True)
class RuleFixture:
    """One rule's paired fixtures (plus any config override)."""

    rule_id: str
    violating: Tuple[FileSpec, ...]
    clean: Tuple[FileSpec, ...]
    config: LintConfig = field(default_factory=LintConfig)
    #: Minimum violations the violating fixture must produce.
    expect_min: int = 1


def _src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


_R1_VIOLATING = _src("""
    import os
    import random
    import time
    from time import perf_counter

    def stamp_run(stats):
        stats["finished_at"] = time.time()
        stats["token"] = os.urandom(8)
        stats["jitter"] = random.random()
        rng = random.Random()
        t0 = perf_counter()
        return rng, t0
""")

_R1_CLEAN = _src("""
    import random

    def make_rng(seed: int):
        return random.Random(seed)

    def stamp_run(stats, now_cycles: int):
        stats["finished_at_cycle"] = now_cycles
        return stats
""")

_R2_VIOLATING = _src("""
    def account(total, refs, ledger):
        warm_cycles = total / 4
        idle_cycles = 1.5
        busy_cycles = float(total)
        ledger.charge("l1_service", total / 2)
        report(cycles=total / refs)
        return warm_cycles, idle_cycles, busy_cycles
""")

_R2_CLEAN = _src("""
    def account(total, refs, ledger):
        warm_cycles = total // 4
        idle_cycles = 1
        cycle_ns = 40.0
        cycles_per_reference = total / refs
        ledger.charge("l1_service", total // 2)
        report(cycles=total - warm_cycles, cycle_ns=cycle_ns)
        return warm_cycles, idle_cycles
""")

_R3_VIOLATING = _src("""
    import json
    from pathlib import Path

    def save_result(path, payload):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    def save_summary(path, text):
        Path(path).write_text(text, encoding="utf-8")
""")

_R3_CLEAN = _src("""
    import json
    import os

    def atomic_write_text(path, text):
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def save_result(path, payload):
        atomic_write_text(path, json.dumps(payload))

    def load_result(path):
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
""")

_R4_VIOLATING = _src("""
    def drain(buffer):
        for entry in buffer:
            try:
                entry.flush()
            except Exception:
                pass

    def close(conn):
        try:
            conn.close()
        except:
            pass
""")

_R4_CLEAN = _src("""
    def drain(buffer, log):
        for entry in buffer:
            try:
                entry.flush()
            except OSError:
                pass  # narrow: flush failures are advisory here
            except Exception as exc:
                log.warning("drain failed: %r", exc)
                raise
""")

_R5_REGISTRY_VIOLATING = _src("""
    from . import fig_a, fig_ghost

    EXPERIMENTS = {
        module.EXPERIMENT_ID: module.run
        for module in (fig_a, fig_ghost)
    }
""")

_R5_REGISTRY_CLEAN = _src("""
    from . import fig_a, fig_b

    EXPERIMENTS = {
        module.EXPERIMENT_ID: module.run
        for module in (fig_a, fig_b)
    }
""")

_R5_MODULE = _src("""
    EXPERIMENT_ID = "%s"

    def run(settings=None):
        return None
""")

_R6_VIOLATING = _src("""
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class BufferSpec:
        depth: int = 4
        drain_cycles: int = 1

        def __post_init__(self):
            if self.depth < 1:
                raise ValueError(f"depth must be >= 1: {self.depth}")
""")

_R6_CLEAN = _src("""
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class BufferSpec:
        depth: int = 4
        drain_cycles: int = 1

        def __post_init__(self):
            if self.depth < 1:
                raise ValueError(f"depth must be >= 1: {self.depth}")
            if self.drain_cycles < 0:
                raise ValueError("drain_cycles must be >= 0")
""")

_R7_VIOLATING = _src("""
    def collect(item, bucket=[]):
        bucket.append(item)
        return bucket

    def tally(item, *, counts={}):
        counts[item] = counts.get(item, 0) + 1
        return counts
""")

_R7_CLEAN = _src("""
    def collect(item, bucket=None):
        bucket = [] if bucket is None else bucket
        bucket.append(item)
        return bucket
""")

_R8_FIELDS_OLD = ("schema", "run_id", "checksum", "stats")
_R8_FIELDS_NEW = ("schema", "run_id", "checksum", "stats", "comment")

_R8_MODULE = _src("""
    SCHEMA_VERSION = 2

    def save(identifier, stats):
        payload = {
            %s
        }
        return payload
""")


def _r8_module(fields: Sequence[str]) -> str:
    body = "\n            ".join(f'"{name}": None,' for name in fields)
    return _R8_MODULE % body


# REPRO012: the hot-path module itself is squeaky clean — the wall
# clock hides two modules away, behind a helper REPRO001 never scopes.
_R12_ENGINE_VIOLATING = _src("""
    from repro.trace.stamputil import stamp

    def step(state, n):
        return stamp(state, n)
""")

_R12_HELPER_VIOLATING = _src("""
    import time

    def now_tag():
        return time.time()

    def stamp(state, n):
        state["tag"] = now_tag() + n
        return state
""")

_R12_ENGINE_CLEAN = _R12_ENGINE_VIOLATING

_R12_HELPER_CLEAN = _src("""
    def now_tag():
        return 0

    def stamp(state, n):
        state["tag"] = now_tag() + n
        return state
""")

# REPRO013: a persistence entry point reaches a raw write through a
# helper module outside every atomic-write scope.
_R13_CAMPAIGN_VIOLATING = _src("""
    from repro.util.rawio import dump

    def save_result(path, doc):
        dump(path, doc)
""")

_R13_HELPER_VIOLATING = _src("""
    def dump(path, doc):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(doc)
""")

_R13_CAMPAIGN_CLEAN = _src("""
    from repro.util.rawio import load

    def restore_result(path):
        return load(path)
""")

_R13_HELPER_CLEAN = _src("""
    def load(path):
        with open(path, encoding="utf-8") as handle:
            return handle.read()
""")

# REPRO014: an absolute monotonic reading lands in a lease document;
# the clean twin serializes only a duration (reading minus reading).
_R14_VIOLATING = _src("""
    import time

    def lease_doc(job):
        now = time.monotonic()
        doc = {"job": job, "deadline": now}
        return doc
""")

_R14_CLEAN = _src("""
    import time

    def lease_doc(job, beat):
        return {"job": job, "beat": beat}

    def timed(fn):
        t0 = time.monotonic()
        fn()
        wall = time.monotonic() - t0
        return {"wall_s": wall}
""")

# REPRO015: one suppression whose violation is long gone, one naming a
# rule that never existed; the clean twin's suppression is live.
_R15_VIOLATING = _src("""
    def helper(value):
        return value + 1  # reprolint: disable=REPRO001  stale comment

    def other(value):
        return value  # reprolint: disable=REPRO999
""")

_R15_CLEAN = _src("""
    import time

    def stamp(stats):
        stats["at"] = time.time()  # reprolint: disable=REPRO001
        return stats
""")


def _r8_config(fields: Sequence[str]) -> LintConfig:
    return replace(
        LintConfig(),
        fingerprints_data={
            "schemas": {
                "campaign_result": {
                    "version": 2,
                    "fields": sorted(fields),
                    "fingerprint": schema_fields_fingerprint(fields),
                },
            },
        },
    )


def rule_fixtures() -> List[RuleFixture]:
    """The paired fixtures, one entry per shipped rule."""
    sim = "src/repro/sim"
    return [
        RuleFixture(
            "REPRO001",
            violating=((f"{sim}/fixture_clock.py", _R1_VIOLATING),),
            clean=((f"{sim}/fixture_clock.py", _R1_CLEAN),),
            expect_min=5,
        ),
        RuleFixture(
            "REPRO002",
            violating=((f"{sim}/fixture_cycles.py", _R2_VIOLATING),),
            clean=((f"{sim}/fixture_cycles.py", _R2_CLEAN),),
            expect_min=5,
        ),
        RuleFixture(
            "REPRO003",
            violating=((f"{sim}/campaign.py", _R3_VIOLATING),),
            clean=((f"{sim}/campaign.py", _R3_CLEAN),),
            expect_min=2,
        ),
        RuleFixture(
            "REPRO004",
            violating=((f"{sim}/fixture_swallow.py", _R4_VIOLATING),),
            clean=((f"{sim}/fixture_swallow.py", _R4_CLEAN),),
            expect_min=2,
        ),
        RuleFixture(
            "REPRO005",
            violating=(
                ("src/repro/experiments/registry.py",
                 _R5_REGISTRY_VIOLATING),
                ("src/repro/experiments/fig_a.py", _R5_MODULE % "fig-a"),
                ("src/repro/experiments/fig_b.py", _R5_MODULE % "fig-b"),
            ),
            clean=(
                ("src/repro/experiments/registry.py",
                 _R5_REGISTRY_CLEAN),
                ("src/repro/experiments/fig_a.py", _R5_MODULE % "fig-a"),
                ("src/repro/experiments/fig_b.py", _R5_MODULE % "fig-b"),
            ),
            expect_min=2,  # fig_b unregistered + fig_ghost unresolvable
        ),
        RuleFixture(
            "REPRO006",
            violating=((f"{sim}/config.py", _R6_VIOLATING),),
            clean=((f"{sim}/config.py", _R6_CLEAN),),
        ),
        RuleFixture(
            "REPRO007",
            violating=(("src/repro/fixture_defaults.py", _R7_VIOLATING),),
            clean=(("src/repro/fixture_defaults.py", _R7_CLEAN),),
            expect_min=2,
        ),
        RuleFixture(
            "REPRO008",
            violating=((f"{sim}/campaign.py",
                        _r8_module(_R8_FIELDS_NEW)),),
            clean=((f"{sim}/campaign.py", _r8_module(_R8_FIELDS_OLD)),),
            config=_r8_config(_R8_FIELDS_OLD),
        ),
        # REPRO009 shares REPRO003's mechanics but is scoped to the
        # pass-cache modules, so the same write-pattern fixtures apply
        # at the passcache path.
        RuleFixture(
            "REPRO009",
            violating=((f"{sim}/passcache.py", _R3_VIOLATING),),
            clean=((f"{sim}/passcache.py", _R3_CLEAN),),
            expect_min=2,
        ),
        # REPRO010 likewise: the write-pattern fixtures, scoped to the
        # work-queue fabric module (lease/done records are coordination
        # tokens, so the atomic contract is load-bearing there).
        RuleFixture(
            "REPRO010",
            violating=((f"{sim}/workqueue.py", _R3_VIOLATING),),
            clean=((f"{sim}/workqueue.py", _R3_CLEAN),),
            expect_min=2,
        ),
        # REPRO011 likewise: the write-pattern fixtures, scoped to the
        # bench-history module (the history is the perf-ratchet's
        # baseline, so a torn append skews the regression gate).
        RuleFixture(
            "REPRO011",
            violating=((f"{sim}/benchhistory.py", _R3_VIOLATING),),
            clean=((f"{sim}/benchhistory.py", _R3_CLEAN),),
            expect_min=2,
        ),
        # REPRO012: the engine file is identical in both fixtures —
        # only the helper two imports away changes, which is exactly
        # the hole the per-file REPRO001 cannot see.
        RuleFixture(
            "REPRO012",
            violating=(
                (f"{sim}/engine.py", _R12_ENGINE_VIOLATING),
                ("src/repro/trace/stamputil.py",
                 _R12_HELPER_VIOLATING),
            ),
            clean=(
                (f"{sim}/engine.py", _R12_ENGINE_CLEAN),
                ("src/repro/trace/stamputil.py", _R12_HELPER_CLEAN),
            ),
        ),
        RuleFixture(
            "REPRO013",
            violating=(
                (f"{sim}/campaign.py", _R13_CAMPAIGN_VIOLATING),
                ("src/repro/util/rawio.py", _R13_HELPER_VIOLATING),
            ),
            clean=(
                (f"{sim}/campaign.py", _R13_CAMPAIGN_CLEAN),
                ("src/repro/util/rawio.py", _R13_HELPER_CLEAN),
            ),
        ),
        RuleFixture(
            "REPRO014",
            violating=((f"{sim}/workqueue.py", _R14_VIOLATING),),
            clean=((f"{sim}/workqueue.py", _R14_CLEAN),),
        ),
        RuleFixture(
            "REPRO015",
            violating=((f"{sim}/fixture_stale.py", _R15_VIOLATING),),
            clean=((f"{sim}/fixture_stale.py", _R15_CLEAN),),
            expect_min=2,
        ),
    ]


def _lint_fixture(
    files: Sequence[FileSpec], rule_id: str, config: LintConfig
):
    rules = [r for r in all_rules() if r.rule_id == rule_id]
    sources = [SourceFile(rel, text) for rel, text in files]
    return lint_sources(sources, config=config, rules=rules)


def run_self_test() -> Tuple[bool, str]:
    """Run every rule against its fixtures; ``(ok, report text)``."""
    lines: List[str] = []
    ok = True
    fixtures = rule_fixtures()
    covered = {f.rule_id for f in fixtures}
    shipped = {r.rule_id for r in all_rules()}
    for missing in sorted(shipped - covered):
        ok = False
        lines.append(f"FAIL {missing}: no self-test fixture")
    for fixture in fixtures:
        result = _lint_fixture(
            fixture.violating, fixture.rule_id, fixture.config
        )
        hits = [
            v for v in result.violations if v.rule_id == fixture.rule_id
        ]
        if len(hits) < fixture.expect_min:
            ok = False
            lines.append(
                f"FAIL {fixture.rule_id}: violating fixture produced "
                f"{len(hits)} finding(s), expected >= "
                f"{fixture.expect_min}"
            )
        else:
            lines.append(
                f"ok   {fixture.rule_id}: caught {len(hits)} seeded "
                f"violation(s)"
            )
        clean = _lint_fixture(
            fixture.clean, fixture.rule_id, fixture.config
        )
        if clean.violations:
            ok = False
            lines.append(
                f"FAIL {fixture.rule_id}: clean fixture produced "
                f"{len(clean.violations)} finding(s): "
                f"{clean.violations[0].render()}"
            )
    lines.extend(_check_suppression())
    if any(line.startswith("FAIL") for line in lines[-2:]):
        ok = False
    status = "self-test PASSED" if ok else "self-test FAILED"
    return ok, "\n".join([*lines, status])


def _check_suppression() -> List[str]:
    """Framework check: disable comments must actually suppress."""
    suppressed = _src("""
        import time

        def stamp(stats):
            stats["at"] = time.time()  # reprolint: disable=REPRO001
            return stats
    """)
    result = _lint_fixture(
        (("src/repro/sim/fixture_suppress.py", suppressed),),
        "REPRO001", LintConfig(),
    )
    if result.violations:
        return ["FAIL suppression: disable comment did not suppress"]
    file_level = suppressed.replace(
        "import time",
        "# reprolint: disable-file=REPRO001\nimport time",
    ).replace("  # reprolint: disable=REPRO001", "")
    result = _lint_fixture(
        (("src/repro/sim/fixture_suppress.py", file_level),),
        "REPRO001", LintConfig(),
    )
    if result.violations:
        return ["FAIL suppression: disable-file comment did not suppress"]
    return ["ok   suppression: line- and file-level disables honoured"]


_FIXTURES_BY_RULE: Dict[str, RuleFixture] = {}


def fixture_for(rule_id: str) -> RuleFixture:
    """Lookup used by tests/lint (cached)."""
    if not _FIXTURES_BY_RULE:
        _FIXTURES_BY_RULE.update(
            {f.rule_id: f for f in rule_fixtures()}
        )
    return _FIXTURES_BY_RULE[rule_id]
