"""Robustness rules: REPRO003 (atomic persistence), REPRO004 (no
silent exception swallowing), REPRO007 (no mutable default arguments),
REPRO009 (atomic pass-cache writes).

REPRO003 protects the crash-safety contract of PR 1: every file that
lands in a campaign or metrics directory must appear atomically (temp
file + fsync + rename via ``atomic_write_text``), because ``fsck`` and
the quarantine machinery assume a visible ``*.json`` is either complete
or checksummed-corrupt — never a half-written artifact of a crash.

REPRO004 protects the fault harness's exception-flow assumptions: the
resilience layer routes cancellation and injected crashes through
``BaseException`` semantics, so a handler that catches broadly and does
*nothing* can eat a timeout or an injected fault and convert a test
failure into silence.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .astutil import canonical_call_name, import_aliases, walk_functions
from .framework import LintConfig, Rule, SourceFile, Violation, path_matches

#: open() modes that create or truncate — the dangerous ones.
_WRITE_MODES = ("w", "a", "x", "+")


def _open_write_mode(node: ast.Call) -> Optional[str]:
    """The mode string of an ``open()`` call if it writes, else None."""
    mode: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return None  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if any(flag in mode.value for flag in _WRITE_MODES):
            return mode.value
        return None
    return "<dynamic>"  # can't prove it's read-only: flag it


class AtomicPersistenceRule(Rule):
    """REPRO003 — persistence modules write via the atomic primitive."""

    rule_id = "REPRO003"
    title = "campaign/metrics writes go through the atomic writer"
    invariant = (
        "atomic persistence: fsck/quarantine (PR 1) assume a visible "
        "result file is complete; a bare open(..., 'w') can leave a "
        "torn file across a crash"
    )

    def applies_to(self, rel: str, config: LintConfig) -> bool:
        return any(
            path_matches(rel, p) for p in config.persistence_modules
        )

    def check_file(
        self, src: SourceFile, config: LintConfig
    ) -> List[Violation]:
        tree = src.tree
        if tree is None:
            return []
        aliases = import_aliases(tree)
        found: List[Violation] = []
        for node, func in walk_functions(tree):
            if not isinstance(node, ast.Call):
                continue
            if func is not None and func.name in config.atomic_writers:
                continue  # inside the blessed primitive itself
            name = canonical_call_name(node.func, aliases)
            if name == "open":
                mode = _open_write_mode(node)
                if mode is not None:
                    found.append(Violation(
                        rule_id=self.rule_id, path=src.rel,
                        line=node.lineno, col=node.col_offset,
                        message=(
                            f"open(..., {mode!r}) in a persistence "
                            f"module bypasses atomic_write_text; a "
                            f"crash mid-write leaves a torn file"
                        ),
                    ))
            elif isinstance(node.func, ast.Attribute) and \
                    node.func.attr in ("write_text", "write_bytes"):
                found.append(Violation(
                    rule_id=self.rule_id, path=src.rel,
                    line=node.lineno, col=node.col_offset,
                    message=(
                        f"Path.{node.func.attr}() in a persistence "
                        f"module bypasses atomic_write_text; a crash "
                        f"mid-write leaves a torn file"
                    ),
                ))
        return found


class PassCacheAtomicRule(AtomicPersistenceRule):
    """REPRO009 — pass-cache writes go through the atomic writer.

    Same mechanics as REPRO003 but scoped to the functional-pass cache
    modules (``pass-cache-modules`` in ``[tool.reprolint]``).  A
    separate id keeps the two contracts independently toggleable and
    their baselines distinct: the pass cache is *reconstructible* state
    (a lost entry costs a re-simulation, not data), but a torn entry
    that parses would defeat the checksum-or-miss guarantee the warm
    path's correctness rests on.
    """

    rule_id = "REPRO009"
    title = "pass-cache writes go through the atomic writer"
    invariant = (
        "pass-cache integrity: a cached functional pass is trusted as "
        "a substitute for re-simulation; a bare write can leave a torn "
        "entry that a crash exposes as a visible, unvalidated file"
    )

    def applies_to(self, rel: str, config: LintConfig) -> bool:
        return any(
            path_matches(rel, p) for p in config.pass_cache_modules
        )


class WorkQueueAtomicRule(AtomicPersistenceRule):
    """REPRO010 — spool/lease state writes go through atomic helpers.

    Same mechanics as REPRO003, scoped to the work-queue fabric modules
    (``workqueue-modules`` in ``[tool.reprolint]``).  The lease
    protocol's safety rests on a stronger property than crash-safe
    persistence: a lease or done record is a *coordination token*, and
    a torn one that another worker can observe breaks mutual exclusion,
    not just one file.  Every write in these modules must go through
    ``atomic_write_text`` (renewals, archives) or ``atomic_claim_text``
    (exclusive claims/publishes) — both listed in ``atomic-writers``.
    """

    rule_id = "REPRO010"
    title = "work-queue spool/lease writes go through atomic helpers"
    invariant = (
        "lease integrity: a visible lease or done record must be "
        "complete and checksummed — a bare open(..., 'w') can expose a "
        "torn coordination token, double-granting a job or losing a "
        "completion"
    )

    def applies_to(self, rel: str, config: LintConfig) -> bool:
        return any(
            path_matches(rel, p) for p in config.workqueue_modules
        )


class BenchHistoryAtomicRule(AtomicPersistenceRule):
    """REPRO011 — benchmark-history writes go through the atomic writer.

    Same mechanics as REPRO003, scoped to the bench-record emitters
    (``bench-modules`` in ``[tool.reprolint]``).  The history file is
    the perf-ratchet's *baseline*: ``bench diff`` derives its noise
    band from whatever records load, so a torn append would not crash
    anything — it would silently shrink or skew the baseline and let a
    real regression pass the gate.  Every write must go through
    ``atomic_write_text`` (whole-file staged rename), so a crash leaves
    the previous history intact, never a truncated tail line.
    """

    rule_id = "REPRO011"
    title = "benchmark-history writes go through the atomic writer"
    invariant = (
        "ratchet integrity: the bench history is the regression gate's "
        "baseline; a bare write can leave a torn JSONL tail that loads "
        "as a shorter history and widens or shifts the noise band"
    )

    def applies_to(self, rel: str, config: LintConfig) -> bool:
        return any(
            path_matches(rel, p) for p in config.bench_modules
        )


_BROAD_TYPES = {"Exception", "BaseException"}


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except:
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = node.attr if isinstance(node, ast.Attribute) else \
            getattr(node, "id", "")
        if name in _BROAD_TYPES:
            return True
    return False


def _handler_observable(handler: ast.ExceptHandler) -> bool:
    """Does the handler body do anything visible with the failure?

    Re-raising, returning a value, or calling *anything* (logging,
    journaling, best-effort reporting) counts; a body of ``pass``,
    bare ``continue``/``break`` or pure assignments swallows silently.
    """
    for node in ast.walk(ast.Module(body=handler.body,
                                    type_ignores=[])):
        if isinstance(node, (ast.Raise, ast.Call)):
            return True
        if isinstance(node, ast.Return) and node.value is not None:
            return True
    return False


class SilentSwallowRule(Rule):
    """REPRO004 — no broad except that silently swallows."""

    rule_id = "REPRO004"
    title = "no silent broad exception swallowing"
    invariant = (
        "fault-flow integrity: the resilience harness (PR 1) signals "
        "timeouts and injected crashes via exceptions; a silent broad "
        "handler converts an injected fault into a wrong answer"
    )

    def applies_to(self, rel: str, config: LintConfig) -> bool:
        return any(path_matches(rel, p) for p in config.exception_paths)

    def check_file(
        self, src: SourceFile, config: LintConfig
    ) -> List[Violation]:
        tree = src.tree
        if tree is None:
            return []
        found: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(node):
                continue
            if _handler_observable(node):
                continue
            caught = "bare except" if node.type is None else (
                f"except {ast.dump(node.type)}"
                if not isinstance(node.type, (ast.Name, ast.Attribute))
                else f"except {getattr(node.type, 'id', None) or node.type.attr}"  # noqa: E501
            )
            found.append(Violation(
                rule_id=self.rule_id, path=src.rel,
                line=node.lineno, col=node.col_offset,
                message=(
                    f"{caught} swallows without re-raise, logging or "
                    f"reporting; narrow the type or handle the failure "
                    f"observably"
                ),
            ))
        return found


_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.deque", "collections.Counter",
}


def _is_mutable_default(node: ast.AST, aliases) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = canonical_call_name(node.func, aliases)
        return name in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    """REPRO007 — no mutable default arguments anywhere."""

    rule_id = "REPRO007"
    title = "no mutable default arguments"
    invariant = (
        "run isolation: a mutable default shared across calls is "
        "cross-run state — exactly the kind of leak that makes two "
        "identical (config, trace, seed) runs diverge"
    )

    def check_file(
        self, src: SourceFile, config: LintConfig
    ) -> List[Violation]:
        tree = src.tree
        if tree is None:
            return []
        aliases = import_aliases(tree)
        found: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default, aliases):
                    found.append(Violation(
                        rule_id=self.rule_id, path=src.rel,
                        line=default.lineno, col=default.col_offset,
                        message=(
                            f"mutable default argument in "
                            f"{node.name}(); it is shared across "
                            f"calls — use None and create inside"
                        ),
                    ))
        return found


ROBUSTNESS_RULES = (
    AtomicPersistenceRule(), PassCacheAtomicRule(), WorkQueueAtomicRule(),
    BenchHistoryAtomicRule(), SilentSwallowRule(), MutableDefaultRule(),
)
