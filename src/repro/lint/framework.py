"""reprolint framework: rules, suppression, caching, baseline, runner.

The simulator's correctness story rests on invariants that are cheap to
*state* and expensive to *discover broken at runtime*: byte-identical
re-simulation (the resilience layer quarantines and retries on that
assumption), exact integer cycle conservation (the telemetry ledger
verifies buckets sum to the total), and atomic campaign persistence (a
crash mid-write must never leave a readable partial result).  This
package checks those invariants *statically*, over the repo's own
source, using only stdlib :mod:`ast`.

Pieces:

* :class:`Violation` — one finding, locatable and JSON-able;
* :class:`Rule` — base class; file-scope rules get one parsed
  :class:`SourceFile` at a time, project-scope rules see the whole file
  set at once (registry consistency, schema fingerprints);
* suppression — ``# reprolint: disable=REPRO001`` on the offending
  line, or ``# reprolint: disable-file=REPRO001`` anywhere in the first
  :data:`FILE_SUPPRESS_WINDOW` lines;
* :class:`LintCache` — per-file result cache keyed on content hash, so
  repeated runs re-analyze only what changed;
* baseline — pre-existing violations recorded in ``lint-baseline.json``
  are reported separately and do not fail the run, so new rules can be
  ratcheted in without a flag-day fix;
* :func:`lint_paths` / :func:`lint_sources` — the runner, over disk
  paths or in-memory sources (fixtures, tests).
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Bumped whenever rule behaviour changes; invalidates stale caches.
LINT_VERSION = 3

#: ``disable-file=`` comments are honoured only this early in a file,
#: so a whole-file opt-out is visible at the top where reviewers look.
FILE_SUPPRESS_WINDOW = 15

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)=([A-Za-z0-9_,\s]+)"
)


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Violation:
    """One rule finding at one source location."""

    rule_id: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: " \
               f"{self.rule_id}: {self.message}"

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    def fingerprint(self, source_line: str) -> str:
        """Stable identity for baselining: rule + path + the offending
        line's *text* (so unrelated edits shifting line numbers do not
        orphan baseline entries)."""
        key = f"{self.rule_id}|{self.path}|{source_line.strip()}"
        return hashlib.sha256(key.encode()).hexdigest()[:20]


# ----------------------------------------------------------------------
# Configuration ([tool.reprolint] in pyproject.toml)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SchemaSpec:
    """Where one schema-versioned payload lives (for REPRO008).

    ``locator`` picks the dict literal whose keys are the serialized
    field set: ``("assign", <function>, <variable>)`` finds
    ``<variable> = {...}`` inside ``def <function>``;
    ``("return", <class>, <method>)`` finds ``return {...}`` inside
    ``class <class>: def <method>``.
    """

    name: str
    module: str  # path suffix, e.g. "repro/sim/campaign.py"
    constant: str  # e.g. "SCHEMA_VERSION"
    locator: Tuple[str, str, str]


#: The repo's schema-versioned payloads, checked by REPRO008.
DEFAULT_SCHEMAS = (
    SchemaSpec(
        name="campaign_result",
        module="repro/sim/campaign.py",
        constant="SCHEMA_VERSION",
        locator=("assign", "save", "payload"),
    ),
    SchemaSpec(
        name="run_report",
        module="repro/sim/telemetry.py",
        constant="REPORT_SCHEMA",
        locator=("return", "RunReport", "to_dict"),
    ),
    SchemaSpec(
        name="pass_cache_entry",
        module="repro/sim/passcache.py",
        constant="PASSCACHE_SCHEMA",
        locator=("assign", "stream_to_dict", "doc"),
    ),
    SchemaSpec(
        name="replay_outcome",
        module="repro/sim/replaykernel.py",
        constant="REPLAY_SCHEMA",
        locator=("assign", "outcome_to_dict", "doc"),
    ),
    SchemaSpec(
        name="spool_manifest",
        module="repro/sim/workqueue.py",
        constant="SPOOL_SCHEMA",
        locator=("assign", "spec_to_dict", "doc"),
    ),
    SchemaSpec(
        name="work_lease",
        module="repro/sim/workqueue.py",
        constant="LEASE_SCHEMA",
        locator=("assign", "lease_to_dict", "doc"),
    ),
    SchemaSpec(
        name="bench_record",
        module="repro/sim/benchhistory.py",
        constant="BENCH_SCHEMA",
        locator=("assign", "record_to_dict", "doc"),
    ),
    SchemaSpec(
        name="done_record",
        module="repro/sim/workqueue.py",
        constant="DONE_SCHEMA",
        locator=("assign", "done_to_dict", "doc"),
    ),
    SchemaSpec(
        name="sampling_report",
        module="repro/sim/sampling.py",
        constant="SAMPLING_SCHEMA",
        locator=("assign", "estimate_to_dict", "doc"),
    ),
)


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Effective configuration; defaults mirror ``[tool.reprolint]``."""

    enabled: Tuple[str, ...] = ()  # empty means "all registered rules"
    #: Packages whose simulation results must be deterministic
    #: (REPRO001/REPRO002 guard these).
    deterministic_paths: Tuple[str, ...] = (
        "repro/sim", "repro/cache", "repro/memory", "repro/cpu", "repro/vm",
    )
    #: Modules that persist campaign/metrics state (REPRO003).
    persistence_modules: Tuple[str, ...] = (
        "repro/sim/campaign.py",
        "repro/sim/resilience.py",
        "repro/sim/telemetry.py",
        "repro/sim/faults.py",
    )
    #: Modules implementing the functional-pass cache (REPRO009 holds
    #: them to the same atomic-write contract as persistence modules).
    pass_cache_modules: Tuple[str, ...] = ("repro/sim/passcache.py",)
    #: Modules implementing the durable work-queue fabric (REPRO010:
    #: spool/lease state is a coordination token — a torn write breaks
    #: mutual exclusion, so the atomic-writer contract is mandatory).
    workqueue_modules: Tuple[str, ...] = ("repro/sim/workqueue.py",)
    #: Modules emitting benchmark records (REPRO011: the history is the
    #: perf-ratchet baseline — a torn append silently shrinks it, so
    #: BENCH emitters must write through the atomic primitives).
    bench_modules: Tuple[str, ...] = ("repro/sim/benchhistory.py",)
    #: Functions allowed to perform raw writes (the atomic primitives:
    #: staged rename, and the exclusive hard-link claim).
    atomic_writers: Tuple[str, ...] = (
        "atomic_write_text", "atomic_claim_text",
    )
    #: Packages where silent exception swallowing is forbidden
    #: (REPRO004; the faults harness depends on BaseException flow).
    exception_paths: Tuple[str, ...] = ("repro/sim", "repro/cache")
    #: The experiments package checked by REPRO005.
    experiments_package: str = "repro/experiments"
    #: Module whose dataclass fields REPRO006 audits.
    config_module: str = "repro/sim/config.py"
    #: Committed fingerprint file for REPRO008, relative to repo root.
    fingerprints_path: str = "src/repro/lint/schema_fingerprints.json"
    #: Schema payloads REPRO008 tracks.
    schemas: Tuple[SchemaSpec, ...] = DEFAULT_SCHEMAS
    #: Simulation hot-path modules: REPRO012 proves no call chain from
    #: any function here reaches a wall-clock/entropy source, even
    #: through helpers in modules the per-file rules never scope.
    hot_path_modules: Tuple[str, ...] = (
        "repro/sim/engine.py",
        "repro/sim/fastpath.py",
        "repro/sim/replaykernel.py",
        "repro/sim/passcache.py",
        "repro/sim/stackpass.py",
        "repro/sim/sampling.py",
    )
    #: Direct fingerprint injection (tests/self-test); wins over file.
    fingerprints_data: Optional[Mapping] = None
    #: On-disk project-graph cache (set by lint_paths with the cache
    #: enabled; None keeps the graph purely in-memory).
    graph_cache_path: Optional[str] = None


def _tuple(value) -> Tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    return tuple(str(v) for v in value)


def load_config(root: Path) -> LintConfig:
    """Read ``[tool.reprolint]`` from ``<root>/pyproject.toml``.

    Uses :mod:`tomllib` when available (Python >= 3.11); on older
    interpreters, or when the table is absent, the built-in defaults
    (which mirror the committed table) apply.
    """
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return LintConfig()
    try:
        import tomllib
    except ImportError:  # pragma: no cover — Python < 3.11
        return LintConfig()
    try:
        with open(pyproject, "rb") as handle:
            table = tomllib.load(handle)
    except (OSError, ValueError):
        return LintConfig()
    section = table.get("tool", {}).get("reprolint", {})
    if not isinstance(section, dict) or not section:
        return LintConfig()
    kwargs = {}
    mapping = {
        "enabled": "enabled",
        "deterministic-paths": "deterministic_paths",
        "persistence-modules": "persistence_modules",
        "pass-cache-modules": "pass_cache_modules",
        "workqueue-modules": "workqueue_modules",
        "bench-modules": "bench_modules",
        "atomic-writers": "atomic_writers",
        "exception-paths": "exception_paths",
        "hot-path-modules": "hot_path_modules",
    }
    for key, attr in mapping.items():
        if key in section:
            kwargs[attr] = _tuple(section[key])
    for key, attr in (
        ("experiments-package", "experiments_package"),
        ("config-module", "config_module"),
        ("fingerprints-path", "fingerprints_path"),
    ):
        if key in section:
            kwargs[attr] = str(section[key])
    return LintConfig(**kwargs)


def path_matches(rel: str, prefix: str) -> bool:
    """True when repo-relative ``rel`` lies under package ``prefix``.

    ``prefix`` is a package path like ``repro/sim`` or a module path
    like ``repro/sim/campaign.py``; ``rel`` may carry a leading
    ``src/`` (or any ancestor directories) that the prefix omits.
    """
    rel = rel.replace("\\", "/")
    needle = prefix.rstrip("/")
    if rel == needle or rel.endswith("/" + needle):
        return True
    return rel.startswith(needle + "/") or ("/" + needle + "/") in rel


# ----------------------------------------------------------------------
# Parsed sources
# ----------------------------------------------------------------------
class SourceFile:
    """One parsed module: text, AST, and its suppression comments."""

    def __init__(self, rel: str, text: str) -> None:
        self.rel = rel.replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.content_hash = hashlib.sha256(text.encode()).hexdigest()
        self._tree: Optional[ast.AST] = None
        self._syntax_error: Optional[SyntaxError] = None
        self._line_suppress: Optional[Dict[int, set]] = None
        self._file_suppress: Optional[set] = None

    @property
    def tree(self) -> Optional[ast.AST]:
        """The module AST, or ``None`` on a syntax error (reported as a
        REPRO000 violation by the runner)."""
        if self._tree is None and self._syntax_error is None:
            try:
                self._tree = ast.parse(self.text, filename=self.rel)
            except SyntaxError as exc:
                self._syntax_error = exc
        return self._tree

    @property
    def syntax_error(self) -> Optional[SyntaxError]:
        self.tree  # noqa: B018 — force the parse attempt
        return self._syntax_error

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def _scan_suppressions(self) -> None:
        line_map: Dict[int, set] = {}
        file_set: set = set()
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            kind, raw = match.groups()
            rules = {r.strip() for r in raw.split(",") if r.strip()}
            if kind == "disable":
                line_map.setdefault(lineno, set()).update(rules)
            elif lineno <= FILE_SUPPRESS_WINDOW:
                file_set.update(rules)
        self._line_suppress = line_map
        self._file_suppress = file_set

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Is ``rule_id`` disabled at ``line``?

        A line-level ``disable`` comment covers the line it sits on and,
        for multi-line statements, the line a comment-bearing statement
        *starts* on (rules report violations at node start lines).
        """
        if self._line_suppress is None:
            self._scan_suppressions()
        assert self._line_suppress is not None
        assert self._file_suppress is not None
        if rule_id in self._file_suppress or "all" in self._file_suppress:
            return True
        rules = self._line_suppress.get(line, ())
        return rule_id in rules or "all" in rules


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class Rule:
    """Base class: one invariant, one ID, one scope.

    Subclasses set :attr:`rule_id`, :attr:`title` and
    :attr:`invariant` (the *runtime* property the static check
    protects), and implement :meth:`check_file` (``scope = "file"``) or
    :meth:`check_project` (``scope = "project"``).
    """

    rule_id: str = "REPRO000"
    title: str = ""
    invariant: str = ""
    scope: str = "file"

    def applies_to(self, rel: str, config: LintConfig) -> bool:
        return True

    def check_file(
        self, src: SourceFile, config: LintConfig
    ) -> List[Violation]:
        return []

    def check_project(
        self, files: Sequence[SourceFile], config: LintConfig
    ) -> List[Violation]:
        return []


# ----------------------------------------------------------------------
# Per-file result cache
# ----------------------------------------------------------------------
class LintCache:
    """File-scope results keyed on content hash, persisted as JSON.

    Every entry key carries the run's *signature* — lint version,
    enabled rule set and effective ``[tool.reprolint]`` config (see
    :func:`cache_signature`) — so editing pyproject or switching
    ``--rule`` selections can never serve a stale result.  Entries for
    a bounded number of recent signatures coexist, so alternating
    between (say) a full run and a ``--rule REPRO002`` run does not
    thrash the cache.  Project-scope rules are never cached — they are
    cross-file by definition.
    """

    #: How many distinct (version, rules, config) generations keep
    #: their entries; older ones are evicted on save.
    KEEP_GENERATIONS = 4

    def __init__(self, path: Optional[Path], signature: str) -> None:
        self.path = path
        self.signature = signature
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict] = {}
        self._generations: List[str] = []
        self._dirty = False
        if path is not None and path.is_file():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                payload = {}
            generations = payload.get("generations")
            entries = payload.get("files", {})
            # Legacy single-signature payloads (no generation list)
            # are discarded wholesale: their keys carry no signature.
            if isinstance(generations, list) and \
                    isinstance(entries, dict):
                self._generations = [str(g) for g in generations]
                self._entries = entries

    def _key(self, rel: str) -> str:
        return f"{self.signature}|{rel}"

    def get(self, src: SourceFile) -> Optional[List[Violation]]:
        entry = self._entries.get(self._key(src.rel))
        if not entry or entry.get("hash") != src.content_hash:
            self.misses += 1
            return None
        self.hits += 1
        return [Violation(**v) for v in entry.get("violations", [])]

    def put(self, src: SourceFile, violations: List[Violation]) -> None:
        self._entries[self._key(src.rel)] = {
            "hash": src.content_hash,
            "violations": [v.to_dict() for v in violations],
        }
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        generations = [
            g for g in self._generations if g != self.signature
        ]
        generations.append(self.signature)  # most recent last
        generations = generations[-self.KEEP_GENERATIONS:]
        kept = set(generations)
        entries = {
            key: value for key, value in self._entries.items()
            if key.partition("|")[0] in kept
        }
        payload = {
            "version": LINT_VERSION,
            "generations": generations,
            "files": entries,
        }
        try:
            self.path.write_text(
                json.dumps(payload, indent=1), encoding="utf-8"
            )
        except OSError:  # cache is best-effort; never fail the lint
            pass


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class Baseline:
    """Accepted pre-existing violations, by fingerprint.

    Each entry carries a count so N identical offending lines in one
    file consume N baseline slots; a new, additional occurrence of the
    same pattern still fails the run.
    """

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self.counts: Dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.is_file():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cls()
        entries = payload.get("entries", {})
        if not isinstance(entries, dict):
            return cls()
        return cls({str(k): int(v) for k, v in entries.items()})

    @classmethod
    def from_violations(
        cls, pairs: Iterable[Tuple[Violation, str]]
    ) -> "Baseline":
        counts: Dict[str, int] = {}
        for violation, source_line in pairs:
            fp = violation.fingerprint(source_line)
            counts[fp] = counts.get(fp, 0) + 1
        return cls(counts)

    def save(self, path: Path) -> None:
        payload = {
            "comment": (
                "reprolint baseline: pre-existing violations ratcheted "
                "down over time; regenerate with "
                "`repro-sim lint --write-baseline`"
            ),
            "version": 1,
            "entries": dict(sorted(self.counts.items())),
        }
        path.write_text(json.dumps(payload, indent=1) + "\n",
                        encoding="utf-8")

    def partition(
        self, pairs: Sequence[Tuple[Violation, str]]
    ) -> Tuple[List[Violation], List[Violation]]:
        """Split violations into (new, baselined)."""
        budget = dict(self.counts)
        new: List[Violation] = []
        accepted: List[Violation] = []
        for violation, source_line in pairs:
            fp = violation.fingerprint(source_line)
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                accepted.append(violation)
            else:
                new.append(violation)
        return new, accepted


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclasses.dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation]
    baselined: List[Violation]
    files_checked: int
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def render(self, show_baselined: bool = False) -> str:
        lines = [v.render() for v in self.violations]
        if show_baselined:
            lines += [f"{v.render()} [baselined]" for v in self.baselined]
        summary = (
            f"{self.files_checked} file(s) checked: "
            f"{len(self.violations)} violation(s)"
        )
        if self.baselined:
            summary += f", {len(self.baselined)} baselined"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "files_checked": self.files_checked,
            "violations": [v.to_dict() for v in self.violations],
            "baselined": [v.to_dict() for v in self.baselined],
            "clean": self.clean,
        }


def _registered_rules() -> List[Rule]:
    from .rules_determinism import DETERMINISM_RULES
    from .rules_interproc import INTERPROC_RULES
    from .rules_robustness import ROBUSTNESS_RULES
    from .rules_structure import STRUCTURE_RULES

    return [
        *DETERMINISM_RULES, *ROBUSTNESS_RULES, *STRUCTURE_RULES,
        *INTERPROC_RULES,
    ]


def all_rules(config: Optional[LintConfig] = None) -> List[Rule]:
    """Every registered rule, filtered by the config's enabled set."""
    rules = sorted(_registered_rules(), key=lambda r: r.rule_id)
    if config is None or not config.enabled:
        return rules
    return [r for r in rules if r.rule_id in config.enabled]


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor holding a ``pyproject.toml`` (else ``start``)."""
    start = start.resolve()
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def collect_sources(
    paths: Sequence[Path], root: Path
) -> List[SourceFile]:
    """Read every ``.py`` file under ``paths`` into SourceFiles."""
    seen = set()
    sources: List[SourceFile] = []
    for path in paths:
        path = Path(path)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            file = file.resolve()
            if file in seen:
                continue
            seen.add(file)
            try:
                rel = file.relative_to(root).as_posix()
            except ValueError:
                rel = file.as_posix()
            try:
                text = file.read_text(encoding="utf-8")
            except OSError:
                continue
            sources.append(SourceFile(rel, text))
    return sources


def _check_one(
    src: SourceFile, rules: Sequence[Rule], config: LintConfig
) -> List[Violation]:
    if src.syntax_error is not None:
        exc = src.syntax_error
        return [Violation(
            rule_id="REPRO000", path=src.rel,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
        )]
    found: List[Violation] = []
    for rule in rules:
        if rule.scope != "file" or not rule.applies_to(src.rel, config):
            continue
        for violation in rule.check_file(src, config):
            if not src.suppressed(violation.line, rule.rule_id):
                found.append(violation)
    return found


def lint_sources(
    sources: Sequence[SourceFile],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
    cache: Optional[LintCache] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint already-loaded sources (fixtures, tests, editor buffers)."""
    config = config or LintConfig()
    rules = list(rules) if rules is not None else all_rules(config)
    by_rel = {src.rel: src for src in sources}
    pairs: List[Tuple[Violation, str]] = []
    for src in sources:
        cached = cache.get(src) if cache is not None else None
        if cached is None:
            found = _check_one(src, rules, config)
            if cache is not None:
                cache.put(src, found)
        else:
            found = cached
        pairs.extend((v, src.source_line(v.line)) for v in found)
    for rule in rules:
        if rule.scope != "project":
            continue
        for violation in rule.check_project(list(sources), config):
            src = by_rel.get(violation.path)
            if src is not None and src.suppressed(
                violation.line, rule.rule_id
            ):
                continue
            line_text = (
                src.source_line(violation.line) if src is not None else ""
            )
            pairs.append((violation, line_text))
    pairs.sort(key=lambda p: (p[0].path, p[0].line, p[0].rule_id))
    if baseline is not None:
        new, accepted = baseline.partition(pairs)
    else:
        new, accepted = [v for v, _ in pairs], []
    result = LintResult(
        violations=new,
        baselined=accepted,
        files_checked=len(sources),
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
    if cache is not None:
        cache.save()
    return result


def cache_signature(config: LintConfig, rules: Sequence[Rule]) -> str:
    """Fingerprint of everything that can change a file's findings:
    lint version, the enabled rule set, and the effective config.
    ``fingerprints_data`` and the graph-cache location are excluded —
    they only feed project-scope rules, which are never cached."""
    ids = ",".join(sorted(r.rule_id for r in rules))
    cfg = json.dumps(
        dataclasses.asdict(
            dataclasses.replace(
                config, fingerprints_data=None, graph_cache_path=None
            )
        ),
        sort_keys=True, default=str,
    )
    key = f"v{LINT_VERSION}|{ids}|{cfg}"
    return hashlib.sha256(key.encode()).hexdigest()[:16]


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
    use_cache: bool = False,
    baseline_path: Optional[Path] = None,
) -> LintResult:
    """Lint files/directories on disk; the importable API entry point.

    ``root`` (auto-detected from the first path when omitted) anchors
    repo-relative paths, the pyproject config, the cache file and the
    baseline file.
    """
    paths = [Path(p) for p in paths]
    if not paths:
        raise ValueError("lint_paths: no paths given")
    root = Path(root) if root is not None else find_repo_root(paths[0])
    config = config or load_config(root)
    if config.fingerprints_data is None:
        fp_path = root / config.fingerprints_path
        if fp_path.is_file():
            try:
                data = json.loads(fp_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = None
            if isinstance(data, dict):
                config = dataclasses.replace(
                    config, fingerprints_data=data
                )
    rules = list(rules) if rules is not None else all_rules(config)
    cache = None
    if use_cache:
        cache = LintCache(
            root / ".reprolint-cache.json",
            cache_signature(config, rules),
        )
        if config.graph_cache_path is None:
            config = dataclasses.replace(
                config,
                graph_cache_path=str(
                    root / ".reprolint-graph-cache.json"
                ),
            )
    baseline = None
    if baseline_path is None:
        baseline_path = root / "lint-baseline.json"
    if baseline_path.is_file():
        baseline = Baseline.load(baseline_path)
    sources = collect_sources(paths, root)
    return lint_sources(
        sources, config=config, rules=rules, cache=cache,
        baseline=baseline,
    )
