"""Trace-interval sampling with stratified error bounds.

The stack pass (:mod:`repro.sim.stackpass`) removed the per-organization
walk cost; what remains is trace *length* — every strategy still walks
every reference.  This module removes that wall for long traces the way
SimPoint-style interval selection does for CPU simulation: simulate a
few *representative* intervals and recombine their results into a
whole-trace estimate with an explicit error bar.

The pipeline, all seeded and deterministic:

1. **Segmentation** — the measured region (past the trace's warm
   boundary) splits into fixed-size windows of ``interval_refs``
   references; a short final window is kept and weighted by its length.

2. **Features** — one vectorized streaming pass computes, per interval:
   the reference mix (ifetch/load/store fractions), the distinct-block
   and never-seen-before block fractions (working-set size and delta),
   and a log2-bucketed reuse-distance histogram at a fixed 4-word block
   granularity.  Feature extraction is organization-independent, so one
   pass serves every swept configuration.

3. **Clustering** — seeded k-means (k-means++ initialization driven by
   ``random.Random(plan.seed)``) over z-normalized feature vectors.
   Identical intervals collapse: ``k`` is clamped to the number of
   *distinct* feature points, so a perfectly uniform trace degenerates
   to one cluster.  Each cluster's representative is the member nearest
   its centroid (earliest interval on ties).

4. **Warm-up** — each representative interval becomes a standalone
   trace: the R2000-style warm prefix
   (:func:`repro.trace.multiprogram.with_warm_prefix`) built from the
   ``warm_refs`` references preceding the interval primes cache state,
   and the interval body is the measured region.  Interval traces have
   their own content fingerprints, so they flow through the
   :mod:`~repro.sim.passcache` and the stack pass unchanged.

5. **Estimation** — a stratified estimator recombines representative
   results.  Denominators (reads, writes, references per cluster) are
   *exact*, counted from the trace; only the per-event rates come from
   the representatives.  The combined read-miss-ratio estimate is
   ``m̂ = Σ_c W_c·m_c`` with ``W_c = R_c / R`` (cluster read share) and
   its confidence half-width is the stratified binomial bound
   ``z·sqrt(Σ_c W_c²·m_c(1−m_c)·(1−r_c/R_c)/r_c)`` where ``r_c`` is the
   representative's read count (the finite-population factor makes a
   fully-sampled cluster contribute zero variance).  Cycle counts and
   memory traffic scale by exact per-cluster reference counts.  An
   estimate whose half-width exceeds ``plan.ci_bound`` is *refused*
   (:exc:`~repro.errors.SamplingError`) — sampling never silently
   returns a number with an error bar wider than the caller tolerates.

Validation mode (``plan.validate``) periodically runs the exact
fastpath alongside the estimate and records the true absolute error in
:class:`SamplingStats` (surfaced as ``sampling.*`` metrics and the
RunReport schema-7 ``sampling`` block).  Sampling is strictly opt-in:
nothing in the exact pipeline changes unless a plan is passed.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SamplingError
from ..trace.multiprogram import warm_prefix
from ..trace.record import RefKind, Trace
from .fastpath import (
    EventStream,
    ReplayOutcome,
    functional_pass,
    replay,
)
from .statistics import BufferCounters, CacheCounters, SimStats

if TYPE_CHECKING:  # pragma: no cover — import cycle guard only
    from .config import SystemConfig
    from .passcache import PassCache

#: Version of one serialized sampled-estimate document (see
#: :func:`estimate_to_dict`; ratcheted by reprolint REPRO008).
SAMPLING_SCHEMA = 1

#: Reuse-distance histogram buckets (log2-spaced; the last absorbs the
#: tail) and the fixed feature-extraction block granularity in words.
_RD_BUCKETS = 16
_BLOCK_SHIFT = 2  # 4-word blocks

#: k-means iteration cap; assignments almost always stabilize earlier.
_KMEANS_ITERS = 32


@dataclasses.dataclass(frozen=True)
class SamplingPlan:
    """How to segment, cluster and bound one sampled estimate."""

    interval_refs: int = 20_000
    n_clusters: int = 6
    #: Warm-up window preceding each representative interval, in
    #: references; ``-1`` means "one interval" (``interval_refs``).
    warm_refs: int = -1
    seed: int = 0
    #: Maximum tolerated confidence half-width on the read miss ratio;
    #: estimates beyond it are refused with :exc:`SamplingError`.
    ci_bound: float = 0.02
    confidence_z: float = 1.96
    validate: bool = False
    #: In batch contexts, every ``validate_period``-th job also runs the
    #: exact functional pass to measure true error.
    validate_period: int = 4

    def __post_init__(self):
        if self.interval_refs < 1:
            raise SamplingError(
                f"interval_refs must be >= 1: {self.interval_refs}"
            )
        if self.n_clusters < 1:
            raise SamplingError(
                f"n_clusters must be >= 1: {self.n_clusters}"
            )
        if self.ci_bound <= 0 or self.confidence_z <= 0:
            raise SamplingError(
                f"ci_bound and confidence_z must be positive: "
                f"{self.ci_bound}, {self.confidence_z}"
            )
        if self.validate_period < 1:
            raise SamplingError(
                f"validate_period must be >= 1: {self.validate_period}"
            )

    @property
    def warm_window(self) -> int:
        return self.interval_refs if self.warm_refs < 0 else self.warm_refs

    @classmethod
    def parse(cls, spec: str) -> "SamplingPlan":
        """Build a plan from a ``key=value,...`` spec string.

        Recognized keys: ``interval``, ``k`` (or ``clusters``),
        ``warm``, ``seed``, ``ci``, ``z``, ``period``.  The spec
        ``""``, ``"default"``, ``"1"`` or ``"on"`` selects the
        defaults.
        """
        spec = (spec or "").strip()
        if spec.lower() in ("", "default", "1", "on", "true"):
            return cls()
        kwargs: Dict[str, object] = {}
        keys = {
            "interval": ("interval_refs", int),
            "k": ("n_clusters", int),
            "clusters": ("n_clusters", int),
            "warm": ("warm_refs", int),
            "seed": ("seed", int),
            "ci": ("ci_bound", float),
            "z": ("confidence_z", float),
            "period": ("validate_period", int),
        }
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise SamplingError(
                    f"bad sampling spec token {token!r}; expected key=value"
                )
            key, _, raw = token.partition("=")
            entry = keys.get(key.strip().lower())
            if entry is None:
                raise SamplingError(
                    f"unknown sampling spec key {key.strip()!r}; known: "
                    f"{', '.join(sorted(keys))}"
                )
            field_name, cast = entry
            try:
                kwargs[field_name] = cast(raw.strip())
            except ValueError as exc:
                raise SamplingError(
                    f"bad sampling spec value {raw.strip()!r} for "
                    f"{key.strip()}: {exc}"
                ) from exc
        return cls(**kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        return (
            f"interval={self.interval_refs} k={self.n_clusters} "
            f"warm={self.warm_window} seed={self.seed} "
            f"ci={self.ci_bound:g}"
        )


@dataclasses.dataclass
class SamplingStats:
    """Counters describing what sampled runs actually did.

    Published to a :class:`~repro.sim.telemetry.MetricsRegistry` under
    ``sampling.*`` and surfaced in the RunReport ``sampling`` block.
    """

    selections: int = 0         #: jobs expanded through a selection
    intervals: int = 0          #: intervals segmented across selections
    clusters: int = 0           #: clusters formed across selections
    representatives: int = 0    #: representative streams requested
    refs_full: int = 0          #: references an exact walk would touch
    refs_sampled: int = 0       #: references actually simulated
    estimates: int = 0          #: stratified estimates produced
    refusals: int = 0           #: estimates refused (CI over bound)
    validations: int = 0        #: exact runs measured for true error
    true_error_max: float = 0.0  #: worst observed |true − estimated| miss ratio

    def as_dict(self) -> Dict:
        doc = dataclasses.asdict(self)
        doc["true_error_max"] = round(self.true_error_max, 6)
        return doc

    def merge(self, other: "SamplingStats") -> None:
        self.selections += other.selections
        self.intervals += other.intervals
        self.clusters += other.clusters
        self.representatives += other.representatives
        self.refs_full += other.refs_full
        self.refs_sampled += other.refs_sampled
        self.estimates += other.estimates
        self.refusals += other.refusals
        self.validations += other.validations
        self.true_error_max = max(self.true_error_max, other.true_error_max)

    def publish(self, registry) -> None:
        """Mirror the counters into a metrics registry."""
        for name, value in self.as_dict().items():
            if name == "true_error_max":
                if self.validations:
                    registry.gauge(f"sampling.{name}", float(value))
            else:
                registry.count(f"sampling.{name}", int(value))

    def note_error(self, error: float) -> None:
        self.validations += 1
        self.true_error_max = max(self.true_error_max, abs(error))


@dataclasses.dataclass
class ClusterInfo:
    """One stratum: member intervals, exact denominators, representative."""

    members: List[int]
    rep: int            #: representative interval index
    rep_refs: int       #: measured references in the representative
    refs: int           #: exact references across all members
    ifetches: int
    loads: int
    stores: int

    @property
    def reads(self) -> int:
        return self.ifetches + self.loads


@dataclasses.dataclass
class SampledSelection:
    """Deterministic interval selection for one (trace, plan) pair."""

    trace_name: str
    trace_fingerprint: str
    plan: SamplingPlan
    n_refs_full: int        #: full trace length (what an exact walk costs)
    measured_refs: int
    intervals: List[Tuple[int, int]]   #: absolute (start, stop) windows
    assignment: List[int]              #: interval index -> cluster index
    clusters: List[ClusterInfo]
    rep_traces: List[Trace]            #: warm-prefixed interval traces

    @property
    def n_intervals(self) -> int:
        return len(self.intervals)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def refs_sampled(self) -> int:
        """References simulated per configuration, warm prefixes included."""
        return sum(len(t) for t in self.rep_traces)

    @property
    def reads_total(self) -> int:
        return sum(c.reads for c in self.clusters)


@dataclasses.dataclass
class SampledPassGroup:
    """A sampled job's functional result: selection + one stream per
    cluster representative (what ``run_functional_passes(sampling=...)``
    returns in place of a single :class:`EventStream`)."""

    selection: SampledSelection
    streams: List[EventStream]


@dataclasses.dataclass
class SampledEstimate:
    """A whole-trace estimate with its confidence interval."""

    stats: SimStats
    read_miss_ratio: float
    ci_half_width: float
    ci_bound: float
    confidence_z: float
    n_intervals: int
    n_clusters: int
    refs_full: int
    refs_sampled: int
    trace_fingerprint: str
    plan_spec: str
    true_read_miss_ratio: Optional[float] = None
    true_cycles: Optional[int] = None

    @property
    def refs_reduction(self) -> float:
        """Exact-walk references per sampled reference (the speed lever)."""
        if not self.refs_sampled:
            return 0.0
        return self.refs_full / self.refs_sampled

    @property
    def abs_error(self) -> Optional[float]:
        """|true − estimated| read miss ratio, when validation ran."""
        if self.true_read_miss_ratio is None:
            return None
        return abs(self.true_read_miss_ratio - self.read_miss_ratio)


def estimate_to_dict(estimate: SampledEstimate) -> Dict:
    """Serialize one estimate as a schema-versioned document."""
    doc = {
        "schema": SAMPLING_SCHEMA,
        "trace": estimate.stats.trace_name,
        "config": estimate.stats.config_summary,
        "plan": estimate.plan_spec,
        "trace_fingerprint": estimate.trace_fingerprint,
        "n_intervals": estimate.n_intervals,
        "n_clusters": estimate.n_clusters,
        "refs_full": estimate.refs_full,
        "refs_sampled": estimate.refs_sampled,
        "refs_reduction": estimate.refs_reduction,
        "read_miss_ratio": estimate.read_miss_ratio,
        "ci_half_width": estimate.ci_half_width,
        "ci_bound": estimate.ci_bound,
        "confidence_z": estimate.confidence_z,
        "cycles": estimate.stats.cycles,
        "cycles_per_reference": estimate.stats.cycles_per_reference,
        "true_read_miss_ratio": estimate.true_read_miss_ratio,
        "true_cycles": estimate.true_cycles,
        "abs_error": estimate.abs_error,
    }
    return doc


# ----------------------------------------------------------------------
# Segmentation and features
# ----------------------------------------------------------------------
def _interval_bounds(trace: Trace, plan: SamplingPlan) -> List[Tuple[int, int]]:
    """Fixed-size windows over the measured region, short tail kept."""
    warm = trace.warm_boundary
    n = len(trace)
    if warm >= n:
        raise SamplingError(
            f"trace {trace.name!r} has no measured region to sample "
            f"(warm boundary {warm} of {n} references)"
        )
    step = plan.interval_refs
    return [
        (start, min(start + step, n)) for start in range(warm, n, step)
    ]


def _interval_features(
    trace: Trace, bounds: Sequence[Tuple[int, int]]
) -> Tuple[np.ndarray, np.ndarray]:
    """One streaming pass: per-interval feature matrix and ref-mix counts.

    Returns ``(features, mix)`` where ``features`` is
    ``(n_intervals, 5 + _RD_BUCKETS)`` — reference-mix fractions,
    distinct-block fraction, new-block fraction, reuse-distance
    histogram fractions — and ``mix`` is the exact
    ``(n_intervals, 3)`` ifetch/load/store counts the estimator's
    denominators come from.
    """
    n = len(trace)
    warm = trace.warm_boundary
    step = bounds[0][1] - bounds[0][0] if len(bounds) == 1 else (
        bounds[1][0] - bounds[0][0]
    )
    n_iv = len(bounds)
    lengths = np.array([stop - start for start, stop in bounds], dtype=np.int64)
    # Previous-occurrence index of each reference's (pid, block), over
    # the whole trace so warm-region history counts as "seen".
    combined = (trace.pids.astype(np.int64) << 40) | (
        trace.addrs >> _BLOCK_SHIFT
    )
    order = np.argsort(combined, kind="stable")
    svals = combined[order]
    prev = np.full(n, -1, dtype=np.int64)
    if n > 1:
        same = svals[1:] == svals[:-1]
        prev[order[1:][same]] = order[:-1][same]
    iv_index = np.repeat(np.arange(n_iv, dtype=np.int64), lengths)
    kinds_m = trace.kinds[warm:].astype(np.int64)
    prev_m = prev[warm:]
    pos_m = np.arange(warm, n, dtype=np.int64)
    mix = np.bincount(
        iv_index * 3 + kinds_m, minlength=n_iv * 3
    ).reshape(n_iv, 3)
    seen = prev_m >= 0
    dist = pos_m[seen] - prev_m[seen]
    bucket = np.minimum(
        np.floor(np.log2(dist)).astype(np.int64), _RD_BUCKETS - 1
    )
    rd = np.bincount(
        iv_index[seen] * _RD_BUCKETS + bucket, minlength=n_iv * _RD_BUCKETS
    ).reshape(n_iv, _RD_BUCKETS)
    new = np.bincount(iv_index[~seen], minlength=n_iv)
    # First touch of a block *within its interval*: previous occurrence
    # (if any) lies before the interval's start.
    iv_start = warm + iv_index * step
    first_here = prev_m < iv_start
    distinct = np.bincount(iv_index[first_here], minlength=n_iv)
    denom = lengths.astype(np.float64)
    features = np.column_stack([
        mix / denom[:, None],
        distinct / denom,
        new / denom,
        rd / denom[:, None],
    ])
    return features, mix


def _kmeans(
    points: np.ndarray, k: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded k-means; returns ``(assignment, centers)``.

    ``k`` clamps to the number of *distinct* points, so a degenerate
    input (every interval identical) collapses to a single cluster.
    Initialization is k-means++ driven by ``random.Random(seed)``; all
    arithmetic is deterministic for fixed inputs.
    """
    n = len(points)
    distinct = np.unique(points, axis=0)
    k = min(k, len(distinct))
    if k <= 1:
        return np.zeros(n, dtype=np.int64), points.mean(
            axis=0, keepdims=True
        )
    rng = random.Random(seed)
    centers = [distinct[rng.randrange(len(distinct))]]
    while len(centers) < k:
        d2 = np.min(
            ((distinct[:, None, :] - np.asarray(centers)[None, :, :]) ** 2)
            .sum(axis=2),
            axis=1,
        )
        total = float(d2.sum())
        if total <= 0.0:  # pragma: no cover — distinct points exclude this
            break
        pick = int(np.searchsorted(np.cumsum(d2), rng.random() * total))
        centers.append(distinct[min(pick, len(distinct) - 1)])
    centers_arr = np.asarray(centers, dtype=np.float64)
    assign = np.zeros(n, dtype=np.int64)
    for _ in range(_KMEANS_ITERS):
        d2 = ((points[:, None, :] - centers_arr[None, :, :]) ** 2).sum(axis=2)
        assign = d2.argmin(axis=1)
        updated = centers_arr.copy()
        for c in range(len(centers_arr)):
            members = points[assign == c]
            if len(members):
                updated[c] = members.mean(axis=0)
        if np.array_equal(updated, centers_arr):
            break
        centers_arr = updated
    return assign, centers_arr


def select_intervals(
    trace: Trace,
    plan: SamplingPlan,
    stats: Optional[SamplingStats] = None,
) -> SampledSelection:
    """Segment, featurize and cluster one trace; memoized by content.

    The selection depends only on the trace contents and the plan —
    never on the cache configuration — so one selection serves every
    organization in a sweep.
    """
    key = (trace.content_fingerprint(), plan.interval_refs,
           plan.n_clusters, plan.warm_window, plan.seed)
    selection = _SELECTION_CACHE.get(key)
    if selection is None:
        selection = _build_selection(trace, plan)
        _SELECTION_CACHE[key] = selection
    if stats is not None:
        stats.selections += 1
        stats.intervals += selection.n_intervals
        stats.clusters += selection.n_clusters
        stats.refs_full += selection.n_refs_full
        stats.refs_sampled += selection.refs_sampled
    return selection


_SELECTION_CACHE: Dict[Tuple, SampledSelection] = {}


def clear_selection_cache() -> None:
    """Drop memoized selections (tests use this to bound memory)."""
    _SELECTION_CACHE.clear()


def _build_selection(trace: Trace, plan: SamplingPlan) -> SampledSelection:
    bounds = _interval_bounds(trace, plan)
    features, mix = _interval_features(trace, bounds)
    # z-normalize columns so the mix fractions and the histogram tail
    # weigh comparably; constant columns stay put.
    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std[std == 0.0] = 1.0
    normalized = (features - mean) / std
    assign, centers = _kmeans(normalized, plan.n_clusters, plan.seed)
    clusters: List[ClusterInfo] = []
    rep_traces: List[Trace] = []
    compact: List[int] = [-1] * len(centers)
    # Clusters ordered by representative interval for stable output.
    reps: List[Tuple[int, int]] = []
    for c in range(len(centers)):
        members = np.flatnonzero(assign == c)
        if not len(members):
            continue
        d2 = ((normalized[members] - centers[c]) ** 2).sum(axis=1)
        reps.append((int(members[d2.argmin()]), c))
    reps.sort()
    assignment = [0] * len(bounds)
    for new_index, (rep, c) in enumerate(reps):
        compact[c] = new_index
        members = [int(m) for m in np.flatnonzero(assign == c)]
        for m in members:
            assignment[m] = new_index
        start, stop = bounds[rep]
        clusters.append(ClusterInfo(
            members=members,
            rep=rep,
            rep_refs=stop - start,
            refs=int(sum(bounds[m][1] - bounds[m][0] for m in members)),
            ifetches=int(mix[members, 0].sum()),
            loads=int(mix[members, 1].sum()),
            stores=int(mix[members, 2].sum()),
        ))
        rep_traces.append(_interval_trace(trace, start, stop, plan))
    return SampledSelection(
        trace_name=trace.name,
        trace_fingerprint=trace.content_fingerprint(),
        plan=plan,
        n_refs_full=len(trace),
        measured_refs=len(trace) - trace.warm_boundary,
        intervals=bounds,
        assignment=assignment,
        clusters=clusters,
        rep_traces=rep_traces,
    )


def _interval_trace(
    trace: Trace, start: int, stop: int, plan: SamplingPlan
) -> Trace:
    """One representative interval as a standalone warm-prefixed trace."""
    name = f"{trace.name}@{start}"
    body = trace.slice(start, stop, name=name).with_warm_boundary(0)
    h_start = max(0, start - plan.warm_window)
    if h_start >= start:
        return body
    prefix = warm_prefix(trace.slice(h_start, start))
    kinds, addrs, pids = prefix.kinds, prefix.addrs, prefix.pids
    ifetch = int(RefKind.IFETCH)
    if int(kinds[-1]) == ifetch and int(body.kinds[0]) != ifetch:
        # Couplet pairing would merge the prefix's trailing ifetch with
        # the body's leading data reference, pulling that couplet — and
        # its measured references — into the warm region.  Re-touching
        # the prefix's most recent data block keeps the warm boundary
        # on a couplet boundary without warming any new block.
        data = np.flatnonzero(kinds != ifetch)
        j = int(data[-1]) if len(data) else len(kinds) - 1
        kinds = np.append(kinds, np.uint8(int(RefKind.LOAD)))
        addrs = np.append(addrs, addrs[j])
        pids = np.append(pids, pids[j])
    return Trace(
        np.concatenate([kinds, body.kinds]),
        np.concatenate([addrs, body.addrs]),
        np.concatenate([pids, body.pids]),
        name=name,
        warm_boundary=len(kinds),
    )


# ----------------------------------------------------------------------
# The stratified estimator
# ----------------------------------------------------------------------
def _cluster_scales(
    cluster: ClusterInfo, stream: EventStream
) -> Tuple[float, float, float, float]:
    """(ifetch, load, store, refs) scale factors for one stratum.

    Each scales the representative's event counts up to the cluster's
    exact denominator; an empty representative side falls back to the
    reference-count scale so a sparse interval cannot zero a stratum.
    """
    refs_scale = (
        cluster.refs / stream.n_refs_measured
        if stream.n_refs_measured else 0.0
    )
    i_scale = (
        cluster.ifetches / stream.icache.reads
        if stream.icache.reads else refs_scale
    )
    d_scale = (
        cluster.loads / stream.dcache.reads
        if stream.dcache.reads else refs_scale
    )
    w_scale = (
        cluster.stores / stream.dcache.writes
        if stream.dcache.writes else refs_scale
    )
    return i_scale, d_scale, w_scale, refs_scale


def estimate_miss_ratio(
    selection: SampledSelection, streams: Sequence[EventStream]
) -> float:
    """The stratified read-miss-ratio estimate from streams alone."""
    reads = selection.reads_total
    if not reads:
        return 0.0
    misses = 0.0
    for cluster, stream in zip(selection.clusters, streams):
        i_scale, d_scale, _w, _r = _cluster_scales(cluster, stream)
        misses += stream.icache.read_misses * i_scale
        misses += stream.dcache.read_misses * d_scale
    return misses / reads


def _ci_half_width(
    selection: SampledSelection,
    streams: Sequence[EventStream],
    z: float,
) -> float:
    """Stratified binomial confidence half-width on the read miss ratio."""
    reads = selection.reads_total
    if not reads:
        return 0.0
    variance = 0.0
    for cluster, stream in zip(selection.clusters, streams):
        r = stream.icache.reads + stream.dcache.reads
        if not r or not cluster.reads:
            continue
        m = (stream.icache.read_misses + stream.dcache.read_misses) / r
        weight = cluster.reads / reads
        fpc = max(0.0, 1.0 - r / cluster.reads)
        variance += weight * weight * m * (1.0 - m) * fpc / r
    return z * math.sqrt(variance)


def estimate_cycles(
    selection: SampledSelection, outcomes: Sequence[ReplayOutcome]
) -> float:
    """Estimated measured cycle count at one timing point."""
    return sum(
        outcome.cycles * (cluster.refs / cluster.rep_refs)
        for cluster, outcome in zip(selection.clusters, outcomes)
        if cluster.rep_refs
    )


def estimate_stats(
    selection: SampledSelection,
    streams: Sequence[EventStream],
    outcomes: Sequence[ReplayOutcome],
    cycle_ns: float,
    stats: Optional[SamplingStats] = None,
) -> SampledEstimate:
    """Recombine representative results into a whole-trace estimate.

    ``streams`` and ``outcomes`` are parallel to
    ``selection.clusters``.  Raises :exc:`SamplingError` when the
    confidence half-width exceeds the plan's ``ci_bound``.
    """
    plan = selection.plan
    half = _ci_half_width(selection, streams, plan.confidence_z)
    if half > plan.ci_bound:
        if stats is not None:
            stats.refusals += 1
        raise SamplingError(
            f"sampled estimate for {selection.trace_name!r} refused: "
            f"{plan.confidence_z:g}-sigma half-width {half:.4f} exceeds "
            f"the ci bound {plan.ci_bound:g}; enlarge intervals or k, "
            f"or raise ci="
        )
    icache = [0.0] * 9
    dcache = [0.0] * 9
    # A stratified estimate is fractional until the final rounding;
    # the "frac" suffix marks it as such for the integer-cycle lint.
    cycles_frac = total_mem_reads = total_mem_writes = total_mem_busy = 0.0
    couplets = pushes = full_stalls = match_stalls = 0.0
    max_occupancy = 0
    for cluster, stream, outcome in zip(selection.clusters, streams, outcomes):
        i_scale, d_scale, w_scale, refs_scale = _cluster_scales(
            cluster, stream
        )
        icache[1] += stream.icache.read_misses * i_scale
        icache[5] += stream.icache.fetched_words * i_scale
        dcache[1] += stream.dcache.read_misses * d_scale
        dcache[5] += stream.dcache.fetched_words * d_scale
        dcache[6] += stream.dcache.writeback_blocks * d_scale
        dcache[7] += stream.dcache.writeback_words_full * d_scale
        dcache[8] += stream.dcache.writeback_words_dirty * d_scale
        dcache[3] += stream.dcache.write_misses * w_scale
        dcache[4] += stream.dcache.bypass_writes * w_scale
        cycles_frac += outcome.cycles * refs_scale
        total_mem_reads += outcome.memory_reads * refs_scale
        total_mem_writes += outcome.memory_writes * refs_scale
        total_mem_busy += outcome.memory_busy_cycles * refs_scale
        couplets += stream.n_couplets_measured * refs_scale
        pushes += outcome.buffer.pushes * refs_scale
        full_stalls += outcome.buffer.full_stalls * refs_scale
        match_stalls += outcome.buffer.match_stalls * refs_scale
        max_occupancy = max(max_occupancy, outcome.buffer.max_occupancy)
    ifetches = sum(c.ifetches for c in selection.clusters)
    loads = sum(c.loads for c in selection.clusters)
    stores = sum(c.stores for c in selection.clusters)
    est_stats = SimStats(
        trace_name=selection.trace_name,
        config_summary=streams[0].config_summary if streams else "",
        cycle_ns=cycle_ns,
        cycles=int(round(cycles_frac)),
        total_cycles=int(round(cycles_frac)),
        warm_cycles=0,
        n_refs=selection.measured_refs,
        n_couplets=int(round(couplets)),
        icache=CacheCounters(
            reads=ifetches,
            read_misses=int(round(icache[1])),
            fetched_words=int(round(icache[5])),
        ),
        dcache=CacheCounters(
            reads=loads,
            read_misses=int(round(dcache[1])),
            writes=stores,
            write_misses=int(round(dcache[3])),
            bypass_writes=int(round(dcache[4])),
            fetched_words=int(round(dcache[5])),
            writeback_blocks=int(round(dcache[6])),
            writeback_words_full=int(round(dcache[7])),
            writeback_words_dirty=int(round(dcache[8])),
        ),
        lower=None,
        buffer=BufferCounters(
            pushes=int(round(pushes)),
            full_stalls=int(round(full_stalls)),
            match_stalls=int(round(match_stalls)),
            max_occupancy=max_occupancy,
        ),
        memory_reads=int(round(total_mem_reads)),
        memory_writes=int(round(total_mem_writes)),
        memory_busy_cycles=int(round(total_mem_busy)),
    )
    if stats is not None:
        stats.estimates += 1
    return SampledEstimate(
        stats=est_stats,
        read_miss_ratio=estimate_miss_ratio(selection, streams),
        ci_half_width=half,
        ci_bound=plan.ci_bound,
        confidence_z=plan.confidence_z,
        n_intervals=selection.n_intervals,
        n_clusters=selection.n_clusters,
        refs_full=selection.n_refs_full,
        refs_sampled=selection.refs_sampled,
        trace_fingerprint=selection.trace_fingerprint,
        plan_spec=plan.describe(),
    )


# ----------------------------------------------------------------------
# End-to-end sampled simulation
# ----------------------------------------------------------------------
def representative_streams(
    config: "SystemConfig",
    selection: SampledSelection,
    seed: int = 0,
    cache: Optional["PassCache"] = None,
    stats: Optional[SamplingStats] = None,
) -> List[EventStream]:
    """One functional pass per cluster representative, cache-aware.

    Interval traces carry their own content fingerprints, so pass-cache
    entries for them compose exactly like full-trace entries.
    """
    streams = []
    for rep_trace in selection.rep_traces:
        if cache is not None:
            streams.append(cache.get_or_run(config, rep_trace, seed=seed))
        else:
            streams.append(functional_pass(config, rep_trace, seed=seed))
    if stats is not None:
        stats.representatives += len(streams)
    return streams


def sampled_fast_simulate(
    config: "SystemConfig",
    trace: Trace,
    plan: SamplingPlan,
    seed: int = 0,
    cache: Optional["PassCache"] = None,
    stats: Optional[SamplingStats] = None,
) -> SampledEstimate:
    """Sampled drop-in for :func:`repro.sim.fastpath.fast_simulate`.

    Simulates only the representative intervals (with warm prefixes)
    and recombines them.  With ``plan.validate`` the exact fastpath
    also runs and the estimate carries the true miss ratio and cycle
    count alongside the estimated ones.
    """
    selection = select_intervals(trace, plan, stats=stats)
    streams = representative_streams(
        config, selection, seed=seed, cache=cache, stats=stats
    )
    outcomes = [
        replay(
            stream, config.memory, config.cycle_ns,
            write_buffer_depth=config.l1.write_buffer_depth,
        )
        for stream in streams
    ]
    estimate = estimate_stats(
        selection, streams, outcomes, config.cycle_ns, stats=stats
    )
    if plan.validate:
        if cache is not None:
            exact_stream = cache.get_or_run(config, trace, seed=seed)
        else:
            exact_stream = functional_pass(config, trace, seed=seed)
        exact_outcome = replay(
            exact_stream, config.memory, config.cycle_ns,
            write_buffer_depth=config.l1.write_buffer_depth,
        )
        exact_reads = exact_stream.icache.reads + exact_stream.dcache.reads
        exact_misses = (
            exact_stream.icache.read_misses + exact_stream.dcache.read_misses
        )
        estimate.true_read_miss_ratio = (
            exact_misses / exact_reads if exact_reads else 0.0
        )
        estimate.true_cycles = exact_outcome.cycles
        if stats is not None:
            stats.note_error(estimate.abs_error or 0.0)
    return estimate


def sampled_simulate(
    config: "SystemConfig",
    trace: Trace,
    seed: int = 0,
    plan_spec: str = "",
    cache_dir: str = "",
    validate: bool = False,
):
    """Campaign-friendly sampled runner returning plain ``SimStats``.

    Module-level (so ``functools.partial`` over it pickles into worker
    processes) and keyed by the plan *spec string* rather than a plan
    object.  ``validate`` runs the exact fastpath alongside every call —
    campaign workers have no shared job index to period on.
    """
    plan = SamplingPlan.parse(plan_spec)
    if validate:
        plan = dataclasses.replace(plan, validate=True)
    cache = None
    if cache_dir:
        from .passcache import PassCache

        cache = PassCache(cache_dir)
    return sampled_fast_simulate(
        config, trace, plan, seed=seed, cache=cache
    ).stats


def validate_group(
    config: "SystemConfig",
    trace: Trace,
    group: SampledPassGroup,
    seed: int = 0,
    cache: Optional["PassCache"] = None,
    stats: Optional[SamplingStats] = None,
) -> float:
    """Measure one job's true functional miss-ratio error.

    Runs the exact functional pass (cache-aware) and returns
    ``|true − estimated|`` on the read miss ratio, recording it into
    ``stats`` — the periodic ground-truth check batch sampling uses.
    """
    if cache is not None:
        exact = cache.get_or_run(config, trace, seed=seed)
    else:
        exact = functional_pass(config, trace, seed=seed)
    reads = exact.icache.reads + exact.dcache.reads
    true_ratio = (
        (exact.icache.read_misses + exact.dcache.read_misses) / reads
        if reads else 0.0
    )
    error = abs(true_ratio - estimate_miss_ratio(group.selection, group.streams))
    if stats is not None:
        stats.note_error(error)
    return error
