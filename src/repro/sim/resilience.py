"""Fault-tolerant campaign execution.

The paper's methodology is a sweep: hundreds of (configuration, trace)
simulations whose raw files are re-read by analysis.  At that scale the
failure modes stop being hypothetical — a hung run, a worker OOM, a
truncated file, a full disk — and a single one must not lose or poison
the campaign.  This module is the orchestration half of the resilience
story (the persistence half lives in :mod:`repro.sim.campaign`):

* :class:`CampaignExecutor` runs each (config, trace) job in its own
  worker *process* with a wall-clock timeout, so a crash or hang is
  contained to that run; failed runs are retried with exponential
  backoff and deterministic jitter (:class:`RetryPolicy`);
* :class:`CampaignManifest` journals per-run status
  (``ok | failed | timeout | quarantined``) to ``manifest.json`` after
  every run, atomically, so an interrupted sweep reports exactly what it
  has and analysis can flag missing points instead of aborting;
* results are verified immediately after saving; a corrupt file is
  quarantined and the run re-simulated, so every ``ok`` entry in the
  manifest is backed by a validated, byte-deterministic result file.

Fault injection hooks (``fault_plan``) are consulted at each seam —
worker start, save, post-save — so the whole layer is testable without
real crashes, clock time, or flaky sleeps; see :mod:`repro.sim.faults`.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import multiprocessing
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CampaignError, CorruptResultError, RunTimeoutError
from ..trace.record import Trace
from .campaign import Campaign, atomic_write_text, run_id
from .config import SystemConfig
from .fastpath import fast_simulate
from .statistics import SimStats

#: Final statuses a run can journal.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_QUARANTINED = "quarantined"
STATUSES = (STATUS_OK, STATUS_FAILED, STATUS_TIMEOUT, STATUS_QUARANTINED)

#: Exit code a deliberately crashed worker dies with (fault injection).
CRASH_EXIT_CODE = 113


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    The jitter is derived from a hash of (run id, attempt) rather than a
    random source, so two executions of the same sweep back off
    identically — reproducibility extends to the failure paths.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: float = 0.25

    def delay_s(self, identifier: str, attempt: int) -> float:
        """Backoff before retrying ``attempt`` (1-based) of a run."""
        base = min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1))
        )
        digest = hashlib.sha256(f"{identifier}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:4], "big") / 2**32
        return base * (1.0 + self.jitter * unit)


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
@dataclass
class RunRecord:
    """One run's journal entry in the campaign manifest."""

    run_id: str
    status: str = STATUS_FAILED
    trace: str = ""
    config: str = ""
    attempts: int = 0
    quarantines: int = 0
    cached: bool = False
    error: str = ""

    def to_dict(self) -> Dict:
        return {
            "status": self.status,
            "trace": self.trace,
            "config": self.config,
            "attempts": self.attempts,
            "quarantines": self.quarantines,
            "cached": self.cached,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, identifier: str, payload: Dict) -> "RunRecord":
        record = cls(run_id=identifier)
        for name in (
            "status", "trace", "config", "attempts", "quarantines",
            "cached", "error",
        ):
            if name in payload:
                setattr(record, name, payload[name])
        return record


class CampaignManifest:
    """Per-run status journal, persisted atomically after every update.

    Loading is tolerant by design: a missing manifest starts empty and a
    corrupt one is moved aside (``manifest.json.corrupt``) and rebuilt —
    the journal exists to survive crashes, so it must never be the thing
    that crashes a resumed sweep.
    """

    SCHEMA = 1

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.runs: Dict[str, RunRecord] = {}

    @classmethod
    def for_campaign(cls, campaign: Campaign) -> "CampaignManifest":
        return cls.load(campaign.manifest_path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignManifest":
        manifest = cls(path)
        if not manifest.path.exists():
            return manifest
        try:
            payload = json.loads(manifest.path.read_text(encoding="utf-8"))
            runs = payload["runs"]
            if not isinstance(runs, dict):
                raise TypeError("runs is not an object")
        except (OSError, ValueError, KeyError, TypeError):
            aside = manifest.path.with_name(manifest.path.name + ".corrupt")
            serial = 0
            while aside.exists():
                serial += 1
                aside = manifest.path.with_name(
                    f"{manifest.path.name}.corrupt.{serial}"
                )
            manifest.path.replace(aside)
            return manifest
        for identifier, entry in runs.items():
            if isinstance(entry, dict):
                manifest.runs[identifier] = RunRecord.from_dict(
                    identifier, entry
                )
        return manifest

    def save(self) -> None:
        payload = {
            "schema": self.SCHEMA,
            "runs": {
                identifier: record.to_dict()
                for identifier, record in sorted(self.runs.items())
            },
        }
        atomic_write_text(self.path, json.dumps(payload, indent=1))

    def record(self, record: RunRecord) -> None:
        """Journal one run's (latest) outcome and persist immediately."""
        self.runs[record.run_id] = record
        self.save()

    def counts(self) -> Dict[str, int]:
        tally = {status: 0 for status in STATUSES}
        for record in self.runs.values():
            tally[record.status] = tally.get(record.status, 0) + 1
        return tally

    def incomplete(self) -> List[RunRecord]:
        """Runs whose final status is anything but ``ok`` — the missing
        points an analysis over this campaign must flag."""
        return [
            record
            for _, record in sorted(self.runs.items())
            if record.status != STATUS_OK
        ]

    def render(self) -> str:
        counts = self.counts()
        total = len(self.runs)
        lines = [
            f"{total} run(s): "
            + ", ".join(f"{counts.get(s, 0)} {s}" for s in STATUSES)
        ]
        for record in self.incomplete():
            detail = f" [{record.error}]" if record.error else ""
            lines.append(
                f"  {record.status:>11}  {record.run_id}"
                f"  ({record.attempts} attempt(s)){detail}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Worker protocol
# ----------------------------------------------------------------------
def make_deadline_check(
    timeout_s: float, clock: Callable[[], float] = time.monotonic
) -> Callable[[], None]:
    """A cooperative-cancellation hook for :meth:`Engine.run`.

    Raises :exc:`~repro.errors.RunTimeoutError` once ``timeout_s`` has
    elapsed since creation, measured on ``clock`` — ``time.monotonic``
    by default, *never* the wall clock, so an NTP step, DST change or
    operator clock-set mid-run can neither fire a deadline early nor
    postpone it.  The same discipline governs every interval in this
    module and in :mod:`repro.sim.workqueue` (lease TTLs, heartbeat
    stall detection, re-claim backoff): wall-clock timestamps are never
    compared.
    """
    deadline = clock() + timeout_s

    def check() -> None:
        if clock() > deadline:
            raise RunTimeoutError(
                f"run exceeded {timeout_s:g}s (cooperative cancel)"
            )

    return check


def _supports_kwarg(fn: Callable, name: str) -> bool:
    try:
        return name in inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False


def _worker_main(
    conn,
    config: SystemConfig,
    trace: Trace,
    simulate_fn: Callable,
    seed: int,
    fault_plan,
    job_index: int,
    attempt: int,
    timeout_s: Optional[float],
    collect_metrics: bool = False,
) -> None:
    """Entry point of one isolated simulation worker process.

    With ``collect_metrics`` the worker also assembles a
    :class:`~repro.sim.telemetry.RunReport` (cycle-attribution ledger if
    the simulator supports the ``telemetry`` kwarg, plus wall-clock and
    RSS measured *inside* the worker process, where they are honest) and
    ships it alongside the stats as ``("ok", (stats, report_dict))``.
    """
    try:
        if fault_plan is not None:
            fault_plan.worker_faults(job_index, attempt)
        kwargs = {}
        if seed and _supports_kwarg(simulate_fn, "seed"):
            kwargs["seed"] = seed
        if timeout_s and _supports_kwarg(simulate_fn, "cancel_check"):
            kwargs["cancel_check"] = make_deadline_check(timeout_s)
        if not collect_metrics:
            stats = simulate_fn(config, trace, **kwargs)
            conn.send(("ok", stats))
        else:
            from .telemetry import (
                CycleLedger, MetricsRegistry, StageTimer, Telemetry,
                build_run_report,
            )

            ledger = None
            if _supports_kwarg(simulate_fn, "telemetry"):
                ledger = CycleLedger()
                kwargs["telemetry"] = Telemetry(ledger=ledger)
            registry = MetricsRegistry()
            if _supports_kwarg(simulate_fn, "registry"):
                kwargs["registry"] = registry
            timer = StageTimer()
            with timer.stage("simulate"), registry.span("worker.simulate"):
                stats = simulate_fn(config, trace, **kwargs)
            simulator = (
                "engine"
                if getattr(simulate_fn, "__name__", "") == "simulate"
                else "fastpath"
            )
            report = build_run_report(
                stats, ledger, timer,
                run_identifier=run_id(config, trace),
                simulator=simulator,
                n_refs_total=len(trace),
                config=config,
                # Telemetry-enabled replays always price through the
                # scalar path (the batch kernel takes no telemetry
                # handle), so metrics-collecting campaign runs record
                # one scalar replay apiece.
                replay=(
                    {"scalar_replays": 1}
                    if simulator == "fastpath" and ledger is not None
                    else None
                ),
                registry=registry,
            )
            conn.send(("ok", (stats, report.to_dict())))
    except RunTimeoutError as exc:
        _best_effort_send(conn, ("timeout", str(exc)))
    except BaseException as exc:  # noqa: BLE001 — full containment
        _best_effort_send(conn, ("failed", f"{type(exc).__name__}: {exc}"))
    finally:
        # Closing a pipe the parent already tore down raises OSError (or
        # ValueError on an already-closed handle); the worker is exiting
        # either way, so swallowing those two — and only those two — is
        # safe.  Anything else here is a real bug and must surface.
        try:
            conn.close()
        except (OSError, ValueError):
            pass


def _best_effort_send(conn, message) -> None:
    """Send on a pipe whose far end may already be gone.

    The parent kills workers on timeout, so a send can hit a closed or
    broken pipe (OSError/BrokenPipeError, or ValueError on a closed
    handle).  Those specific failures are expected and dropped — the
    parent's journal records the run's fate regardless; any other
    exception propagates to the containment boundary in
    :func:`_worker_main`, which reports it as a failed run.
    """
    try:
        conn.send(message)
    except (OSError, ValueError):
        pass


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunJob:
    """One (configuration, trace) cell of a sweep."""

    config: SystemConfig
    trace: Trace
    simulate_fn: Callable[..., SimStats] = fast_simulate
    seed: int = 0


def sweep_jobs(
    configs: Sequence[SystemConfig],
    traces: Sequence[Trace],
    simulate_fn: Callable[..., SimStats] = fast_simulate,
    seed: int = 0,
) -> List[RunJob]:
    """The cartesian (config x trace) job list of a campaign sweep."""
    return [
        RunJob(config=config, trace=trace, simulate_fn=simulate_fn, seed=seed)
        for config in configs
        for trace in traces
    ]


@dataclass
class CampaignReport:
    """What a sweep returns: every run's journal entry, in job order."""

    records: List[RunRecord] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        tally = {status: 0 for status in STATUSES}
        for record in self.records:
            tally[record.status] = tally.get(record.status, 0) + 1
        return tally

    @property
    def all_ok(self) -> bool:
        return all(r.status == STATUS_OK for r in self.records)

    def render(self) -> str:
        counts = self.counts()
        lines = [
            f"{len(self.records)} run(s): "
            + ", ".join(f"{counts.get(s, 0)} {s}" for s in STATUSES)
        ]
        for record in self.records:
            if record.status != STATUS_OK:
                detail = f" [{record.error}]" if record.error else ""
                lines.append(
                    f"  {record.status:>11}  {record.run_id}"
                    f"  ({record.attempts} attempt(s)){detail}"
                )
        return "\n".join(lines)


class CampaignExecutor:
    """Run a sweep with worker isolation, timeouts and bounded retries.

    Each job runs in a dedicated worker process (fork/spawn per the
    platform default), so a segfault, OOM kill or runaway loop is
    contained to that run: the parent records ``failed`` or ``timeout``
    in the manifest and the sweep continues (``keep_going=True``) or
    stops scheduling further work and raises
    :exc:`~repro.errors.CampaignError` (``keep_going=False``).

    ``sleep_fn`` injects the backoff sleep (tests pass a recorder, so no
    test ever waits on a real clock); ``fault_plan`` injects
    deterministic failures (see :mod:`repro.sim.faults`).

    ``backend`` selects the execution fabric: ``"pool"`` (default) is
    the in-process fork pool above; ``"spool"`` drives the same jobs
    through the durable on-disk work queue of
    :mod:`repro.sim.workqueue` — identical results and journal, but the
    sweep's state lives entirely on disk, so killing this coordinator
    at any point loses nothing and re-running resumes from the spool.
    """

    def __init__(
        self,
        campaign: Campaign,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        keep_going: bool = True,
        fault_plan=None,
        sleep_fn: Callable[[float], None] = time.sleep,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
        grace_s: float = 5.0,
        collect_metrics: bool = False,
        backend: str = "pool",
    ) -> None:
        if jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {jobs}")
        if timeout_s is not None and timeout_s <= 0:
            raise CampaignError(f"timeout must be positive, got {timeout_s}")
        if backend not in ("pool", "spool"):
            raise CampaignError(
                f"backend must be pool|spool, got {backend!r}"
            )
        self.campaign = campaign
        self.jobs = jobs
        self.timeout_s = timeout_s
        #: When set, workers also build telemetry RunReports (ledger +
        #: wall clock + RSS) persisted under ``<campaign>/metrics/``,
        #: and :meth:`run_sweep` writes a sweep-level summary.
        self.collect_metrics = collect_metrics
        #: Extra wall time past ``timeout_s`` before the parent
        #: terminates a worker — room for a simulator that honors the
        #: cooperative cancel hook to report its own RunTimeoutError
        #: (a cleaner death than SIGTERM).
        self.grace_s = max(0.0, grace_s)
        self.retry = retry or RetryPolicy()
        self.keep_going = keep_going
        self.fault_plan = fault_plan
        self.backend = backend
        #: Optional per-attempt hook, called with the 1-based attempt
        #: number just before each execution attempt.  The spool worker
        #: uses it to renew its lease; a raised
        #: :exc:`~repro.errors.LeaseLostError` abandons the job.
        self.on_attempt: Optional[Callable[[int], None]] = None
        #: Fabric counter totals of the last spool-backend sweep
        #: (leases issued/expired/reclaimed, heartbeats, worker
        #: lifetimes); empty for the pool backend.
        self.fabric: Dict[str, int] = {}
        self._sleep = sleep_fn
        self._mp = mp_context or multiprocessing.get_context()
        self.manifest = CampaignManifest.for_campaign(campaign)
        self._manifest_lock = threading.Lock()
        self._abort = threading.Event()

    # -- one isolated attempt ------------------------------------------
    def _execute_attempt(
        self, job: RunJob, job_index: int, attempt: int
    ) -> Tuple[str, object]:
        """Run one attempt in a worker process.

        Returns ``("ok", stats)``, ``("timeout", message)`` or
        ``("failed", message)``; never raises for worker-side faults.
        """
        receiver, sender = self._mp.Pipe(duplex=False)
        proc = self._mp.Process(
            target=_worker_main,
            args=(
                sender, job.config, job.trace, job.simulate_fn, job.seed,
                self.fault_plan, job_index, attempt, self.timeout_s,
                self.collect_metrics,
            ),
            daemon=True,
        )
        try:
            proc.start()
            sender.close()
            proc.join(
                None if self.timeout_s is None
                else self.timeout_s + self.grace_s
            )
            if proc.is_alive():
                proc.terminate()
                proc.join(5.0)
                if proc.is_alive():  # pragma: no cover — stuck in kernel
                    proc.kill()
                    proc.join()
                return (
                    STATUS_TIMEOUT,
                    f"worker exceeded {self.timeout_s:g}s wall clock; "
                    f"terminated",
                )
            try:
                # poll() is also true at EOF — a worker that died hard
                # closed its end without sending; recv then raises.
                message = receiver.recv() if receiver.poll() else None
            except (EOFError, OSError):
                message = None
        finally:
            receiver.close()
        if message is None:
            return (
                STATUS_FAILED,
                f"worker died without a result (exit code {proc.exitcode})",
            )
        kind, payload = message
        if kind == "ok":
            return (STATUS_OK, payload)
        if kind == "timeout":
            return (STATUS_TIMEOUT, payload)
        return (STATUS_FAILED, payload)

    # -- one run with retries ------------------------------------------
    def run_record(self, job_index: int, job: RunJob) -> RunRecord:
        """Execute one job (cache check, retries, save, verify) and
        return its finished :class:`RunRecord` *without* journaling it.

        This is the execution core shared by the pool backend (which
        journals via :meth:`_run_one`) and the spool workers of
        :mod:`repro.sim.workqueue` (which publish durable done records
        instead).  The optional :attr:`on_attempt` hook fires before
        every attempt; an exception it raises propagates (the spool
        worker's lease renewal raises
        :exc:`~repro.errors.LeaseLostError` there to abandon a
        reclaimed job).
        """
        identifier = run_id(job.config, job.trace)
        record = RunRecord(
            run_id=identifier,
            trace=job.trace.name,
            config=job.config.describe(),
        )
        plan = self.fault_plan

        # Cached result: trust it only after validation.
        if identifier in self.campaign:
            try:
                self.campaign.verify(identifier)
                record.status = STATUS_OK
                record.cached = True
                return record
            except CorruptResultError:
                self.campaign.quarantine(identifier)
                record.quarantines += 1

        last_status, last_error = STATUS_FAILED, "never attempted"
        for attempt in range(1, self.retry.max_attempts + 1):
            record.attempts = attempt
            if attempt > 1:
                self._sleep(self.retry.delay_s(identifier, attempt - 1))
            if self.on_attempt is not None:
                self.on_attempt(attempt)
            if plan is not None and plan.is_simulated_hang(job_index, attempt):
                last_status = STATUS_TIMEOUT
                last_error = "injected hang (simulated timeout)"
                continue
            status, payload = self._execute_attempt(job, job_index, attempt)
            if status != STATUS_OK:
                last_status, last_error = status, str(payload)
                continue
            report_payload = None
            if self.collect_metrics and isinstance(payload, tuple):
                payload, report_payload = payload
            try:
                if plan is not None:
                    plan.save_faults(job_index, attempt)
                self.campaign.save(identifier, payload)
                if plan is not None:
                    plan.post_save_faults(
                        job_index, attempt, self.campaign._path(identifier)
                    )
                self.campaign.verify(identifier)
            except OSError as exc:
                last_status = STATUS_FAILED
                last_error = f"save failed: {exc}"
                continue
            except CorruptResultError as exc:
                self.campaign.quarantine(identifier)
                record.quarantines += 1
                last_status = STATUS_QUARANTINED
                last_error = str(exc)
                continue
            if report_payload is not None:
                try:
                    self.campaign.save_report(report_payload)
                except OSError:
                    pass  # metrics are advisory; never fail the run
            record.status = STATUS_OK
            record.error = ""
            return record

        record.status = (
            STATUS_TIMEOUT if last_status == STATUS_TIMEOUT else last_status
        )
        record.error = last_error
        return record

    def _run_one(self, job_index: int, job: RunJob) -> RunRecord:
        record = self.run_record(job_index, job)
        self._journal(record)
        if record.status != STATUS_OK and not self.keep_going:
            self._abort.set()
        return record

    def _journal(self, record: RunRecord) -> None:
        with self._manifest_lock:
            self.manifest.record(record)

    def _write_summary(self, fabric: Optional[Dict] = None) -> None:
        """Aggregate every stored RunReport into ``metrics/summary.json``.

        Per-run reports are advisory, so one that fails schema
        validation (a truncated write, a foreign document) is skipped
        rather than sinking the whole summary.
        """
        from .telemetry import RunReport, aggregate_reports

        reports = []
        for payload in self.campaign.load_reports():
            try:
                reports.append(RunReport.from_dict(payload))
            except CorruptResultError:
                continue
        if reports:
            try:
                self.campaign.save_summary(
                    aggregate_reports(reports, fabric=fabric)
                )
            except OSError:
                pass  # advisory, like the per-run documents

    # -- the sweep ------------------------------------------------------
    def run_sweep(self, jobs: Sequence[RunJob]) -> CampaignReport:
        """Execute every job; return the per-run journal.

        With ``keep_going=False`` the first exhausted run stops new jobs
        from being scheduled and the sweep raises
        :exc:`~repro.errors.CampaignError` once in-flight work settles.
        """
        if self.backend == "spool":
            return self._run_sweep_spool(list(jobs))
        jobs = list(jobs)
        self._abort.clear()
        slots: List[Optional[RunRecord]] = [None] * len(jobs)

        def guarded(index: int, job: RunJob) -> Optional[RunRecord]:
            if self._abort.is_set():
                return None
            return self._run_one(index, job)

        if self.jobs <= 1 or len(jobs) <= 1:
            for index, job in enumerate(jobs):
                slots[index] = guarded(index, job)
        else:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                futures = [
                    pool.submit(guarded, index, job)
                    for index, job in enumerate(jobs)
                ]
                for index, future in enumerate(futures):
                    slots[index] = future.result()
        report = CampaignReport(
            records=[record for record in slots if record is not None]
        )
        if self.collect_metrics:
            self._write_summary()
        if not self.keep_going and not report.all_ok:
            bad = [r for r in report.records if r.status != STATUS_OK]
            skipped = len(jobs) - len(report.records)
            raise CampaignError(
                f"{len(bad)} run(s) did not complete "
                f"({skipped} never scheduled); first: "
                f"{bad[0].run_id}: {bad[0].status}: {bad[0].error}"
            )
        return report

    def _run_sweep_spool(self, jobs: List[RunJob]) -> CampaignReport:
        """Run the sweep through the durable on-disk work queue.

        Jobs are materialized into ``<campaign>/spool/`` and drained by
        ``self.jobs`` persistent workers, each with its own
        :class:`~repro.sim.workqueue.WorkQueue` observer over the same
        directory — exactly the multi-process protocol, in threads.
        All sweep state lives on disk: killing the coordinator loses
        nothing, and re-running resumes past every published job.
        """
        from .workqueue import SpoolWorker, WorkQueue

        self._abort.clear()
        queue = WorkQueue.for_campaign(self.campaign, retry=self.retry)
        ids = queue.enqueue_jobs(jobs)
        jobs_by_id = {
            identifier: (index, job)
            for index, (identifier, job) in enumerate(zip(ids, jobs))
        }
        workers = [
            SpoolWorker(
                WorkQueue.for_campaign(self.campaign, retry=self.retry),
                self.campaign,
                jobs_by_id,
                name=f"spool:w{n}",
                timeout_s=self.timeout_s,
                grace_s=self.grace_s,
                retry=self.retry,
                fault_plan=self.fault_plan,
                keep_going=self.keep_going,
                collect_metrics=self.collect_metrics,
                mp_context=self._mp,
                sleep_fn=self._sleep,
                journal_fn=self._journal,
                stop_event=self._abort,
            )
            for n in range(self.jobs)
        ]
        if len(workers) == 1:
            workers[0].run()
        else:
            threads = [
                threading.Thread(target=worker.run, daemon=True)
                for worker in workers
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        fabric: Dict[str, int] = {"workers": len(workers)}
        for worker in workers:
            for name, count in worker.queue.counters.items():
                fabric[name] = fabric.get(name, 0) + count
            fabric["worker_lifetime_ms"] = (
                fabric.get("worker_lifetime_ms", 0)
                + int(worker.lifetime_s * 1000)
            )
        self.fabric = fabric
        # The spool's done records are the source of truth; fold them
        # (plus any poison quarantines) back into the manifest so a
        # resumed or multi-process sweep reports completions this
        # executor never journaled itself.
        with self._manifest_lock:
            self.manifest = queue.sync_manifest(self.campaign)
        records = [
            self.manifest.runs[identifier]
            for identifier in ids
            if identifier in self.manifest.runs
        ]
        report = CampaignReport(records=records)
        if self.collect_metrics:
            self._write_summary(fabric=fabric)
        if not self.keep_going and not report.all_ok:
            bad = [r for r in report.records if r.status != STATUS_OK]
            skipped = len(jobs) - len(report.records)
            raise CampaignError(
                f"{len(bad)} run(s) did not complete "
                f"({skipped} never scheduled); first: "
                f"{bad[0].run_id}: {bad[0].status}: {bad[0].error}"
            )
        return report
