"""Simulators: system configuration, reference engine, fastpath, stats."""

from .config import L1Spec, LowerLevelSpec, SystemConfig, baseline_config
from .engine import Engine, LowerCacheLevel, simulate
from .fastpath import (
    EventStream,
    ReplayOutcome,
    assemble_stats,
    check_fastpath_supported,
    fast_simulate,
    functional_pass,
    replay,
)
from .statistics import BufferCounters, CacheCounters, SimStats

__all__ = [
    "L1Spec",
    "LowerLevelSpec",
    "SystemConfig",
    "baseline_config",
    "Engine",
    "LowerCacheLevel",
    "simulate",
    "EventStream",
    "ReplayOutcome",
    "assemble_stats",
    "check_fastpath_supported",
    "fast_simulate",
    "functional_pass",
    "replay",
    "BufferCounters",
    "CacheCounters",
    "SimStats",
]
