"""Simulators: system configuration, reference engine, fastpath, stats,
and the fault-tolerant campaign layer."""

from .campaign import Campaign, atomic_write_text, run_id
from .config import L1Spec, LowerLevelSpec, SystemConfig, baseline_config
from .engine import Engine, LowerCacheLevel, simulate
from .fastpath import (
    EventStream,
    ReplayOutcome,
    assemble_stats,
    check_fastpath_supported,
    fast_simulate,
    functional_pass,
    replay,
)
from .resilience import (
    CampaignExecutor,
    CampaignManifest,
    CampaignReport,
    RetryPolicy,
    RunJob,
    RunRecord,
    make_deadline_check,
    sweep_jobs,
)
from .statistics import BufferCounters, CacheCounters, SimStats

__all__ = [
    "L1Spec",
    "LowerLevelSpec",
    "SystemConfig",
    "baseline_config",
    "Engine",
    "LowerCacheLevel",
    "simulate",
    "EventStream",
    "ReplayOutcome",
    "assemble_stats",
    "check_fastpath_supported",
    "fast_simulate",
    "functional_pass",
    "replay",
    "BufferCounters",
    "CacheCounters",
    "SimStats",
    "Campaign",
    "atomic_write_text",
    "run_id",
    "CampaignExecutor",
    "CampaignManifest",
    "CampaignReport",
    "RetryPolicy",
    "RunJob",
    "RunRecord",
    "make_deadline_check",
    "sweep_jobs",
]
