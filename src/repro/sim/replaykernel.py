"""Vectorized batch-replay kernel: price whole timing grids per stream.

The paper's methodology is one expensive organization pass followed by
thousands of cheap timing replays; :mod:`repro.sim.passcache` already
drives warm-sweep functional passes to zero, which leaves the pure-Python
:func:`repro.sim.fastpath.replay` loop as ~100% of warm sweep time — and
it runs once per grid point per stream.  This module re-prices one
:class:`~repro.sim.fastpath.EventStream` across an entire grid of
:class:`TimingPoint`\\ s (cycle time x memory timing x write-buffer
depth) in a single call, cycle-for-cycle identical to ``replay()``.

The kernel exploits a closed form for the dominant event population.
While the write buffer is empty, every event that does not push into it
(instruction misses, clean-victim read misses, their write-hit
companions) ends with the memory port exactly one recovery period behind
the event's own end — so the next such event prices to

    end[e] - end[e-1] = max(gap[e], recovery) + class_cost

where ``class_cost`` is a per-class constant (read latency + transfer,
doubled with an interleaving recovery for combined i+d misses).  The
increment is independent of absolute time, which turns whole stretches
of buffer-free events — port-recovery contention included — into prefix
sums.  The kernel therefore:

1. classifies events and builds the shared cumulative tables once per
   stream (class counts, ``max(gap, R)`` sums per distinct recovery);
2. precomputes the quantized per-event-class memory costs (read-block,
   writeback, write-op, recovery) once per timing point;
3. prices maximal buffer-free stretches in O(1) each from the tables;
4. walks the remaining events — write misses, dirty-victim pushes, and
   their aftermath until the buffer drains and the port re-enters the
   end+recovery invariant — with an exact inlined scalar state machine
   (write-buffer full/match stalls, busy-port overlap), seeded with the
   stretch-exit state.

``tests/sim/test_replaykernel.py`` asserts equality with ``replay()``
across the fastpath validation matrix, including forced buffer-full and
stale-read stalls.  Telemetry-enabled replays (cycle ledger / event
tracer) always use the scalar path — the ledger's per-couplet segment
lists are inherently sequential — which is why this module takes no
``telemetry`` argument; see ``docs/internals.md``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.timing import MemoryTiming
from ..errors import ConfigurationError
from .fastpath import (
    _D_READ_MISS,
    _D_WRITE_HIT,
    _D_WRITE_MISS,
    EventStream,
    ReplayOutcome,
)
from .statistics import BufferCounters

#: Version of the serialized :class:`ReplayOutcome` document produced by
#: :func:`outcome_to_dict`.  Registered in reprolint's
#: ``schema_fingerprints.json`` — changing the field set without bumping
#: this constant fails REPRO008.
REPLAY_SCHEMA = 1

#: Event kinds: ``imiss + 2 * dclass`` with dclass 0 = none, 1 = write
#: hit, 2 = clean read miss, 3 = dirty read miss (victim push), 4 =
#: bypassing write miss.  dclass <= 2 never touches the write buffer.
_DC_NONE, _DC_WH, _DC_RM_CLEAN, _DC_RM_VICTIM, _DC_WM = 0, 1, 2, 3, 4

#: How many most-recent pushes the precomputed overlap bitmasks cover.
#: Buffer occupancy beyond this (write_buffer_depth > 8) falls back to
#: scanning the buffered entries, exactly like ``replay()``.
_LOOKBACK = 8


@dataclass(frozen=True)
class TimingPoint:
    """One temporal grid point: everything ``replay()`` varies.

    The cartesian axes of the paper's figures (cycle time, memory
    latency/transfer rate, write-buffer depth) all collapse into a flat
    sequence of these.
    """

    memory: MemoryTiming
    cycle_ns: float
    write_buffer_depth: int = 4

    def __post_init__(self) -> None:
        if self.cycle_ns <= 0:
            raise ConfigurationError(
                f"cycle time must be positive: {self.cycle_ns}"
            )
        if self.write_buffer_depth < 1:
            raise ConfigurationError(
                f"write buffer depth must be >= 1: {self.write_buffer_depth}"
            )


@dataclass
class KernelStats:
    """Counters describing how a batch of replays was priced.

    ``vectorized_events``/``scalar_events`` count event-grid cells
    (events x timing points), so their ratio is the fraction of replay
    work the prefix-sum path absorbed.  Sweeps aggregate these and the
    telemetry :class:`~repro.sim.telemetry.RunReport` records them as
    the ``replay`` block.
    """

    batch_outcomes: int = 0
    scalar_replays: int = 0
    vectorized_events: int = 0
    scalar_events: int = 0
    contended_runs: int = 0

    def merge(self, other: "KernelStats") -> None:
        self.batch_outcomes += other.batch_outcomes
        self.scalar_replays += other.scalar_replays
        self.vectorized_events += other.vectorized_events
        self.scalar_events += other.scalar_events
        self.contended_runs += other.contended_runs

    def as_dict(self) -> Dict[str, int]:
        return {
            "batch_outcomes": self.batch_outcomes,
            "scalar_replays": self.scalar_replays,
            "vectorized_events": self.vectorized_events,
            "scalar_events": self.scalar_events,
            "contended_runs": self.contended_runs,
        }

    def publish(self, registry) -> None:
        """Fold these counters into a live metrics registry.

        Each nonzero counter lands as a ``replay.*`` counter on the
        :class:`~repro.sim.telemetry.MetricsRegistry`, so kernel
        fallbacks (``replay.scalar_replays``) are visible next to the
        vectorized work they displaced.
        """
        registry.count_many("replay", self.as_dict())


def outcome_to_dict(outcome: ReplayOutcome) -> Dict[str, int]:
    """Serialize a :class:`ReplayOutcome` (buffer counters flattened).

    The key set of this document is the kernel's schema surface: adding
    or removing a key requires bumping :data:`REPLAY_SCHEMA` (enforced
    by reprolint REPRO008), so batch outcomes cannot silently drift from
    the ``ReplayOutcome`` field set the scalar path produces.
    """
    doc = {
        "schema": REPLAY_SCHEMA,
        "cycles": outcome.cycles,
        "total_cycles": outcome.total_cycles,
        "warm_cycles": outcome.warm_cycles,
        "memory_reads": outcome.memory_reads,
        "memory_writes": outcome.memory_writes,
        "memory_busy_cycles": outcome.memory_busy_cycles,
        "buffer_pushes": outcome.buffer.pushes,
        "buffer_full_stalls": outcome.buffer.full_stalls,
        "buffer_match_stalls": outcome.buffer.match_stalls,
        "buffer_max_occupancy": outcome.buffer.max_occupancy,
    }
    return doc


def outcome_from_dict(payload: Dict[str, int]) -> ReplayOutcome:
    """Inverse of :func:`outcome_to_dict` (same-schema payloads only)."""
    if payload.get("schema") != REPLAY_SCHEMA:
        raise ConfigurationError(
            f"replay outcome schema {payload.get('schema')!r} != "
            f"{REPLAY_SCHEMA}"
        )
    return ReplayOutcome(
        cycles=payload["cycles"],
        total_cycles=payload["total_cycles"],
        warm_cycles=payload["warm_cycles"],
        memory_reads=payload["memory_reads"],
        memory_writes=payload["memory_writes"],
        memory_busy_cycles=payload["memory_busy_cycles"],
        buffer=BufferCounters(
            pushes=payload["buffer_pushes"],
            full_stalls=payload["buffer_full_stalls"],
            match_stalls=payload["buffer_match_stalls"],
            max_occupancy=payload["buffer_max_occupancy"],
        ),
    )


class _Costs:
    """Quantized per-event-class cycle costs of one timing point.

    Computed once per point and shared by the stretch formulas and the
    scalar walk, exactly mirroring what
    :class:`~repro.memory.mainmemory.MainMemory` pre-quantizes.
    """

    __slots__ = (
        "latency", "t_iblock", "t_dblock", "t_word", "recovery",
        "address", "write_op", "head_victim", "rd_i", "rd_d", "depth",
    )

    def __init__(self, point: TimingPoint, i_block: int, d_block: int) -> None:
        memory = point.memory
        cycle_ns = point.cycle_ns
        self.latency = memory.latency_cycles(cycle_ns)
        self.t_iblock = memory.transfer_cycles(i_block)
        self.t_dblock = memory.transfer_cycles(d_block)
        self.t_word = memory.transfer_cycles(1)
        self.recovery = memory.recovery_cycles(cycle_ns)
        self.address = memory.address_cycles
        self.write_op = memory.write_cycles(1, cycle_ns) - \
            memory.write_handoff_cycles(1)
        #: The dirty victim crosses the one-word-wide cache data path
        #: during the latency period; the fetch transfer begins at
        #: max(latency, d_block) (see :meth:`MainMemory.start_read`).
        self.head_victim = self.latency if self.latency > d_block else d_block
        self.rd_i = self.latency + self.t_iblock
        self.rd_d = self.latency + self.t_dblock
        self.depth = point.write_buffer_depth


class BatchReplayKernel:
    """Prices one event stream across many timing points in one call.

    Construction classifies the stream's events and builds the shared
    cumulative tables; :meth:`replay_grid` then prices every point.
    Build one kernel per stream and reuse it for every grid the stream
    is priced against — all per-stream precomputation is shared.
    """

    def __init__(self, stream: EventStream) -> None:
        self.stream = stream
        n = stream.n_events
        self.n_events = n
        self.stats = KernelStats()
        gap = np.asarray(stream.ev_gap, dtype=np.int64)
        self._gap_np = gap
        dtype = np.asarray(stream.ev_dtype, dtype=np.int64)
        imiss = np.asarray(stream.ev_imiss, dtype=np.int64) != 0
        victim = np.asarray(stream.ev_vaddr, dtype=np.int64) >= 0
        dclass = np.select(
            [dtype == _D_WRITE_HIT,
             (dtype == _D_READ_MISS) & ~victim,
             (dtype == _D_READ_MISS) & victim,
             dtype == _D_WRITE_MISS],
            [_DC_WH, _DC_RM_CLEAN, _DC_RM_VICTIM, _DC_WM],
            _DC_NONE,
        )
        self._dclass = dclass
        self._kinds = (imiss.astype(np.int64) + 2 * dclass).tolist()

        # Exclusive cumulative class counts (length n + 1): stretch
        # [a, b) sums become two table lookups per point.
        has_i = imiss.astype(np.int64)
        rm_clean = (dclass == _DC_RM_CLEAN).astype(np.int64)
        self._cum_i = _excl_cumsum(has_i)
        self._cum_d = _excl_cumsum(rm_clean)
        self._cum_id = _excl_cumsum(has_i * rm_clean)
        #: Per distinct recovery value: exclusive cumsum of max(gap, R)
        #: and the next-gap-exceeding-R jump table.
        self._cum_gap_r: Dict[int, Tuple[List[int], List[int]]] = {}

        # next_push[e]: first index >= e whose event pushes into the
        # write buffer (dclass >= 3); n when none remain.  The variant
        # also stopping at write hits is only needed for the degenerate
        # rd_i < 2 timing corner (see _price_point).
        self._next_push = _next_member(dclass >= _DC_RM_VICTIM, n)
        self._next_push_or_wh: Optional[List[int]] = None

        # Lookback overlap masks.  The write buffer drains FIFO, so at
        # any instant its entries are exactly the most recent ``len``
        # pushes — and address overlap is timing-independent.  Bit m-1
        # of ``lbm_*[e]`` says whether event e's instruction/data read
        # overlaps the entry pushed by the (m)-th most recent push
        # before e, for m up to _LOOKBACK.  One table therefore answers
        # every point's stale-read match query in O(1): with ``nb``
        # buffered entries the match exists iff a bit below ``nb`` is
        # set, and the drained prefix ends at ``nb - lowest_set_bit``.
        lbm_i = np.zeros(n, dtype=np.int64)
        lbm_d = np.zeros(n, dtype=np.int64)
        push_at = np.flatnonzero(dclass >= _DC_RM_VICTIM)
        if len(push_at):
            pos = np.searchsorted(push_at, np.arange(n), side="left") - 1
            iaddr_np = np.asarray(stream.ev_iaddr, dtype=np.int64)
            ipid_np = np.asarray(stream.ev_ipid, dtype=np.int64)
            daddr_np = np.asarray(stream.ev_daddr, dtype=np.int64)
            dpid_np = np.asarray(stream.ev_dpid, dtype=np.int64)
            vaddr_np = np.asarray(stream.ev_vaddr, dtype=np.int64)
            vpid_np = np.asarray(stream.ev_vpid, dtype=np.int64)
            d_read = dtype == _D_READ_MISS
            i_block = stream.i_block_words
            d_block = stream.d_block_words
            for m in range(1, min(_LOOKBACK, len(push_at)) + 1):
                sel = pos - (m - 1)
                src = push_at[np.maximum(sel, 0)]
                is_wm = dclass[src] == _DC_WM
                x_pid = np.where(is_wm, dpid_np[src], vpid_np[src])
                x_lo = np.where(is_wm, daddr_np[src], vaddr_np[src])
                x_hi = x_lo + np.where(is_wm, 1, d_block)
                valid = sel >= 0
                bit = 1 << (m - 1)
                lbm_i |= bit * (
                    valid & imiss & (ipid_np == x_pid)
                    & (iaddr_np < x_hi) & (x_lo < iaddr_np + i_block)
                )
                lbm_d |= bit * (
                    valid & d_read & (dpid_np == x_pid)
                    & (daddr_np < x_hi) & (x_lo < daddr_np + d_block)
                )
        self._lbm_i = lbm_i.tolist()
        self._lbm_d = lbm_d.tolist()
        self._conflict_bits = lbm_i | lbm_d
        #: Lazily built per occupancy nb: first index >= e whose reads
        #: overlap one of the nb most recent pushes.
        self._ncf_by_nb: List[Optional[List[int]]] = [None] * (_LOOKBACK + 1)
        #: Priced outcomes keyed by quantized cost tuple (replay_grid).
        self._memo: Dict[tuple, ReplayOutcome] = {}

        #: Event-kind list with write-hit events re-coded out of the
        #: fast range (3 -> 19), for the rd_i < 2 timing corner where a
        #: write hit can outlast its instruction fetch.  Built lazily.
        self._kinds_strict: Optional[List[int]] = None

        # The scalar walk indexes these millions of times; plain lists
        # of pre-boxed ints beat array('q') access.
        self._gap = list(stream.ev_gap)
        self._iaddr = list(stream.ev_iaddr)
        self._ipid = list(stream.ev_ipid)
        self._daddr = list(stream.ev_daddr)
        self._dpid = list(stream.ev_dpid)
        self._vaddr = list(stream.ev_vaddr)
        self._vpid = list(stream.ev_vpid)

    # ------------------------------------------------------------------
    def replay_grid(self, points: Sequence[TimingPoint]) -> List[ReplayOutcome]:
        """Replay the stream at every timing point; outcomes in order.

        Cycle-for-cycle identical to calling
        ``replay(stream, p.memory, p.cycle_ns, p.write_buffer_depth)``
        for each point.
        """
        points = list(points)
        if not points:
            return []
        stream = self.stream
        self.stats.batch_outcomes += len(points)
        if self.n_events == 0:
            return [self._empty_outcome() for _ in points]
        # Replay cost is a pure function of the *quantized* cycle costs,
        # so timing points that round to the same integer costs (e.g.
        # neighbouring cycle times against one memory part) are priced
        # once and shared.  The scalar path cannot do this: it never
        # sees more than one point at a time.
        out: List[ReplayOutcome] = []
        memo = self._memo
        for point in points:
            costs = _Costs(point, stream.i_block_words, stream.d_block_words)
            key = (
                costs.latency, costs.t_iblock, costs.t_dblock,
                costs.t_word, costs.recovery, costs.address,
                costs.write_op, costs.depth,
            )
            priced = memo.get(key)
            if priced is None:
                priced = memo[key] = self._price_point(costs)
            else:
                # Counters are mutable; every caller gets its own.
                priced = dataclasses.replace(
                    priced, buffer=dataclasses.replace(priced.buffer)
                )
            out.append(priced)
        return out

    # ------------------------------------------------------------------
    def _empty_outcome(self) -> ReplayOutcome:
        stream = self.stream
        warm_now = stream.warm_base_offset
        return ReplayOutcome(
            cycles=stream.end_base - warm_now,
            total_cycles=stream.end_base,
            warm_cycles=warm_now,
            memory_reads=0,
            memory_writes=0,
            memory_busy_cycles=0,
            buffer=BufferCounters(),
        )

    # ------------------------------------------------------------------
    def _ncf_table(self, nb: int) -> List[int]:
        tbl = self._ncf_by_nb[nb]
        if tbl is None:
            mask = (self._conflict_bits & ((1 << nb) - 1)) != 0
            tbl = _next_member(mask, self.n_events)
            self._ncf_by_nb[nb] = tbl
        return tbl

    # ------------------------------------------------------------------
    def _gap_r_table(self, recovery: int) -> Tuple[List[int], List[int]]:
        tables = self._cum_gap_r.get(recovery)
        if tables is None:
            tables = (
                _excl_cumsum(np.maximum(self._gap_np, recovery)),
                _next_member(self._gap_np > recovery, self.n_events),
            )
            self._cum_gap_r[recovery] = tables
        return tables

    # ------------------------------------------------------------------
    def _price_point(self, costs: _Costs) -> ReplayOutcome:
        stream = self.stream
        n = self.n_events
        widx = stream.warm_event_index
        wboff = stream.warm_base_offset
        i_block = stream.i_block_words
        d_block = stream.d_block_words

        # Hot-loop locals.
        latency = costs.latency
        t_dblock = costs.t_dblock
        t_word = costs.t_word
        recovery = costs.recovery
        address = costs.address
        rd_i = costs.rd_i
        rd_d = costs.rd_d
        head_victim = costs.head_victim
        depth = costs.depth
        #: Port-horizon advance past a drain's handoff, and the drain's
        #: busy cost beyond its transfer (start_write in MainMemory).
        op_rec = costs.write_op + recovery
        addr_op = costs.address + costs.write_op

        gaps = self._gap
        iaddr = self._iaddr
        ipid = self._ipid
        daddr = self._daddr
        dpid = self._dpid
        vaddr = self._vaddr
        vpid = self._vpid
        cum_i = self._cum_i
        cum_d = self._cum_d
        cum_id = self._cum_id
        lbm_i = self._lbm_i
        lbm_d = self._lbm_d
        ncf_by = self._ncf_by_nb
        cum_gap_r, next_gap_gt = self._gap_r_table(recovery)

        # The fast per-kind steps need every event to end exactly at its
        # last read's completion; a write hit riding an instruction miss
        # can outlast the fetch only when rd_i < 2 (address_cycles of
        # zero and the latency quantizing away).  In that corner the
        # event kinds swap to a variant that routes every write-hit
        # event (code 3 -> 19) through the exact scalar step.
        wh_ok = rd_i >= 2
        if wh_ok:
            kinds = self._kinds
            next_stop = self._next_push
        else:
            kinds = self._kinds_strict
            if kinds is None:
                kinds = [19 if kk == 3 else kk for kk in self._kinds]
                self._kinds_strict = kinds
            next_stop = self._next_push_or_wh
            if next_stop is None:
                dclass = self._dclass
                next_stop = _next_member(
                    (dclass >= _DC_RM_VICTIM) | (dclass == _DC_WH), n
                )
                self._next_push_or_wh = next_stop

        end_prev = 0          # absolute end cycle of the previous event
        free_at = 0           # memory port horizon
        buf: List = []        # write buffer: (ready, tc, push_event)
        nb = 0                # len(buf), tracked to avoid len() calls
        reads = writes = busy = 0
        pushes = full_stalls = match_stalls = max_occ = 0
        warm_now = 0
        warm_reads = warm_writes = warm_busy = 0
        vec_events = 0
        in_run = False
        runs = 0

        e = 0
        for stop in (widx, n):
            while e < stop:
                k = kinds[e]
                if k <= 5:
                    # ---- push-free event (imiss / clean read miss /
                    # covered write hit) ------------------------------
                    if free_at - end_prev == recovery and (
                        nb == 0
                        or (nb <= _LOOKBACK and buf[-1][0] <= end_prev)
                    ):
                        # ---- closed-form stretch: O(1) from tables --
                        # With the port exactly one recovery behind the
                        # previous event's end, each push-free event
                        # adds max(gap, R) + class_cost.  Buffered
                        # entries (all released at or before end_prev)
                        # cannot drain while gaps stay within the
                        # recovery period, and cannot match before
                        # their first address overlap, so the same form
                        # holds with a non-empty buffer up to whichever
                        # stop comes first.
                        j = next_stop[e]
                        if nb:
                            g = next_gap_gt[e]
                            if g < j:
                                j = g
                            tbl = ncf_by[nb]
                            if tbl is None:
                                tbl = self._ncf_table(nb)
                            c = tbl[e]
                            if c < j:
                                j = c
                        if j > stop:
                            j = stop
                        if j > e:
                            di = cum_i[j] - cum_i[e]
                            dd = cum_d[j] - cum_d[e]
                            end_prev += (cum_gap_r[j] - cum_gap_r[e]) \
                                + rd_i * di + rd_d * dd \
                                + recovery * (cum_id[j] - cum_id[e])
                            free_at = end_prev + recovery
                            reads += di + dd
                            busy += rd_i * di + rd_d * dd
                            vec_events += j - e
                            in_run = False
                            e = j
                            continue
                        # a drain or match is due at e itself: fall
                        # into the general step below.
                    start = end_prev + gaps[e]
                    while nb:
                        entry = buf[0]
                        ready = entry[0]
                        begins = ready if ready > free_at else free_at
                        if begins >= start:
                            break
                        del buf[0]
                        nb -= 1
                        tc = entry[1]
                        free_at = begins + address + tc + op_rec
                        writes += 1
                        busy += addr_op + tc
                    if nb == 0:
                        s0 = start if start > free_at else free_at
                        if k & 1:
                            done = s0 + rd_i
                            reads += 1
                            busy += rd_i
                            if k >= 4:
                                done += recovery + rd_d
                                reads += 1
                                busy += rd_d
                        else:
                            done = s0 + rd_d
                            reads += 1
                            busy += rd_d
                        end_prev = done
                        free_at = done + recovery
                        in_run = False
                        e += 1
                        continue
                    if nb <= _LOOKBACK:
                        # Exact inline step for any lookback-covered
                        # occupancy, stale-read matches included: a
                        # match drains FIFO through the last overlapping
                        # entry before the read issues.
                        mask = (1 << nb) - 1
                        if k & 1:
                            t = start
                            mi = lbm_i[e] & mask
                            if mi:
                                match_stalls += 1
                                cnt = nb - (mi & -mi).bit_length() + 1
                                nb -= cnt
                                for _ in range(cnt):
                                    entry = buf[0]
                                    del buf[0]
                                    ready = entry[0]
                                    begins = ready if ready > free_at \
                                        else free_at
                                    tc = entry[1]
                                    handoff = begins + address + tc
                                    free_at = handoff + op_rec
                                    writes += 1
                                    busy += addr_op + tc
                                    if handoff > t:
                                        t = handoff
                            begins = t if t > free_at else free_at
                            done = begins + rd_i
                            free_at = done + recovery
                            reads += 1
                            busy += rd_i
                            if k == 5:
                                # The fetch left the port past start, so
                                # drains are done; only a data-side
                                # match can still stall.
                                t = start
                                if nb:
                                    md = lbm_d[e] & ((1 << nb) - 1)
                                    if md:
                                        match_stalls += 1
                                        cnt = nb \
                                            - (md & -md).bit_length() + 1
                                        nb -= cnt
                                        for _ in range(cnt):
                                            entry = buf[0]
                                            del buf[0]
                                            ready = entry[0]
                                            begins = ready \
                                                if ready > free_at \
                                                else free_at
                                            tc = entry[1]
                                            handoff = \
                                                begins + address + tc
                                            free_at = handoff + op_rec
                                            writes += 1
                                            busy += addr_op + tc
                                            if handoff > t:
                                                t = handoff
                                begins = t if t > free_at else free_at
                                done = begins + rd_d
                                free_at = done + recovery
                                reads += 1
                                busy += rd_d
                        else:  # k == 4: clean data read miss only
                            t = start
                            md = lbm_d[e] & mask
                            if md:
                                match_stalls += 1
                                cnt = nb - (md & -md).bit_length() + 1
                                nb -= cnt
                                for _ in range(cnt):
                                    entry = buf[0]
                                    del buf[0]
                                    ready = entry[0]
                                    begins = ready if ready > free_at \
                                        else free_at
                                    tc = entry[1]
                                    handoff = begins + address + tc
                                    free_at = handoff + op_rec
                                    writes += 1
                                    busy += addr_op + tc
                                    if handoff > t:
                                        t = handoff
                            begins = t if t > free_at else free_at
                            done = begins + rd_d
                            free_at = done + recovery
                            reads += 1
                            busy += rd_d
                        end_prev = done
                        in_run = False
                        e += 1
                        continue
                    # deep buffer (> _LOOKBACK): exact scalar scan.
                elif k == 8:
                    # ---- pure write miss --------------------------------
                    # No reads; the push is the whole event.  Exact for
                    # any occupancy short of a forced (buffer-full)
                    # drain: pending entries drain up to start + 1 and
                    # the entry releases there, leaving the port alone.
                    start = end_prev + gaps[e]
                    limit = start + 1
                    if nb == 1:
                        # Dominant shape: one pending entry that drains
                        # before the new release — reuse its slot.
                        entry = buf[0]
                        ready = entry[0]
                        begins = ready if ready > free_at else free_at
                        if begins < limit:
                            tc = entry[1]
                            free_at = begins + address + tc + op_rec
                            writes += 1
                            busy += addr_op + tc
                            buf[0] = (limit, t_word, e)
                            pushes += 1
                            end_prev = start + 2
                            in_run = False
                            e += 1
                            continue
                    elif nb == 0:
                        buf.append((limit, t_word, e))
                        pushes += 1
                        nb = 1
                        if max_occ == 0:
                            max_occ = 1
                        end_prev = start + 2
                        in_run = False
                        e += 1
                        continue
                    while nb:
                        entry = buf[0]
                        ready = entry[0]
                        begins = ready if ready > free_at else free_at
                        if begins >= limit:
                            break
                        del buf[0]
                        nb -= 1
                        tc = entry[1]
                        free_at = begins + address + tc + op_rec
                        writes += 1
                        busy += addr_op + tc
                    if nb < depth:
                        buf.append((limit, t_word, e))
                        pushes += 1
                        nb += 1
                        if nb > max_occ:
                            max_occ = nb
                        end_prev = start + 2
                        in_run = False
                        e += 1
                        continue
                    # buffer full: exact scalar step prices the stall.
                elif k == 6:
                    # ---- pure dirty read miss ---------------------------
                    # Drains run to start; with no stale-read match and
                    # room for the victim, the victim releases at start
                    # and the fetch prices with the victim-crossing
                    # head.
                    start = end_prev + gaps[e]
                    while nb:
                        entry = buf[0]
                        ready = entry[0]
                        begins = ready if ready > free_at else free_at
                        if begins >= start:
                            break
                        del buf[0]
                        nb -= 1
                        tc = entry[1]
                        free_at = begins + address + tc + op_rec
                        writes += 1
                        busy += addr_op + tc
                    if nb == 0 or (
                        nb <= _LOOKBACK
                        and not lbm_d[e] & ((1 << nb) - 1)
                    ):
                        if nb < depth:
                            buf.append((start, t_dblock, e))
                            pushes += 1
                            nb += 1
                            if nb > max_occ:
                                max_occ = nb
                            begins = start if start > free_at else free_at
                            done = begins + head_victim + t_dblock
                            end_prev = done
                            free_at = done + recovery
                            reads += 1
                            busy += head_victim + t_dblock
                            in_run = False
                            e += 1
                            continue
                    # match stall, full buffer, or deep buffer: scalar.
                elif k == 9:
                    # ---- instruction miss + write miss ------------------
                    # The fetch prices first (raising the port horizon
                    # past start + 1, so the write section cannot drain
                    # more); the entry then releases at start + 1.
                    start = end_prev + gaps[e]
                    while nb:
                        entry = buf[0]
                        ready = entry[0]
                        begins = ready if ready > free_at else free_at
                        if begins >= start:
                            break
                        del buf[0]
                        nb -= 1
                        tc = entry[1]
                        free_at = begins + address + tc + op_rec
                        writes += 1
                        busy += addr_op + tc
                    if nb <= _LOOKBACK and nb < depth and (
                        nb == 0 or not lbm_i[e] & ((1 << nb) - 1)
                    ):
                        s0 = start if start > free_at else free_at
                        done = s0 + rd_i
                        reads += 1
                        busy += rd_i
                        buf.append((start + 1, t_word, e))
                        pushes += 1
                        nb += 1
                        if nb > max_occ:
                            max_occ = nb
                        tail = start + 2
                        end_prev = done if done > tail else tail
                        free_at = done + recovery
                        in_run = False
                        e += 1
                        continue
                    # match stall or full buffer: exact scalar step.
                elif k == 7:
                    # ---- instruction miss + dirty read miss -------------
                    # Fetch, then the victim releases at start and the
                    # data read follows one recovery after the fetch.
                    start = end_prev + gaps[e]
                    while nb:
                        entry = buf[0]
                        ready = entry[0]
                        begins = ready if ready > free_at else free_at
                        if begins >= start:
                            break
                        del buf[0]
                        nb -= 1
                        tc = entry[1]
                        free_at = begins + address + tc + op_rec
                        writes += 1
                        busy += addr_op + tc
                    if nb <= _LOOKBACK and nb < depth and (
                        nb == 0
                        or not (lbm_i[e] | lbm_d[e]) & ((1 << nb) - 1)
                    ):
                        s0 = start if start > free_at else free_at
                        done_i = s0 + rd_i
                        buf.append((start, t_dblock, e))
                        pushes += 1
                        nb += 1
                        if nb > max_occ:
                            max_occ = nb
                        done = done_i + recovery + head_victim + t_dblock
                        end_prev = done
                        free_at = done + recovery
                        reads += 2
                        busy += rd_i + head_victim + t_dblock
                        in_run = False
                        e += 1
                        continue
                    # match stall or full buffer: exact scalar step.

                # ---- exact scalar step (stalls, deep buffers, write-
                # hit timing corner) ----------------------------------
                if k >= 16:
                    k -= 16
                dc = k >> 1
                if not in_run:
                    in_run = True
                    runs += 1
                start = end_prev + gaps[e]
                end = start + 1
                if k & 1:  # instruction miss
                    while buf:
                        entry = buf[0]
                        ready = entry[0]
                        begins = ready if ready > free_at else free_at
                        if begins >= start:
                            break
                        del buf[0]
                        tc = entry[1]
                        free_at = begins + address + tc + op_rec
                        writes += 1
                        busy += addr_op + tc
                    t = start
                    nb = len(buf)
                    if nb:
                        if nb <= _LOOKBACK:
                            need = lbm_i[e] & ((1 << nb) - 1)
                            match = nb - (need & -need).bit_length() \
                                if need else -1
                        else:
                            pid = ipid[e]
                            lo = iaddr[e]
                            hi = lo + i_block
                            match = -1
                            for i2, entry in enumerate(buf):
                                p = entry[2]
                                if kinds[p] >> 1 == _DC_WM:
                                    xpid, xlo, xw = dpid[p], daddr[p], 1
                                else:
                                    xpid, xlo, xw = vpid[p], vaddr[p], d_block
                                if xpid == pid and xlo < hi and lo < xlo + xw:
                                    match = i2
                        if match >= 0:
                            match_stalls += 1
                            for _ in range(match + 1):
                                entry = buf[0]
                                del buf[0]
                                ready = entry[0]
                                begins = ready if ready > free_at else free_at
                                tc = entry[1]
                                handoff = begins + address + tc
                                free_at = handoff + op_rec
                                writes += 1
                                busy += addr_op + tc
                                if handoff > t:
                                    t = handoff
                    begins = t if t > free_at else free_at
                    done = begins + rd_i
                    free_at = done + recovery
                    reads += 1
                    busy += rd_i
                    if done > end:
                        end = done
                if dc:
                    if dc == _DC_WH:
                        if start + 2 > end:
                            end = start + 2
                    elif dc == _DC_WM:
                        limit = start + 1
                        while buf:
                            entry = buf[0]
                            ready = entry[0]
                            begins = ready if ready > free_at else free_at
                            if begins >= limit:
                                break
                            del buf[0]
                            tc = entry[1]
                            free_at = begins + address + tc + op_rec
                            writes += 1
                            busy += addr_op + tc
                        release = limit
                        while len(buf) >= depth:
                            full_stalls += 1
                            entry = buf[0]
                            del buf[0]
                            ready = entry[0]
                            begins = ready if ready > free_at else free_at
                            tc = entry[1]
                            handoff = begins + address + tc
                            free_at = handoff + op_rec
                            writes += 1
                            busy += addr_op + tc
                            if handoff > release:
                                release = handoff
                        buf.append((release, t_word, e))
                        pushes += 1
                        if len(buf) > max_occ:
                            max_occ = len(buf)
                        tail = start + 2
                        if release > tail:
                            tail = release
                        if tail > end:
                            end = tail
                    else:  # read miss (clean or dirty victim)
                        while buf:
                            entry = buf[0]
                            ready = entry[0]
                            begins = ready if ready > free_at else free_at
                            if begins >= start:
                                break
                            del buf[0]
                            tc = entry[1]
                            free_at = begins + address + tc + op_rec
                            writes += 1
                            busy += addr_op + tc
                        t = start
                        nb = len(buf)
                        if nb:
                            if nb <= _LOOKBACK:
                                need = lbm_d[e] & ((1 << nb) - 1)
                                match = nb - (need & -need).bit_length() \
                                    if need else -1
                            else:
                                pid = dpid[e]
                                lo = daddr[e]
                                hi = lo + d_block
                                match = -1
                                for i2, entry in enumerate(buf):
                                    p = entry[2]
                                    if kinds[p] >> 1 == _DC_WM:
                                        xpid, xlo, xw = dpid[p], daddr[p], 1
                                    else:
                                        xpid, xlo, xw = \
                                            vpid[p], vaddr[p], d_block
                                    if xpid == pid and xlo < hi \
                                            and lo < xlo + xw:
                                        match = i2
                            if match >= 0:
                                match_stalls += 1
                                for _ in range(match + 1):
                                    entry = buf[0]
                                    del buf[0]
                                    ready = entry[0]
                                    begins = ready if ready > free_at \
                                        else free_at
                                    tc = entry[1]
                                    handoff = begins + address + tc
                                    free_at = handoff + op_rec
                                    writes += 1
                                    busy += addr_op + tc
                                    if handoff > t:
                                        t = handoff
                        head = latency
                        if dc == _DC_RM_VICTIM:
                            while buf:
                                entry = buf[0]
                                ready = entry[0]
                                begins = ready if ready > free_at else free_at
                                if begins >= t:
                                    break
                                del buf[0]
                                tc = entry[1]
                                free_at = begins + address + tc + op_rec
                                writes += 1
                                busy += addr_op + tc
                            release = t
                            while len(buf) >= depth:
                                full_stalls += 1
                                entry = buf[0]
                                del buf[0]
                                ready = entry[0]
                                begins = ready if ready > free_at else free_at
                                tc = entry[1]
                                handoff = begins + address + tc
                                free_at = handoff + op_rec
                                writes += 1
                                busy += addr_op + tc
                                if handoff > release:
                                    release = handoff
                            buf.append((release, t_dblock, e))
                            pushes += 1
                            if len(buf) > max_occ:
                                max_occ = len(buf)
                            head = head_victim
                        begins = t if t > free_at else free_at
                        done = begins + head + t_dblock
                        free_at = done + recovery
                        reads += 1
                        busy += head + t_dblock
                        if done > end:
                            end = done
                nb = len(buf)
                end_prev = end
                e += 1
            if stop == widx:
                # Snapshot before the first post-warm event (before its
                # gap and drains), exactly like the scalar replay.
                warm_now = end_prev + wboff
                warm_reads, warm_writes, warm_busy = reads, writes, busy
                widx = -1

        total = end_prev + stream.end_base

        stats = self.stats
        stats.vectorized_events += vec_events
        stats.scalar_events += n - vec_events
        stats.contended_runs += runs

        return ReplayOutcome(
            cycles=total - warm_now,
            total_cycles=total,
            warm_cycles=warm_now,
            memory_reads=reads - warm_reads,
            memory_writes=writes - warm_writes,
            memory_busy_cycles=busy - warm_busy,
            buffer=BufferCounters(
                pushes=pushes,
                full_stalls=full_stalls,
                match_stalls=match_stalls,
                max_occupancy=max_occ,
            ),
        )


def _excl_cumsum(values: np.ndarray) -> List[int]:
    """Exclusive prefix sums as a plain-int list (length n + 1)."""
    out = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, out=out[1:])
    return out.tolist()


def _next_member(mask: np.ndarray, n: int) -> List[int]:
    """``out[e]`` = first index >= e with ``mask`` set, else ``n``."""
    idx = np.flatnonzero(mask)
    if len(idx) == 0:
        return [n] * (n + 1)
    pos = np.searchsorted(idx, np.arange(n + 1), side="left")
    return np.where(
        pos < len(idx), idx[np.minimum(pos, len(idx) - 1)], n
    ).tolist()


def replay_batch(
    stream: EventStream,
    points: Sequence[TimingPoint],
    stats: Optional[KernelStats] = None,
) -> List[ReplayOutcome]:
    """One-shot convenience wrapper around :class:`BatchReplayKernel`.

    Builds a kernel for ``stream``, prices every point, and (optionally)
    merges the kernel's counters into ``stats``.  Callers pricing the
    same stream against several grids should hold a kernel instead.
    """
    kernel = BatchReplayKernel(stream)
    outcomes = kernel.replay_grid(points)
    if stats is not None:
        stats.merge(kernel.stats)
    return outcomes
