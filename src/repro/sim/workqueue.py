"""Durable, filesystem-backed campaign work-queue fabric.

The paper's methodology is a brute-force sweep, and ROADMAP item 3 wants
that sweep to outlive any single process: hours-long campaigns must
survive killed workers, a killed coordinator, and host restarts.  This
module decouples campaign state from every living process by spooling
the sweep onto disk and making *files* — not processes — the unit of
coordination:

* a coordinator materializes one durable job record per sweep cell into
  a spool directory (``enqueue``), all through the same atomic
  checksummed-write discipline as :mod:`repro.sim.campaign` and
  :mod:`repro.sim.passcache`;
* workers claim jobs under **time-bounded leases with heartbeat
  renewal**; the claim primitive (:func:`atomic_claim_text`) is an
  exclusive hard link of a fully-written, fsynced temp file, so a lease
  either exists with complete contents or not at all — never torn,
  never double-granted;
* a kill -9'd or wedged worker is detected by *observation*, not by
  trusting clocks: a lease whose heartbeat counter has not advanced for
  its TTL on the **observer's monotonic clock** (or whose owner pid is
  provably dead on this host) is expired and reclaimed — a single
  winner renames it into the ``leases/lost/`` archive, the job's lease
  epoch increases monotonically, and re-claims back off exponentially
  (:class:`~repro.sim.resilience.RetryPolicy`); wall-clock steps (NTP,
  DST, operator fat-fingers) cannot expire or immortalize a lease;
* jobs that repeatedly kill their owners are quarantined as **poison**
  after ``poison_losses`` lease losses instead of crash-looping the
  fleet;
* completion is published through the same exclusive link: the first
  finisher's done record wins and a stale owner's late publish is
  dropped — with byte-deterministic simulation either result is
  identical, so chaos yields zero lost and zero duplicated jobs.

Spool layout, under ``<campaign>/spool/``::

    spool.json              sweep manifest (SweepSpec; schema + checksum)
    jobs/<run id>.json      one durable job record per sweep cell
    leases/<run id>.json    the active lease (exclusive hard-link claim)
    leases/lost/<id>.<epoch>.json   archive of expired leases
    done/<run id>.json      completion record (exclusive; first wins)
    poison/<run id>.json    jobs quarantined after repeated lease losses

A dead coordinator is irrelevant — everything above is on disk — and a
SIGTERM'd worker drains its current job and releases its lease.  The
content-addressed pass cache (:mod:`repro.sim.passcache`) remains the
shared coherence point, so cooperating workers never repeat a
functional pass even across processes or hosts.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..errors import CampaignError, CorruptResultError, LeaseLostError
from ..units import KB
from .campaign import (
    _TMP_PREFIX, Campaign, SPOOL_DIRNAME, atomic_write_text,
    payload_checksum, run_id,
)
from .resilience import (
    CampaignExecutor, CampaignManifest, RetryPolicy, RunJob, RunRecord,
    STATUS_FAILED, STATUS_OK, sweep_jobs,
)

#: Version of the spool manifest (``spool.json``) document.
SPOOL_SCHEMA = 1

#: Version of the lease document a claim creates and heartbeats renew.
LEASE_SCHEMA = 1

#: Version of the completion record published into ``done/``.
DONE_SCHEMA = 1

#: Default lease time-to-live: how long a heartbeat may stall before any
#: observer is entitled to expire and reclaim the lease.
DEFAULT_LEASE_TTL_S = 30.0

#: Lease losses after which a job is quarantined as poison.
DEFAULT_POISON_LOSSES = 3

_JOBS_DIRNAME = "jobs"
_LEASES_DIRNAME = "leases"
_LOST_DIRNAME = "lost"
_DONE_DIRNAME = "done"
_POISON_DIRNAME = "poison"
_SPEC_NAME = "spool.json"

_HOST = socket.gethostname()

#: Serial for claim temp-file names (unique within a process; the pid
#: and thread id in the name make them unique across processes too).
_CLAIM_SERIAL = itertools.count()


# ----------------------------------------------------------------------
# Atomic exclusive claim
# ----------------------------------------------------------------------
def atomic_claim_text(path: Union[str, Path], text: str) -> None:
    """Exclusively create ``path`` with its complete contents, or fail.

    The contents are staged to a temp file in the target directory,
    fsynced, then **hard-linked** to ``path`` — ``os.link`` fails with
    :exc:`FileExistsError` when the name is already taken, which makes
    this an O_EXCL-style claim whose winner's file is never torn: by the
    time the name exists, its bytes are complete and durable.  The loser
    sees :exc:`FileExistsError` and must treat the resource as owned.
    """
    path = Path(path)
    # Unique per call, not just per process: same-process workers (the
    # threaded spool backend) racing for one claim must stage to
    # different temp files, or the loser's cleanup unlinks the winner's
    # staged bytes out from under its os.link.
    tmp = path.parent / (
        f"{_TMP_PREFIX}{path.name}.{os.getpid()}."
        f"{threading.get_ident()}.{next(_CLAIM_SERIAL)}.claim"
    )
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.link(tmp, path)
    finally:
        with contextlib.suppress(OSError):
            tmp.unlink()
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def _dump(payload: Dict) -> str:
    return json.dumps(payload, indent=1)


def _seal(doc: Dict) -> Dict:
    """Fill ``doc["checksum"]`` with the SHA-256 of the other fields."""
    doc["checksum"] = payload_checksum(
        {k: v for k, v in doc.items() if k != "checksum"}
    )
    return doc


def _load_doc(path: Path, kind: str) -> Dict:
    """Read one checksummed spool document; raise on any corruption."""
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CorruptResultError(
            f"{path.name}: unreadable {kind}: {exc}", path=path
        ) from exc
    try:
        payload = json.loads(raw)
    except ValueError as exc:
        raise CorruptResultError(
            f"{path.name}: malformed {kind} JSON: {exc}", path=path
        ) from exc
    if not isinstance(payload, dict):
        raise CorruptResultError(
            f"{path.name}: {kind} payload is "
            f"{type(payload).__name__}, expected object",
            path=path,
        )
    schema = payload.get("schema")
    if not isinstance(schema, int) or schema < 1:
        raise CorruptResultError(
            f"{path.name}: bad {kind} schema marker {schema!r}", path=path
        )
    stored = payload.get("checksum")
    actual = payload_checksum(
        {k: v for k, v in payload.items() if k != "checksum"}
    )
    if stored != actual:
        raise CorruptResultError(
            f"{path.name}: {kind} checksum mismatch "
            f"(stored {str(stored)[:12]}…, computed {actual[:12]}…)",
            path=path,
        )
    return payload


# ----------------------------------------------------------------------
# Sweep specification (the spool manifest)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """JSON-able sweep parameters from which any process can rebuild
    the exact job list.

    The spool stays light — no pickled traces or configs on disk — by
    relying on the suite and configuration builders being deterministic:
    a coordinator and an independently-launched worker both call
    :meth:`build_jobs` and materialize identical
    :class:`~repro.sim.resilience.RunJob` lists, in the same order,
    with the same run ids.
    """

    sizes_kb: Tuple[float, ...] = (4.0, 16.0, 64.0)
    cycles_ns: Tuple[float, ...] = (20.0, 40.0, 80.0)
    assoc: int = 1
    block_words: int = 4
    trace_names: Tuple[str, ...] = ()
    length: int = 120_000
    seed: int = 0
    simulator: str = "fastpath"  # "fastpath" | "engine" | "cached"
    pass_cache_dir: str = ""

    def __post_init__(self) -> None:
        if self.simulator not in ("fastpath", "engine", "cached"):
            raise CampaignError(
                f"simulator must be fastpath|engine|cached, "
                f"got {self.simulator!r}"
            )
        if self.simulator == "cached" and not self.pass_cache_dir:
            raise CampaignError(
                "simulator 'cached' requires pass_cache_dir"
            )

    def build_jobs(self) -> List[RunJob]:
        """Materialize the deterministic job list this spec describes."""
        from ..trace.suite import ALL_TRACES, build_suite
        from .config import baseline_config

        if self.simulator == "engine":
            from .engine import simulate as simulate_fn
        elif self.simulator == "cached":
            import functools

            from .passcache import cached_fast_simulate

            simulate_fn = functools.partial(
                cached_fast_simulate, cache_dir=self.pass_cache_dir
            )
        else:
            from .fastpath import fast_simulate as simulate_fn
        names = tuple(self.trace_names) or ALL_TRACES
        suite = build_suite(length=self.length, names=names, seed=self.seed)
        configs = [
            baseline_config(
                cache_size_bytes=int(size_kb * KB),
                block_words=self.block_words,
                assoc=self.assoc,
                cycle_ns=cycle_ns,
            )
            for size_kb in self.sizes_kb
            for cycle_ns in self.cycles_ns
        ]
        return sweep_jobs(
            configs, list(suite.values()), simulate_fn=simulate_fn,
            seed=self.seed,
        )


def spec_to_dict(spec: SweepSpec) -> Dict:
    """Serialize a :class:`SweepSpec` as the spool manifest document."""
    doc = {
        "schema": SPOOL_SCHEMA,
        "sizes_kb": list(spec.sizes_kb),
        "cycles_ns": list(spec.cycles_ns),
        "assoc": spec.assoc,
        "block_words": spec.block_words,
        "trace_names": list(spec.trace_names),
        "length": spec.length,
        "seed": spec.seed,
        "simulator": spec.simulator,
        "pass_cache_dir": spec.pass_cache_dir,
        "checksum": "",
    }
    return _seal(doc)


def spec_from_dict(payload: Dict) -> SweepSpec:
    try:
        return SweepSpec(
            sizes_kb=tuple(payload["sizes_kb"]),
            cycles_ns=tuple(payload["cycles_ns"]),
            assoc=payload["assoc"],
            block_words=payload["block_words"],
            trace_names=tuple(payload["trace_names"]),
            length=payload["length"],
            seed=payload["seed"],
            simulator=payload["simulator"],
            pass_cache_dir=payload.get("pass_cache_dir", ""),
        )
    except (KeyError, TypeError) as exc:
        raise CorruptResultError(
            f"spool manifest is malformed: {exc!r}"
        ) from exc


# ----------------------------------------------------------------------
# Lease and done-record documents
# ----------------------------------------------------------------------
@dataclass
class Lease:
    """One worker's exclusive, heartbeat-renewed hold on one job.

    ``epoch`` is 1 + the number of prior lease losses for the job and
    only ever increases; ``beat`` counts heartbeat renewals within this
    epoch.  Expiry is judged by *observers* watching ``(epoch, beat)``
    stall on their own monotonic clocks — the timestamps of the owner
    are never trusted, so stale or stepped clocks cannot corrupt the
    protocol.
    """

    job_id: str
    owner: str
    host: str = _HOST
    pid: int = 0
    epoch: int = 1
    beat: int = 0
    ttl_s: float = DEFAULT_LEASE_TTL_S


def lease_to_dict(lease: Lease) -> Dict:
    """Serialize a :class:`Lease` as its on-disk document."""
    doc = {
        "schema": LEASE_SCHEMA,
        "job_id": lease.job_id,
        "owner": lease.owner,
        "host": lease.host,
        "pid": lease.pid,
        "epoch": lease.epoch,
        "beat": lease.beat,
        "ttl_s": lease.ttl_s,
        "checksum": "",
    }
    return _seal(doc)


def lease_from_dict(payload: Dict) -> Lease:
    try:
        return Lease(
            job_id=payload["job_id"],
            owner=payload["owner"],
            host=payload["host"],
            pid=payload["pid"],
            epoch=payload["epoch"],
            beat=payload["beat"],
            ttl_s=payload["ttl_s"],
        )
    except (KeyError, TypeError) as exc:
        raise CorruptResultError(
            f"lease document is malformed: {exc!r}"
        ) from exc


@dataclass
class DoneRecord:
    """The completion record published (exclusively) into ``done/``."""

    job_id: str
    status: str = STATUS_OK
    owner: str = ""
    epoch: int = 1
    attempts: int = 0
    quarantines: int = 0
    cached: bool = False
    error: str = ""


def done_to_dict(record: DoneRecord) -> Dict:
    """Serialize a :class:`DoneRecord` as its on-disk document."""
    doc = {
        "schema": DONE_SCHEMA,
        "job_id": record.job_id,
        "status": record.status,
        "owner": record.owner,
        "epoch": record.epoch,
        "attempts": record.attempts,
        "quarantines": record.quarantines,
        "cached": record.cached,
        "error": record.error,
        "checksum": "",
    }
    return _seal(doc)


def done_from_dict(payload: Dict) -> DoneRecord:
    try:
        return DoneRecord(
            job_id=payload["job_id"],
            status=payload["status"],
            owner=payload["owner"],
            epoch=payload["epoch"],
            attempts=payload["attempts"],
            quarantines=payload["quarantines"],
            cached=payload.get("cached", False),
            error=payload.get("error", ""),
        )
    except (KeyError, TypeError) as exc:
        raise CorruptResultError(
            f"done record is malformed: {exc!r}"
        ) from exc


# ----------------------------------------------------------------------
# Lease expiry by observation
# ----------------------------------------------------------------------
def owner_is_dead(lease: Lease) -> bool:
    """True when the lease's owner is *provably* dead on this host.

    Only a same-host pid probe is conclusive; a foreign host's worker is
    never declared dead this way — its lease must age out by heartbeat
    stall instead.
    """
    if lease.host != _HOST or lease.pid <= 0:
        return False
    try:
        os.kill(lease.pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:
        return False
    return False


class LeaseMonitor:
    """Judges lease expiry from *observed heartbeat progress* only.

    A lease is expired when its ``(epoch, beat)`` pair has not advanced
    for ``ttl_s`` as measured on the observer's own monotonic clock
    since the observer first saw that pair.  No wall-clock timestamp is
    ever compared, so a stepped or skewed clock — on the owner or the
    observer — cannot expire a healthy lease or immortalize a dead one;
    and a fresh observer always grants a full TTL of grace before its
    first reclaim.
    """

    def __init__(
        self, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self._clock = clock
        #: job id -> (epoch, beat, observer-monotonic time first seen)
        self._seen: Dict[str, Tuple[int, int, float]] = {}

    def observe(self, lease: Lease) -> None:
        """Record the lease's current heartbeat state."""
        prior = self._seen.get(lease.job_id)
        if (
            prior is None
            or prior[0] != lease.epoch
            or prior[1] != lease.beat
        ):
            self._seen[lease.job_id] = (
                lease.epoch, lease.beat, self._clock()
            )

    def expired(self, lease: Lease) -> bool:
        """Is this lease reclaimable, per this observer's history?"""
        self.observe(lease)
        if owner_is_dead(lease):
            return True
        _, _, since = self._seen[lease.job_id]
        return (self._clock() - since) > lease.ttl_s

    def forget(self, job_id: str) -> None:
        self._seen.pop(job_id, None)


# ----------------------------------------------------------------------
# The spool
# ----------------------------------------------------------------------
class WorkQueue:
    """A spool directory of durable jobs, leases and completion records.

    Every mutation goes through :func:`atomic_write_text` (renew,
    archive) or :func:`atomic_claim_text` (claim, publish, poison), so
    any file another process can see is complete and checksummed; a
    crash at any instruction leaves at worst a stray ``.tmp.*`` file
    that :meth:`fsck` sweeps.

    Instances are cheap, hold only observer-local state (the lease
    monitor and re-claim backoff deadlines), and may be created freely
    in any process pointed at the same directory — the directory *is*
    the queue.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        clock: Callable[[], float] = time.monotonic,
        retry: Optional[RetryPolicy] = None,
        poison_losses: int = DEFAULT_POISON_LOSSES,
    ) -> None:
        self.directory = Path(directory)
        self.jobs_dir = self.directory / _JOBS_DIRNAME
        self.leases_dir = self.directory / _LEASES_DIRNAME
        self.lost_dir = self.leases_dir / _LOST_DIRNAME
        self.done_dir = self.directory / _DONE_DIRNAME
        self.poison_dir = self.directory / _POISON_DIRNAME
        for sub in (
            self.jobs_dir, self.lost_dir, self.done_dir, self.poison_dir,
        ):
            sub.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self.retry = retry or RetryPolicy()
        self.poison_losses = poison_losses
        self.monitor = LeaseMonitor(clock=clock)
        #: Observer-local backoff: job id -> monotonic time before which
        #: this observer will not re-claim a just-reclaimed job.
        self._not_before: Dict[str, float] = {}
        self.counters: Dict[str, int] = {
            "leases_issued": 0,
            "leases_expired": 0,
            "leases_reclaimed": 0,
            "leases_released": 0,
            "heartbeats": 0,
            "claim_races": 0,
            "duplicate_publishes": 0,
            "jobs_published": 0,
            "jobs_poisoned": 0,
            "corrupt_leases": 0,
        }

    @classmethod
    def for_campaign(cls, campaign: Campaign, **kwargs) -> "WorkQueue":
        return cls(campaign.directory / SPOOL_DIRNAME, **kwargs)

    # -- paths ----------------------------------------------------------
    @property
    def spec_path(self) -> Path:
        return self.directory / _SPEC_NAME

    def job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def lease_path(self, job_id: str) -> Path:
        return self.leases_dir / f"{job_id}.json"

    def done_path(self, job_id: str) -> Path:
        return self.done_dir / f"{job_id}.json"

    def poison_path(self, job_id: str) -> Path:
        return self.poison_dir / f"{job_id}.json"

    # -- enqueue --------------------------------------------------------
    def save_spec(self, spec: SweepSpec) -> None:
        """Persist the spool manifest; idempotent for the same sweep.

        A spool already initialized with a *different* sweep raises
        :exc:`~repro.errors.CampaignError` — one spool, one sweep.
        """
        doc = spec_to_dict(spec)
        if self.spec_path.exists():
            current = _load_doc(self.spec_path, "spool manifest")
            if current.get("checksum") != doc["checksum"]:
                raise CampaignError(
                    f"{self.directory} already holds a different sweep "
                    f"(spool checksum {str(current.get('checksum'))[:12]}… "
                    f"vs {doc['checksum'][:12]}…)"
                )
            return
        atomic_write_text(self.spec_path, _dump(doc))

    def load_spec(self) -> SweepSpec:
        if not self.spec_path.exists():
            raise CampaignError(
                f"{self.directory} has no spool manifest "
                f"({_SPEC_NAME}); run `campaign enqueue` first"
            )
        return spec_from_dict(_load_doc(self.spec_path, "spool manifest"))

    def enqueue_jobs(self, jobs: List[RunJob]) -> List[str]:
        """Materialize one durable job record per run; return run ids.

        Idempotent: records that already exist are left untouched, so
        re-running an interrupted ``enqueue`` (or resuming a campaign)
        completes the spool without disturbing claimed or done jobs.
        """
        ids = []
        for index, job in enumerate(jobs):
            identifier = run_id(job.config, job.trace)
            ids.append(identifier)
            path = self.job_path(identifier)
            if path.exists():
                continue
            doc = _seal({
                "schema": SPOOL_SCHEMA,
                "job_id": identifier,
                "job_index": index,
                "trace": job.trace.name,
                "config": job.config.describe(),
                "checksum": "",
            })
            atomic_write_text(path, _dump(doc))
        return ids

    def enqueue(self, spec: SweepSpec) -> List[str]:
        """Spool a whole sweep: manifest plus every job record."""
        self.save_spec(spec)
        return self.enqueue_jobs(spec.build_jobs())

    # -- queries --------------------------------------------------------
    def job_ids(self) -> List[str]:
        return sorted(p.stem for p in self.jobs_dir.glob("*.json"))

    def remaining(self) -> int:
        """Jobs with no completion or poison record yet."""
        return sum(
            1 for job_id in self.job_ids()
            if not self.done_path(job_id).exists()
            and not self.poison_path(job_id).exists()
        )

    def done_records(self) -> List[DoneRecord]:
        records = []
        for path in sorted(self.done_dir.glob("*.json")):
            records.append(done_from_dict(_load_doc(path, "done record")))
        return records

    def status(self) -> Dict[str, int]:
        job_ids = self.job_ids()
        done = sum(1 for j in job_ids if self.done_path(j).exists())
        poisoned = sum(1 for j in job_ids if self.poison_path(j).exists())
        leased = sum(1 for j in job_ids if self.lease_path(j).exists())
        return {
            "jobs": len(job_ids),
            "done": done,
            "poisoned": poisoned,
            "leased": leased,
            "pending": len(job_ids) - done - poisoned,
            "lost_leases": len(list(self.lost_dir.glob("*.json"))),
        }

    def render_status(self) -> str:
        s = self.status()
        return (
            f"spool: {s['jobs']} job(s): {s['done']} done, "
            f"{s['pending']} pending ({s['leased']} leased), "
            f"{s['poisoned']} poisoned; "
            f"{s['lost_leases']} lost lease(s) archived"
        )

    def publish_metrics(self, registry, prefix: str = "fabric") -> None:
        """Fold this observer's fabric counters into a metrics registry.

        Counters are observer-local (a fresh process starts at zero);
        each nonzero one lands as ``{prefix}.*`` on the
        :class:`~repro.sim.telemetry.MetricsRegistry`, so lease losses
        and claim races surface next to the simulation metrics.
        """
        registry.count_many(prefix, self.counters)

    # -- lease lifecycle ------------------------------------------------
    def _read_lease(self, path: Path) -> Optional[Lease]:
        """Load one lease, or None when absent; corrupt files are moved
        aside (into the lost archive) so the slot becomes claimable."""
        if not path.exists():
            return None
        try:
            return lease_from_dict(_load_doc(path, "lease"))
        except CorruptResultError:
            self.counters["corrupt_leases"] += 1
            aside = self.lost_dir / f"{path.name}.corrupt"
            serial = 0
            while aside.exists():
                serial += 1
                aside = self.lost_dir / f"{path.name}.corrupt.{serial}"
            with contextlib.suppress(OSError):
                os.rename(path, aside)
            return None

    def _losses(self, job_id: str) -> int:
        """Lease losses so far = highest archived epoch for the job."""
        highest = 0
        for path in self.lost_dir.glob(f"{job_id}.*.json"):
            suffix = path.name[len(job_id) + 1:-len(".json")]
            if suffix.isdigit():
                highest = max(highest, int(suffix))
        return highest

    def claim(
        self,
        owner: str,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
    ) -> Optional[Lease]:
        """Claim the first claimable pending job; None when nothing is.

        Scans jobs in deterministic (sorted id) order; skips done,
        poisoned, backoff-deferred and actively-leased jobs; expires and
        reclaims stalled leases along the way (the reclaimed job becomes
        claimable only after its exponential backoff, and only poisons
        after ``poison_losses`` losses).
        """
        now = self._clock()
        for job_id in self.job_ids():
            if self.done_path(job_id).exists():
                continue
            if self.poison_path(job_id).exists():
                continue
            deferred_until = self._not_before.get(job_id)
            if deferred_until is not None and now < deferred_until:
                continue
            existing = self._read_lease(self.lease_path(job_id))
            if existing is not None:
                if self.monitor.expired(existing):
                    self.counters["leases_expired"] += 1
                    self.reclaim(existing)
                continue
            lease = Lease(
                job_id=job_id,
                owner=owner,
                host=_HOST,
                pid=os.getpid(),
                epoch=self._losses(job_id) + 1,
                beat=0,
                ttl_s=ttl_s,
            )
            try:
                atomic_claim_text(
                    self.lease_path(job_id), _dump(lease_to_dict(lease))
                )
            except FileExistsError:
                self.counters["claim_races"] += 1
                continue
            self.counters["leases_issued"] += 1
            # Start this observer's expiry timer at the grant, so even
            # the issuer holds its own lease to the TTL discipline.
            self.monitor.observe(lease)
            return lease
        return None

    def reclaim(self, lease: Lease) -> bool:
        """Expire one lease: archive it and schedule the job's return.

        A single winner renames the lease into ``leases/lost/`` (the
        rename's source disappears, so a racing reclaimer simply
        loses); the job then waits out an exponential backoff before
        this observer will re-claim it, and poisons once its loss count
        reaches the threshold.
        """
        source = self.lease_path(lease.job_id)
        target = self.lost_dir / f"{lease.job_id}.{lease.epoch}.json"
        try:
            os.rename(source, target)
        except FileNotFoundError:
            return False  # another observer won the reclaim
        self.counters["leases_reclaimed"] += 1
        self.monitor.forget(lease.job_id)
        losses = self._losses(lease.job_id)
        if losses >= self.poison_losses:
            self.poison(
                lease.job_id,
                reason=(
                    f"{losses} lease loss(es); last owner {lease.owner} "
                    f"on {lease.host} (pid {lease.pid})"
                ),
                losses=losses,
            )
        else:
            self._not_before[lease.job_id] = self._clock() + \
                self.retry.delay_s(f"lease:{lease.job_id}", losses)
        return True

    def heartbeat(self, lease: Lease) -> Lease:
        """Renew a lease: bump its beat and rewrite it atomically.

        Raises :exc:`~repro.errors.LeaseLostError` when the lease is no
        longer this owner's — gone, reclaimed, or re-granted at a newer
        epoch.
        """
        path = self.lease_path(lease.job_id)
        current = self._read_lease(path)
        if (
            current is None
            or current.owner != lease.owner
            or current.epoch != lease.epoch
        ):
            raise LeaseLostError(
                f"lease on {lease.job_id} lost by {lease.owner} "
                f"(now held by "
                f"{current.owner if current else 'nobody'})"
            )
        lease.beat += 1
        atomic_write_text(path, _dump(lease_to_dict(lease)))
        self.counters["heartbeats"] += 1
        return lease

    def release(self, lease: Lease) -> bool:
        """Drop a still-owned lease; True when this call removed it."""
        path = self.lease_path(lease.job_id)
        current = self._read_lease(path)
        if (
            current is None
            or current.owner != lease.owner
            or current.epoch != lease.epoch
        ):
            return False
        with contextlib.suppress(FileNotFoundError):
            os.unlink(path)
        self.monitor.forget(lease.job_id)
        self.counters["leases_released"] += 1
        return True

    # -- completion -----------------------------------------------------
    def publish(self, lease: Lease, record: RunRecord) -> bool:
        """Publish a completion record; False when someone else already
        did (the duplicate is dropped — with deterministic simulation
        both results are byte-identical, so nothing is lost)."""
        done = DoneRecord(
            job_id=lease.job_id,
            status=record.status,
            owner=lease.owner,
            epoch=lease.epoch,
            attempts=record.attempts,
            quarantines=record.quarantines,
            cached=record.cached,
            error=record.error,
        )
        try:
            atomic_claim_text(
                self.done_path(lease.job_id), _dump(done_to_dict(done))
            )
        except FileExistsError:
            self.counters["duplicate_publishes"] += 1
            return False
        self.counters["jobs_published"] += 1
        return True

    def poison(
        self, job_id: str, reason: str = "", losses: int = 0
    ) -> bool:
        """Quarantine a job that keeps killing its owners."""
        doc = _seal({
            "schema": SPOOL_SCHEMA,
            "job_id": job_id,
            "losses": losses,
            "reason": reason,
            "checksum": "",
        })
        try:
            atomic_claim_text(self.poison_path(job_id), _dump(doc))
        except FileExistsError:
            return False
        self.counters["jobs_poisoned"] += 1
        return True

    # -- maintenance ----------------------------------------------------
    def fsck(self, repair: bool = False) -> Tuple[List[Path], List[Path]]:
        """Spool hygiene: ``(stray temp files, stale lease files)``.

        A lease is *stale* when its job already has a completion or
        poison record, its owner is provably dead on this host, or the
        file itself is unreadable.  With ``repair=True`` stray temps are
        deleted and stale leases of pending jobs are archived as losses
        (so epochs stay monotonic); leases of finished jobs are simply
        removed.
        """
        stray = sorted(
            p for p in self.directory.rglob(f"{_TMP_PREFIX}*")
            if p.is_file()
        )
        stale: List[Path] = []
        for path in sorted(self.leases_dir.glob("*.json")):
            try:
                lease = lease_from_dict(_load_doc(path, "lease"))
            except CorruptResultError:
                stale.append(path)
                continue
            finished = (
                self.done_path(lease.job_id).exists()
                or self.poison_path(lease.job_id).exists()
            )
            if finished or owner_is_dead(lease):
                stale.append(path)
        if repair:
            for path in stray:
                with contextlib.suppress(OSError):
                    path.unlink()
            for path in stale:
                lease = self._read_lease(path)
                if lease is None:
                    continue  # corrupt: _read_lease archived it
                finished = (
                    self.done_path(lease.job_id).exists()
                    or self.poison_path(lease.job_id).exists()
                )
                if finished:
                    with contextlib.suppress(OSError):
                        os.unlink(path)
                else:
                    self.reclaim(lease)
        return stray, stale

    def sync_manifest(self, campaign: Campaign) -> CampaignManifest:
        """Rebuild the campaign manifest journal from done records.

        The spool — not the manifest — is the source of truth for a
        multi-process sweep; this folds every completion (and poison)
        back into the familiar ``manifest.json`` so ``campaign status``
        and analyses keep working unchanged.  Idempotent.
        """
        manifest = CampaignManifest.for_campaign(campaign)
        for done in self.done_records():
            trace, config = "", ""
            prior = manifest.runs.get(done.job_id)
            if prior is not None:
                trace, config = prior.trace, prior.config
            elif self.job_path(done.job_id).exists():
                job_doc = _load_doc(
                    self.job_path(done.job_id), "job record"
                )
                trace = job_doc.get("trace", "")
                config = job_doc.get("config", "")
            manifest.runs[done.job_id] = RunRecord(
                run_id=done.job_id,
                status=done.status,
                trace=trace,
                config=config,
                attempts=done.attempts,
                quarantines=done.quarantines,
                cached=done.cached,
                error=done.error,
            )
        for path in sorted(self.poison_dir.glob("*.json")):
            doc = _load_doc(path, "poison record")
            job_id = doc.get("job_id", path.stem)
            manifest.runs[job_id] = RunRecord(
                run_id=job_id,
                status=STATUS_FAILED,
                attempts=0,
                error=f"poisoned: {doc.get('reason', '')}",
            )
        manifest.save()
        return manifest


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------
class SpoolWorker:
    """A persistent worker: claim, heartbeat, execute, publish, repeat.

    Execution reuses the battle-tested retry machinery of
    :class:`~repro.sim.resilience.CampaignExecutor` (process isolation,
    timeouts, exponential backoff, quarantine-and-retry), wrapped in the
    lease protocol: the lease is renewed before every attempt and — when
    ``heartbeat_s`` is set — by a background thread while an isolated
    attempt runs, so a healthy worker's lease never stalls.  A renewal
    that finds the lease lost abandons the job (someone else owns it
    now); a completed job is published through the exclusive done link
    regardless, because either the publish wins (our result is the
    result) or it loses to a byte-identical one.

    ``request_drain`` (wired to SIGTERM by the CLI) finishes the current
    job, releases the lease, and exits the loop — graceful degradation
    by construction.
    """

    def __init__(
        self,
        queue: WorkQueue,
        campaign: Campaign,
        jobs_by_id: Dict[str, Tuple[int, RunJob]],
        name: str = "",
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        heartbeat_s: Optional[float] = None,
        timeout_s: Optional[float] = None,
        grace_s: float = 5.0,
        retry: Optional[RetryPolicy] = None,
        fault_plan=None,
        keep_going: bool = True,
        collect_metrics: bool = False,
        mp_context=None,
        sleep_fn: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        journal_fn: Optional[Callable[[RunRecord], None]] = None,
        stop_event: Optional[threading.Event] = None,
        poll_s: float = 0.05,
    ) -> None:
        self.queue = queue
        self.campaign = campaign
        self.jobs_by_id = jobs_by_id
        self.name = name or f"{_HOST}:{os.getpid()}"
        self.ttl_s = ttl_s
        self.heartbeat_s = heartbeat_s
        self.fault_plan = fault_plan
        self.keep_going = keep_going
        self.journal_fn = journal_fn
        self.stop_event = stop_event
        self.poll_s = poll_s
        self._sleep = sleep_fn
        self._clock = clock
        self._drain = threading.Event()
        self._beat_lock = threading.Lock()
        self.lifetime_s = 0.0
        self.processed = 0
        self._executor = CampaignExecutor(
            campaign,
            jobs=1,
            timeout_s=timeout_s,
            retry=retry,
            keep_going=True,  # lease protocol handles abort, not retries
            fault_plan=fault_plan,
            sleep_fn=sleep_fn,
            mp_context=mp_context,
            grace_s=grace_s,
            collect_metrics=collect_metrics,
        )

    # -- graceful shutdown ---------------------------------------------
    def request_drain(self) -> None:
        """Finish the in-flight job, release the lease, stop claiming."""
        self._drain.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM -> drain (finish current job, release lease, exit)."""
        import signal

        def _on_term(signum, frame):
            self.request_drain()

        signal.signal(signal.SIGTERM, _on_term)

    # -- heartbeating ---------------------------------------------------
    def _beat(self, lease: Lease, attempt: int) -> None:
        """Renew the lease unless a chaos plan says this worker wedged."""
        plan = self.fault_plan
        if plan is not None and hasattr(plan, "should_stall_heartbeat"):
            index = self.jobs_by_id[lease.job_id][0]
            if plan.should_stall_heartbeat(index, attempt):
                return  # chaos: the worker is "wedged" — no renewals
        with self._beat_lock:
            self.queue.heartbeat(lease)

    def _start_beater(self, lease: Lease, attempt: int):
        """A background renewal thread for long isolated attempts."""
        if self.heartbeat_s is None:
            return None, None
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(self.heartbeat_s):
                try:
                    self._beat(lease, attempt)
                except (LeaseLostError, CorruptResultError, OSError):
                    stop.set()  # observed loss; main thread re-checks

        thread = threading.Thread(target=beat, daemon=True)
        thread.start()
        return stop, thread

    # -- one claimed job ------------------------------------------------
    def _process(self, lease: Lease) -> Optional[RunRecord]:
        entry = self.jobs_by_id.get(lease.job_id)
        if entry is None:
            # This worker cannot rebuild the job (foreign spool entry);
            # leave it for a worker that can.
            self.queue.release(lease)
            return None
        job_index, job = entry
        current_attempt = {"n": 1}

        def on_attempt(attempt: int) -> None:
            current_attempt["n"] = attempt
            self._beat(lease, attempt)

        self._executor.on_attempt = on_attempt
        stop, thread = self._start_beater(lease, 1)
        try:
            record = self._executor.run_record(job_index, job)
        except LeaseLostError:
            return None  # reclaimed from under us; the job lives on
        finally:
            self._executor.on_attempt = None
            if stop is not None:
                stop.set()
                thread.join()
        published = self.queue.publish(lease, record)
        self.queue.release(lease)
        if not published:
            return None
        if self._executor.collect_metrics:
            self._attach_fabric(lease)
        if self.journal_fn is not None:
            self.journal_fn(record)
        if (
            record.status != STATUS_OK
            and not self.keep_going
            and self.stop_event is not None
        ):
            self.stop_event.set()
        return record

    def _attach_fabric(self, lease: Lease) -> None:
        """Fold this job's lease history into its stored RunReport."""
        path = self.campaign.metrics_dir / f"{lease.job_id}.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # metrics are advisory; never fail the job
        if not isinstance(payload, dict):
            return
        payload["fabric"] = {
            "leases_issued": lease.epoch,
            "leases_lost": lease.epoch - 1,
            "heartbeats": lease.beat,
        }
        try:
            self.campaign.save_report(payload)
        except OSError:
            return

    # -- the loop -------------------------------------------------------
    def run(self, max_jobs: Optional[int] = None) -> int:
        """Claim and process jobs until the spool drains (or limits).

        Returns the number of jobs this worker published.  The loop
        exits when the spool has no pending work, ``max_jobs`` is
        reached, a drain was requested, or (with ``keep_going=False``)
        the shared stop event fires.
        """
        started = self._clock()
        try:
            while True:
                if self._drain.is_set():
                    break
                if self.stop_event is not None and self.stop_event.is_set():
                    break
                if max_jobs is not None and self.processed >= max_jobs:
                    break
                lease = self.queue.claim(self.name, ttl_s=self.ttl_s)
                if lease is None:
                    if self.queue.remaining() == 0:
                        break
                    self._sleep(self.poll_s)
                    continue
                if self._process(lease) is not None:
                    self.processed += 1
        finally:
            self.lifetime_s = self._clock() - started
        return self.processed


def drain_spool(
    campaign: Campaign,
    spec: Optional[SweepSpec] = None,
    workers: int = 1,
    **worker_kwargs,
) -> CampaignManifest:
    """Run workers until the spool is empty, then sync the manifest.

    ``spec`` defaults to the spool's stored manifest.  This is the
    one-shot coordinator `campaign run`/`campaign drain` use: kill it at
    any point and nothing is lost — re-invoking resumes from the spool.
    """
    queue = WorkQueue.for_campaign(campaign)
    spec = spec or queue.load_spec()
    jobs = spec.build_jobs()
    ids = queue.enqueue_jobs(jobs)
    jobs_by_id = {
        identifier: (index, job)
        for index, (identifier, job) in enumerate(zip(ids, jobs))
    }
    fleet = [
        SpoolWorker(
            WorkQueue.for_campaign(campaign),
            campaign,
            jobs_by_id,
            name=f"{_HOST}:{os.getpid()}:w{n}",
            **worker_kwargs,
        )
        for n in range(max(1, workers))
    ]
    if len(fleet) == 1:
        fleet[0].run()
    else:
        threads = [
            threading.Thread(target=worker.run, daemon=True)
            for worker in fleet
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    return queue.sync_manifest(campaign)
