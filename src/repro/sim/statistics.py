"""Statistics gathered by the simulators.

The paper's simulator gathered "up to about 400 unique statistics" per
run; the containers here hold the subset every experiment in the paper
actually consumes — per-cache hit/miss/traffic counters, write-buffer
behaviour, memory utilization, and the cycle counts that become execution
time.  All counters support warm-start snapshots: an experiment measures
``final - snapshot_at_warm_boundary``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional


@dataclass
class CacheCounters:
    """Event counts for one cache."""

    reads: int = 0
    read_misses: int = 0
    writes: int = 0
    write_misses: int = 0
    bypass_writes: int = 0
    fetched_words: int = 0
    writeback_blocks: int = 0
    writeback_words_full: int = 0
    writeback_words_dirty: int = 0

    def snapshot(self) -> "CacheCounters":
        return CacheCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def since(self, earlier: "CacheCounters") -> "CacheCounters":
        """Counters accumulated after ``earlier`` was snapshotted."""
        return CacheCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    @property
    def read_miss_ratio(self) -> float:
        """Read misses per read request (the paper's miss-ratio metric).

        Zero when no reads were measured — every derived ratio here
        defines 0/0 as 0.0 rather than raising, because sparse traces
        (or an I-only/D-only slice) legitimately produce empty
        denominators.
        """
        return self.read_misses / self.reads if self.reads else 0.0

    @property
    def write_miss_ratio(self) -> float:
        """Write misses per write request; 0.0 when nothing was written."""
        return self.write_misses / self.writes if self.writes else 0.0


@dataclass
class BufferCounters:
    """Write-buffer behaviour for one level boundary."""

    pushes: int = 0
    full_stalls: int = 0
    match_stalls: int = 0
    max_occupancy: int = 0

    @property
    def stalls_per_push(self) -> float:
        """Full + read-match stalls per buffered write; 0.0 when the
        buffer was never used."""
        if not self.pushes:
            return 0.0
        return (self.full_stalls + self.match_stalls) / self.pushes


@dataclass
class SimStats:
    """Result of one simulation run, measured past the warm boundary.

    ``cycles`` are the measured cycles; multiply by the config's cycle
    time for execution time (:meth:`execution_time_ns`).
    """

    trace_name: str
    config_summary: str
    cycle_ns: float
    cycles: int
    total_cycles: int
    warm_cycles: int
    n_refs: int
    n_couplets: int
    icache: CacheCounters = field(default_factory=CacheCounters)
    dcache: CacheCounters = field(default_factory=CacheCounters)
    lower: Optional[CacheCounters] = None
    buffer: BufferCounters = field(default_factory=BufferCounters)
    memory_reads: int = 0
    memory_writes: int = 0
    memory_busy_cycles: int = 0

    # ------------------------------------------------------------------
    # Derived metrics (the paper's vocabulary)
    # ------------------------------------------------------------------
    @property
    def reads(self) -> int:
        """Total read requests (loads + ifetches) measured."""
        return self.icache.reads + self.dcache.reads

    @property
    def read_misses(self) -> int:
        return self.icache.read_misses + self.dcache.read_misses

    @property
    def read_miss_ratio(self) -> float:
        """Read misses per read request across both caches."""
        return self.read_misses / self.reads if self.reads else 0.0

    @property
    def load_miss_ratio(self) -> float:
        return self.dcache.read_miss_ratio

    @property
    def ifetch_miss_ratio(self) -> float:
        return self.icache.read_miss_ratio

    @property
    def write_miss_ratio(self) -> float:
        """Write misses per store across the D side; 0.0 for a loadless
        trace slice."""
        return self.dcache.write_miss_ratio

    @property
    def memory_utilization(self) -> float:
        """Fraction of measured cycles the memory port was busy; 0.0
        when no cycles were measured."""
        return self.memory_busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def read_traffic_ratio(self) -> float:
        """Words fetched from memory per read request.

        With whole-block fetch and all-word references this is block size
        x miss ratio — the paper's "the read traffic ratio is simply four
        times the miss ratio" for 4-word blocks.
        """
        fetched = self.icache.fetched_words + self.dcache.fetched_words
        return fetched / self.reads if self.reads else 0.0

    @property
    def write_traffic_ratio_full(self) -> float:
        """Write-back words per reference counting every word of each
        dirty victim block (the larger Figure 3-1 curve).  Bypassing
        write-miss words are included in both write ratios."""
        words = self.dcache.writeback_words_full + self.dcache.bypass_writes
        return words / self.n_refs if self.n_refs else 0.0

    @property
    def write_traffic_ratio_dirty(self) -> float:
        """Write-back words per reference counting only dirty words (the
        smaller Figure 3-1 curve)."""
        words = self.dcache.writeback_words_dirty + self.dcache.bypass_writes
        return words / self.n_refs if self.n_refs else 0.0

    @property
    def cycles_per_reference(self) -> float:
        """Total measured cycles per reference (Table 3's first column;
        drops below one for large caches because couplets pair two
        references into one cycle)."""
        return self.cycles / self.n_refs if self.n_refs else 0.0

    @property
    def execution_time_ns(self) -> float:
        """The paper's bottom line: cycle count x cycle time."""
        return self.cycles * self.cycle_ns
