"""Deterministic fault injection for the campaign resilience layer.

Resilience code that is only exercised by real failures is untested
code.  This module injects every failure mode the executor and the
persistence layer claim to survive — worker crashes, hangs, transient
exceptions, ENOSPC-style write failures, truncated and corrupted result
files, and kill-9 mid-save — *deterministically*: a :class:`FaultPlan`
maps job indices to :class:`FaultSpec` entries that fire on chosen
attempt numbers, so a test can script "job 7 crashes on its first
attempt and succeeds on its second" with no real clocks, signals or
flaky sleeps involved.

The plan is consulted by :class:`~repro.sim.resilience.CampaignExecutor`
at three seams:

* ``worker_faults(index, attempt)`` — inside the worker process, before
  simulation: ``crash`` calls ``os._exit`` (a hard death the parent
  only sees as a silent exit code), ``error`` raises a transient
  exception, ``sleep`` hangs the worker for real (exercising the
  terminate-on-timeout path);
* ``is_simulated_hang(index, attempt)`` — in the parent, before
  launching: a virtual-clock timeout that exercises the retry/backoff
  bookkeeping without waiting on wall time;
* ``save_faults`` / ``post_save_faults`` — in the parent, around
  persistence: ``enospc`` raises :class:`OSError` before the write,
  ``corrupt`` / ``truncate`` damage the file *after* a successful save,
  the way bitrot or a torn write would.

Everything here is picklable, so plans travel into worker processes
unchanged.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

from .campaign import atomic_write_text
from .resilience import CRASH_EXIT_CODE

#: Fault kinds a :class:`FaultSpec` can carry.
CRASH = "crash"          # worker: hard os._exit, no message to the parent
ERROR = "error"          # worker: raises InjectedWorkerError
SLEEP = "sleep"          # worker: real hang; parent must terminate it
HANG = "hang"            # parent: simulated timeout (no wall time passes)
ENOSPC = "enospc"        # parent: save raises OSError(ENOSPC)
CORRUPT = "corrupt"      # parent: garbage written into the saved file
TRUNCATE = "truncate"    # parent: saved file cut in half
STALL_BEAT = "stall_beat"  # spool worker: stops renewing its lease

KINDS = (CRASH, ERROR, SLEEP, HANG, ENOSPC, CORRUPT, TRUNCATE,
         STALL_BEAT)

#: How long a ``sleep`` fault hangs the worker.  Far longer than any
#: test timeout, so the outcome (terminated by the parent) is
#: deterministic, while the test itself only waits out its own timeout.
SLEEP_FAULT_SECONDS = 600.0


class InjectedWorkerError(RuntimeError):
    """The transient in-worker failure an ``error`` fault raises."""


class InjectedCrash(BaseException):
    """Simulates an untrappable death (kill -9, power loss).

    Derives from :class:`BaseException` so ordinary ``except Exception``
    recovery code cannot accidentally swallow it — just as nothing can
    catch a real SIGKILL.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what goes wrong and on which attempts it fires."""

    kind: str
    attempts: Tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {KINDS}"
            )

    def fires(self, attempt: int) -> bool:
        return attempt in self.attempts


def always(kind: str, max_attempts: int = 16) -> FaultSpec:
    """A permanent fault: fires on every attempt a policy could make."""
    return FaultSpec(kind, attempts=tuple(range(1, max_attempts + 1)))


class FaultPlan:
    """Maps job index -> faults; consulted by the executor at each seam."""

    def __init__(
        self,
        by_index: Mapping[int, Union[FaultSpec, Iterable[FaultSpec]]] = (),
    ) -> None:
        plan: Dict[int, Tuple[FaultSpec, ...]] = {}
        for index, specs in dict(by_index).items():
            if isinstance(specs, FaultSpec):
                specs = (specs,)
            plan[index] = tuple(specs)
        self._plan = plan

    def should(self, index: int, kind: str, attempt: int) -> bool:
        return any(
            spec.kind == kind and spec.fires(attempt)
            for spec in self._plan.get(index, ())
        )

    @property
    def faulty_indices(self) -> Tuple[int, ...]:
        return tuple(sorted(self._plan))

    # -- worker-side ----------------------------------------------------
    def worker_faults(self, index: int, attempt: int) -> None:
        """Called inside the worker process before simulation."""
        if self.should(index, CRASH, attempt):
            os._exit(CRASH_EXIT_CODE)
        if self.should(index, SLEEP, attempt):
            time.sleep(SLEEP_FAULT_SECONDS)
        if self.should(index, ERROR, attempt):
            raise InjectedWorkerError(
                f"injected transient failure (job {index}, "
                f"attempt {attempt})"
            )

    # -- parent-side ----------------------------------------------------
    def is_simulated_hang(self, index: int, attempt: int) -> bool:
        return self.should(index, HANG, attempt)

    # -- spool-worker-side ---------------------------------------------
    def should_stall_heartbeat(self, index: int, attempt: int) -> bool:
        """Chaos for the work-queue fabric: the worker 'wedges' — it
        keeps executing but stops renewing its lease, so observers see
        the heartbeat stall, expire the lease, and reclaim the job.
        The wedged worker's late result then loses the exclusive
        done-record publish (see :mod:`repro.sim.workqueue`)."""
        return self.should(index, STALL_BEAT, attempt)

    def save_faults(self, index: int, attempt: int) -> None:
        if self.should(index, ENOSPC, attempt):
            raise OSError(
                errno.ENOSPC,
                f"injected: no space left on device (job {index}, "
                f"attempt {attempt})",
            )

    def post_save_faults(
        self, index: int, attempt: int, path: Union[str, Path]
    ) -> None:
        if self.should(index, CORRUPT, attempt):
            corrupt_file(path)
        if self.should(index, TRUNCATE, attempt):
            truncate_file(path)


# ----------------------------------------------------------------------
# File damage primitives
# ----------------------------------------------------------------------
def corrupt_file(path: Union[str, Path]) -> None:
    """Overwrite the middle of a file with garbage bytes.

    The garbage contains raw control characters, which are invalid both
    as JSON tokens and inside JSON strings, so a damaged result file is
    guaranteed not to parse — the detection path under test is the
    loader's, not a lucky accident of where the damage landed.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    garbage = b"\x00<CORRUPTED>\x00"
    mid = max(0, len(data) // 2 - len(garbage) // 2)
    data[mid:mid + len(garbage)] = garbage
    # Damaging the file in place IS the fault being injected; routing
    # this through the atomic writer would defeat it.
    path.write_bytes(bytes(data))  # reprolint: disable=REPRO003


def truncate_file(path: Union[str, Path]) -> None:
    """Cut a file in half, as a torn write or full disk would."""
    path = Path(path)
    data = path.read_bytes()
    # Simulating the torn write is the point.
    path.write_bytes(data[: len(data) // 2])  # reprolint: disable=REPRO003


# ----------------------------------------------------------------------
# Writer sabotage (kill -9 during Campaign.save)
# ----------------------------------------------------------------------
def kill9_writer(when: str = "mid-write"):
    """A :class:`~repro.sim.campaign.Campaign` writer that dies mid-save.

    ``when="mid-write"`` writes half the payload to the staging temp
    file and raises :class:`InjectedCrash` — the process "died" before
    the atomic rename, so the target must never appear.
    ``when="pre-replace"`` completes the temp write through the real
    atomic writer, then dies just before it would have renamed.
    """
    if when not in ("mid-write", "pre-replace"):
        raise ValueError(f"when must be mid-write|pre-replace, got {when!r}")

    def writer(path, text: str) -> None:
        path = Path(path)
        if when == "mid-write":
            tmp = path.parent / f".tmp.{path.name}.killed"
            # Deliberately non-atomic: this writer models dying halfway
            # through the staging write, before any rename.
            with open(tmp, "w", encoding="utf-8") as handle:  # reprolint: disable=REPRO003
                handle.write(text[: len(text) // 2])
            raise InjectedCrash(f"kill -9 mid-write of {path.name}")
        atomic_write_text(
            path.parent / f".tmp.{path.name}.killed", text
        )
        raise InjectedCrash(f"kill -9 before rename of {path.name}")

    return writer


class SteppedClock:
    """A settable fake clock for chaos tests: NTP steps, DST jumps,
    operator fat-fingers — any discontinuity a wall clock can suffer.

    Injected wherever the fabric takes a ``clock`` callable, it proves
    the lease protocol's claim that only *monotonic observation*
    matters: :meth:`step` models a wall-clock discontinuity, which a
    correct (monotonic-only) consumer must ignore entirely, while
    :meth:`advance` models genuine elapsed time.  Both mutate the same
    reading — the distinction is the *test's* intent, and a consumer
    that treats them differently is reading the wrong clock.
    """

    def __init__(self, start: float = 1_000_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        """Genuine elapsed time (what a monotonic clock would report)."""
        self.now += dt

    def step(self, dt: float) -> None:
        """A wall-clock discontinuity (forward or backward)."""
        self.now += dt


def duplicate_claim(queue, job_id: str, owner: str = "chaos-intruder"):
    """Chaos: forge a competing claim against a job's lease slot.

    Returns True when the intrusion *succeeded* (the invariant under
    test is that it must return False whenever a lease exists — the
    hard-link claim is exclusive, so a second claimant always loses).
    """
    import json as _json

    from .workqueue import Lease, atomic_claim_text, lease_to_dict

    forged = Lease(
        job_id=job_id, owner=owner, host="chaos", pid=0,
        epoch=999, beat=0, ttl_s=1.0,
    )
    try:
        atomic_claim_text(
            queue.lease_path(job_id),
            _json.dumps(lease_to_dict(forged), indent=1),
        )
    except FileExistsError:
        return False
    return True


def flaky_writer(fail_first: int = 1, base=atomic_write_text):
    """A writer whose first ``fail_first`` calls raise ENOSPC, then heal.

    Unlike :class:`FaultPlan`'s per-job ``enospc`` fault, this sabotages
    the persistence layer directly — for testing :class:`Campaign`
    without an executor in the loop.
    """
    state = {"calls": 0}

    def writer(path, text: str) -> None:
        state["calls"] += 1
        if state["calls"] <= fail_first:
            raise OSError(
                errno.ENOSPC,
                f"injected: no space left on device "
                f"(call {state['calls']})",
            )
        base(path, text)

    return writer
