"""Reference cycle-accounting simulator.

This is the general, fully-featured simulator: split or unified L1,
any number of lower cache levels, write-back or write-through, all three
miss-handling modes, timed write buffers at every boundary, and the
synchronous-memory quantization of §2.  It processes one reference
couplet at a time, so its cost is O(references); the design-space sweeps
use the two-phase :mod:`repro.sim.fastpath` instead, which is validated
cycle-for-cycle against this engine.

Timing semantics (matching the paper's base system):

* a couplet issues at cycle ``now``; the CPU proceeds at the latest
  completion among its halves, with a one-cycle minimum;
* read hits complete at ``now + read_hit_cycles`` (1); write hits at
  ``now + write_hit_cycles`` (2: tags, then data);
* a read miss first checks the write buffer (stale-data stall), then
  occupies the level below from ``max(now, below.free_at)``; a dirty
  victim moves into the write buffer across the one-word-wide data path
  *during* the miss latency, delaying the refill only when moving the
  victim takes longer than the latency;
* write misses with the no-allocate policy bypass into the write buffer
  (two cycles unless the buffer is full);
* buffered writes drain greedily whenever the level below is idle, with
  reads taking priority on ties.

Approximation: lower cache levels check residency of a requested range
by its first word.  Because fills and write backs move aligned
power-of-two chunks, validity is uniform across any aligned chunk except
for single-word bypass writes, whose effect on timing is negligible.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..cache.cache import Cache, key_block_addr, key_pid
from ..cache.writebuffer import TimedWriteBuffer
from ..core.policy import MissHandling
from ..cpu.processor import NO_REF, CoupletStream, pair_couplets, sequentialize
from ..errors import ConfigurationError
from ..memory.mainmemory import MainMemory
from ..trace.record import RefKind, Trace
from ..vm.paging import PageMapper
from ..vm.tlb import TLB
from .config import LowerLevelSpec, SystemConfig, TranslationSpec
from .statistics import BufferCounters, CacheCounters, SimStats
from .telemetry import Telemetry, truncate_segments

_STORE = int(RefKind.STORE)

#: Word address region used for page-table walk reads (main memory does
#: not decode addresses; the constant only keeps walks distinguishable
#: in traces of memory operations).
_PAGE_TABLE_BASE = 1 << 42


class Translator:
    """Physical-cache front end: TLB lookup plus page-table walks.

    One translator is shared by the I and D ports (a single MMU).  A TLB
    hit is free — the lookup overlaps the first cache cycle, the common
    design.  A miss performs the configured number of page-table reads
    through the main-memory port, serialized against miss traffic, then
    refills the TLB.
    """

    def __init__(self, spec: TranslationSpec, memory: MainMemory,
                 seed: int = 0) -> None:
        self.spec = spec
        self.memory = memory
        self.mapper = PageMapper(
            page_words=spec.page_words,
            memory_frames=spec.memory_frames,
            seed=seed,
        )
        self.tlb = TLB(entries=spec.tlb_entries, assoc=spec.tlb_assoc)
        self.walks = 0

    def translate(self, pid: int, addr: int, now: int):
        """Return ``(physical address, time)`` after translation."""
        vpage = self.mapper.vpage(addr)
        if not self.tlb.access(pid, vpage):
            self.walks += 1
            for step in range(self.spec.walk_memory_reads):
                done, _first = self.memory.read_block(
                    0, _PAGE_TABLE_BASE + vpage + step, 1, now
                )
                now = done
        return self.mapper.translate(pid, addr), now


class LowerCacheLevel:
    """A cache level between L1 and memory, with its own write buffer.

    Implements the same duck-typed protocol as
    :class:`~repro.memory.mainmemory.MainMemory`: ``free_at``,
    ``read_block`` and ``write_block``.
    """

    def __init__(
        self, spec: LowerLevelSpec, cycle_ns: float, below, seed: int
    ) -> None:
        self.spec = spec
        self.cache = Cache(spec.geometry, spec.policy, seed=seed)
        self.port = spec.port
        self.below = below
        self.wb = TimedWriteBuffer(spec.write_buffer_depth, below)
        self._latency = spec.port.latency_cycles(cycle_ns)
        self._recovery = spec.port.recovery_cycles(cycle_ns)
        self._write_tail = spec.port.write_cycles(
            1, cycle_ns
        ) - spec.port.write_handoff_cycles(1)
        self._block_words = spec.geometry.block_words
        self._offset_bits = spec.geometry.offset_bits
        self.free_at = 0
        self.counters = CacheCounters()

    def transfer_cycles(self, words: int) -> int:
        return self.port.transfer_cycles(words)

    def _push_victim(self, victim_key: int, dirty_words: int, now: int) -> None:
        pid = key_pid(victim_key)
        addr = key_block_addr(victim_key) << self._offset_bits
        self.counters.writeback_blocks += 1
        self.counters.writeback_words_full += self._block_words
        self.counters.writeback_words_dirty += dirty_words
        self.wb.push(pid, addr, self._block_words, now)

    def read_block(
        self, pid: int, word_addr: int, words: int, now: int,
        overlap_cycles: int = 0,
    ):
        """Serve a block read from the level above.

        Returns ``(completion, first_word)`` like memory does.
        """
        self.wb.background_drain(now)
        now = self.wb.resolve_read_match(pid, word_addr, words, now)
        start = now if now > self.free_at else self.free_at
        res = self.cache.access_read(pid, word_addr)
        self.counters.reads += 1
        if res.hit:
            first = start + max(self._latency, overlap_cycles)
            done = first + self.port.transfer_cycles(words)
            self.free_at = done + self._recovery
            return done, first
        self.counters.read_misses += 1
        self.counters.fetched_words += res.fetched_words
        below_overlap = 0
        if res.victim_key is not None:
            self._push_victim(res.victim_key, res.victim_dirty_words, start)
            below_overlap = self._block_words
        fetch_words = res.fetched_words
        fetch_start = (word_addr // fetch_words) * fetch_words
        below_done, _below_first = self.below.read_block(
            pid, fetch_start, fetch_words,
            start + self.port.address_cycles, below_overlap,
        )
        first = below_done + self.port.transfer_cycles(1)
        done = below_done + self.port.transfer_cycles(words)
        floor = start + max(self._latency, overlap_cycles) + \
            self.port.transfer_cycles(words)
        if done < floor:
            done = floor
            first = floor - self.port.transfer_cycles(words) + \
                self.port.transfer_cycles(1)
        self.free_at = done + self._recovery
        return done, first

    def write_block(self, pid: int, word_addr: int, words: int, now: int) -> int:
        """Absorb a write back (or bypass write) from the level above;
        return the handoff-completion cycle."""
        self.wb.background_drain(now)
        start = now if now > self.free_at else self.free_at
        handoff = start + self.port.write_handoff_cycles(words)
        self.free_at = handoff + self._write_tail + self._recovery
        self.counters.writes += 1
        res = self.cache.write_words(pid, word_addr, words)
        if not res.hit:
            self.counters.write_misses += 1
        if res.bypass_write:
            self.counters.bypass_writes += words
            self.wb.push(pid, word_addr, words, handoff)
        if res.victim_key is not None:
            self._push_victim(res.victim_key, res.victim_dirty_words, handoff)
        return handoff


class L1Port:
    """Timed wrapper around one CPU-facing cache."""

    def __init__(
        self,
        cache: Cache,
        read_hit_cycles: int,
        write_hit_cycles: int,
        below,
        wb: TimedWriteBuffer,
        miss_handling: MissHandling,
        translator: Optional[Translator] = None,
    ) -> None:
        self.cache = cache
        self.below = below
        self.wb = wb
        self.counters = CacheCounters()
        self._read_hit = read_hit_cycles
        self._write_hit = write_hit_cycles
        self._block_words = cache.geometry.block_words
        self._offset_bits = cache.geometry.offset_bits
        self._miss_handling = miss_handling
        self._translator = translator
        # Telemetry wiring (set by Engine.run when a Telemetry object is
        # passed): the port leaves the segment breakdown of its latest
        # access in ``last_segments`` for the couplet loop to charge.
        # Plain read hits leave ``None`` — they are pure L1 service, and
        # the fastpath cannot see them inside event couplets, so leaving
        # them implicit is what keeps the two simulators' ledgers equal.
        self.telemetry: Optional[Telemetry] = None
        self._below_is_memory = False
        self.last_segments = None

    def _push_victim(self, victim_key: int, dirty_words: int, now: int) -> None:
        pid = key_pid(victim_key)
        addr = key_block_addr(victim_key) << self._offset_bits
        c = self.counters
        c.writeback_blocks += 1
        c.writeback_words_full += self._block_words
        c.writeback_words_dirty += dirty_words
        self.wb.push(pid, addr, self._block_words, now)

    def _miss_segments(
        self, issue: int, now: int, t: int, done: int, completion: int,
        extra_l1: int = 0,
    ):
        """Attribution segments of a miss serviced through ``below``.

        ``issue`` is the couplet issue cycle, ``now`` the post-
        translation cycle, ``t`` the post-read-match cycle, ``done`` the
        fetch completion and ``completion`` the cycle the CPU resumes
        (earlier than ``done`` in the non-blocking miss modes, which is
        what the final truncation accounts for).
        """
        segments = []
        if now > issue:
            segments.append(("translation", now - issue))
        if t > now:
            segments.append(("wb_match_stall", t - now))
        if self._below_is_memory:
            segments.extend(self.below.last_read_segments)
        else:
            segments.append(("lower_fetch", done - t))
        if extra_l1:
            segments.append(("l1_service", extra_l1))
        return truncate_segments(segments, completion - issue)

    def read(self, pid: int, addr: int, now: int) -> int:
        """Serve a load or ifetch issued at ``now``; return completion."""
        tel = self.telemetry
        issue = now
        if self._translator is not None:
            # Physical cache: translate first; tags are physical and
            # process-agnostic.
            addr, now = self._translator.translate(pid, addr, now)
            pid = 0
        res = self.cache.access_read(pid, addr)
        c = self.counters
        c.reads += 1
        if res.hit:
            if tel is not None:
                self.last_segments = (
                    [("translation", now - issue),
                     ("l1_service", self._read_hit)]
                    if now > issue else None
                )
            return now + self._read_hit
        c.read_misses += 1
        fetch_words = res.fetched_words
        c.fetched_words += fetch_words
        fetch_start = (addr // fetch_words) * fetch_words
        self.wb.background_drain(now)
        t = self.wb.resolve_read_match(pid, fetch_start, fetch_words, now)
        overlap = 0
        if res.victim_key is not None:
            self._push_victim(res.victim_key, res.victim_dirty_words, t)
            overlap = self._block_words
        done, first = self.below.read_block(pid, fetch_start, fetch_words, t, overlap)
        if self._miss_handling is MissHandling.BLOCKING:
            completion = done
        elif self._miss_handling is MissHandling.LOAD_FORWARD:
            completion = first
        else:
            # Early continuation: the block streams from its first word;
            # the CPU resumes when the requested word goes past.
            offset = addr - fetch_start
            if offset == 0:
                completion = first
            else:
                completion = first - self.below.transfer_cycles(1) + \
                    self.below.transfer_cycles(offset + 1)
        if tel is not None:
            self.last_segments = self._miss_segments(
                issue, now, t, done, completion
            )
        return completion

    def write(self, pid: int, addr: int, now: int) -> int:
        """Serve a store issued at ``now``; return completion."""
        tel = self.telemetry
        issue = now
        if self._translator is not None:
            addr, now = self._translator.translate(pid, addr, now)
            pid = 0
        res = self.cache.access_write(pid, addr)
        c = self.counters
        c.writes += 1
        if res.hit and not res.bypass_write:
            if tel is not None:
                segments = [("l1_service", self._write_hit)]
                if now > issue:
                    segments.insert(0, ("translation", now - issue))
                self.last_segments = segments
            return now + self._write_hit
        if res.bypass_write:
            if not res.hit:
                c.write_misses += 1
            c.bypass_writes += 1
            release = self.wb.push(pid, addr, 1, now + 1)
            end = now + self._write_hit
            completion = end if end > release else release
            if tel is not None:
                segments = [("l1_service", self._write_hit)]
                if now > issue:
                    segments.insert(0, ("translation", now - issue))
                if completion > end:
                    segments.append(("wb_full_stall", completion - end))
                self.last_segments = segments
            return completion
        # Fetch-on-write (write-allocate): fetch the block like a read
        # miss, then the write completes one data cycle later.
        c.write_misses += 1
        fetch_words = res.fetched_words
        c.fetched_words += fetch_words
        fetch_start = (addr // fetch_words) * fetch_words
        self.wb.background_drain(now)
        t = self.wb.resolve_read_match(pid, fetch_start, fetch_words, now)
        overlap = 0
        if res.victim_key is not None:
            self._push_victim(res.victim_key, res.victim_dirty_words, t)
            overlap = self._block_words
        done, _first = self.below.read_block(pid, fetch_start, fetch_words, t, overlap)
        if tel is not None:
            self.last_segments = self._miss_segments(
                issue, now, t, done, done + 1, extra_l1=1
            )
        return done + 1


class Engine:
    """The reference simulator for a full :class:`SystemConfig`."""

    def __init__(self, config: SystemConfig, seed: int = 0) -> None:
        self.config = config
        cycle_ns = config.cycle_ns
        self.memory = MainMemory(config.memory, cycle_ns)
        below = self.memory
        self.lower_levels: List[LowerCacheLevel] = []
        for spec in reversed(config.levels):
            level = LowerCacheLevel(spec, cycle_ns, below, seed=seed + 7)
            self.lower_levels.insert(0, level)
            below = level
        l1 = config.l1
        self.wb = TimedWriteBuffer(l1.write_buffer_depth, below)
        self.translator = (
            Translator(config.translation, self.memory, seed=seed + 3)
            if config.translation is not None
            else None
        )
        if l1.unified:
            cache = Cache(l1.d_geometry, l1.policy, seed=seed)
            port = L1Port(
                cache, l1.timing.read_hit_cycles, l1.timing.write_hit_cycles,
                below, self.wb, l1.policy.miss_handling, self.translator,
            )
            self.iport = self.dport = port
        else:
            assert l1.i_geometry is not None
            dcache = Cache(l1.d_geometry, l1.policy, seed=seed)
            icache = Cache(l1.i_geometry, l1.policy, seed=seed + 101)
            self.dport = L1Port(
                dcache, l1.timing.read_hit_cycles, l1.timing.write_hit_cycles,
                below, self.wb, l1.policy.miss_handling, self.translator,
            )
            self.iport = L1Port(
                icache, l1.timing.read_hit_cycles, l1.timing.write_hit_cycles,
                below, self.wb, l1.policy.miss_handling, self.translator,
            )

    #: Couplets between cooperative-cancellation checks; a power of two
    #: so the hot loop's test is a single mask.
    CANCEL_CHECK_MASK = 0x0FFF

    def run(
        self,
        trace: Trace,
        couplets: Optional[CoupletStream] = None,
        cancel_check: Optional[Callable[[], None]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> SimStats:
        """Simulate one trace; return warm-start statistics.

        ``couplets`` may be passed to reuse a prepaired stream across
        engine instances (the pairing is configuration independent).

        ``cancel_check`` is a cooperative-cancellation hook, invoked
        every :data:`CANCEL_CHECK_MASK` + 1 couplets; it aborts the run
        by raising (typically :exc:`~repro.errors.RunTimeoutError` from
        :func:`repro.sim.resilience.make_deadline_check`), which lets a
        campaign executor stop a over-budget simulation from inside the
        worker instead of killing the process.

        ``telemetry`` enables cycle attribution and event tracing (see
        :mod:`repro.sim.telemetry`).  Pass a *fresh* ledger per run; the
        run verifies cycle conservation on completion and raises
        :exc:`~repro.errors.SimulationError` if attribution leaks.
        """
        config = self.config
        if couplets is None:
            couplets = (
                sequentialize(trace) if config.l1.unified else pair_couplets(trace)
            )
        tel = telemetry
        if tel is not None and tel.ledger is None and tel.tracer is None:
            tel = None
        if tel is not None:
            for port in (self.iport, self.dport):
                port.telemetry = tel
                port._below_is_memory = port.below is self.memory
            self.memory.record_segments = True
        iport = self.iport
        dport = self.dport
        i_addr = couplets.i_addr
        i_pid = couplets.i_pid
        d_kind = couplets.d_kind
        d_addr = couplets.d_addr
        d_pid = couplets.d_pid
        warm_k = couplets.warm_couplet
        iread = iport.read
        dread = dport.read
        dwrite = dport.write
        now = 0
        warm_cycles = 0
        snap_i = iport.counters.snapshot()
        snap_d = dport.counters.snapshot()
        snap_mem = (0, 0, 0)
        if warm_k == 0:
            snap_mem = (self.memory.reads, self.memory.writes,
                        self.memory.busy_cycles)
        check_mask = self.CANCEL_CHECK_MASK
        if tel is None:
            for k in range(len(i_addr)):
                if cancel_check is not None and not (k & check_mask):
                    cancel_check()
                if k == warm_k:
                    warm_cycles = now
                    snap_i = iport.counters.snapshot()
                    snap_d = dport.counters.snapshot()
                    snap_mem = (self.memory.reads, self.memory.writes,
                                self.memory.busy_cycles)
                end = now + 1
                ia = i_addr[k]
                if ia != NO_REF:
                    t = iread(i_pid[k], ia, now)
                    if t > end:
                        end = t
                dk = d_kind[k]
                if dk != NO_REF:
                    if dk == _STORE:
                        t = dwrite(d_pid[k], d_addr[k], now)
                    else:
                        t = dread(d_pid[k], d_addr[k], now)
                    if t > end:
                        end = t
                now = end
        else:
            ledger = tel.ledger
            for k in range(len(i_addr)):
                if cancel_check is not None and not (k & check_mask):
                    cancel_check()
                if k == warm_k:
                    warm_cycles = now
                    snap_i = iport.counters.snapshot()
                    snap_d = dport.counters.snapshot()
                    snap_mem = (self.memory.reads, self.memory.writes,
                                self.memory.busy_cycles)
                    if ledger is not None:
                        ledger.mark_warm()
                end = now + 1
                i_segs = d_segs = None
                ia = i_addr[k]
                if ia != NO_REF:
                    t = iread(i_pid[k], ia, now)
                    if t > end:
                        end = t
                    i_segs = iport.last_segments
                dk = d_kind[k]
                if dk != NO_REF:
                    if dk == _STORE:
                        t = dwrite(d_pid[k], d_addr[k], now)
                    else:
                        t = dread(d_pid[k], d_addr[k], now)
                    if t > end:
                        end = t
                    d_segs = dport.last_segments
                tel.note_couplet(now, end, i_segs, d_segs)
                now = end
            if ledger is not None:
                ledger.verify(now, now - warm_cycles)
        if warm_k >= len(i_addr):
            raise ConfigurationError(
                "warm boundary leaves nothing to measure; shorten it"
            )
        lower = (
            self.lower_levels[0].counters.snapshot()
            if self.lower_levels
            else None
        )
        return SimStats(
            trace_name=trace.name,
            config_summary=config.describe(),
            cycle_ns=config.cycle_ns,
            cycles=now - warm_cycles,
            total_cycles=now,
            warm_cycles=warm_cycles,
            n_refs=couplets.n_warm_refs,
            n_couplets=len(i_addr) - warm_k,
            icache=iport.counters.since(snap_i),
            dcache=dport.counters.since(snap_d),
            lower=lower,
            buffer=BufferCounters(
                pushes=self.wb.pushes,
                full_stalls=self.wb.full_stalls,
                match_stalls=self.wb.match_stalls,
                max_occupancy=self.wb.max_occupancy,
            ),
            memory_reads=self.memory.reads - snap_mem[0],
            memory_writes=self.memory.writes - snap_mem[1],
            memory_busy_cycles=self.memory.busy_cycles - snap_mem[2],
        )


def simulate(
    config: SystemConfig,
    trace: Trace,
    couplets: Optional[CoupletStream] = None,
    seed: int = 0,
    cancel_check: Optional[Callable[[], None]] = None,
    telemetry: Optional[Telemetry] = None,
) -> SimStats:
    """One-shot convenience wrapper: build an engine and run one trace."""
    return Engine(config, seed=seed).run(
        trace, couplets=couplets, cancel_check=cancel_check,
        telemetry=telemetry,
    )
