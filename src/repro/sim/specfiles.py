"""System specification files with variation overlays.

The paper's §2 workflow: "The macro expansion phase begins with pointers
to a system specification file and two or three variation files.  The
specification file ... specifies the default value of all the
parameters.  Each of the variation files changes one or more
characteristics: for example, set size, number of sets, cycle time, or
memory latency."

This module reproduces that front end on JSON: a base specification maps
onto :class:`~repro.sim.config.SystemConfig`, and variation dictionaries
(or files) patch it with dotted keys, e.g. ``{"cycle_ns": 50,
"l1.d_geometry.assoc": 2}``.  A change that would leave the system
inconsistent fails loudly through the config validators, exactly the
"maintain consistency in the modeled system" requirement.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from ..core.geometry import CacheGeometry
from ..core.policy import (
    CachePolicy,
    MissHandling,
    ReplacementKind,
    WriteMissPolicy,
    WritePolicy,
)
from ..core.timing import CacheTiming, MemoryTiming
from ..errors import ConfigurationError
from .config import (
    L1Spec,
    LowerLevelSpec,
    SystemConfig,
    TranslationSpec,
)

_ENUMS = {
    "write_policy": WritePolicy,
    "write_miss": WriteMissPolicy,
    "replacement": ReplacementKind,
    "miss_handling": MissHandling,
}


def config_to_dict(config: SystemConfig) -> Dict:
    """Serialize a configuration to plain JSON-able data."""

    def encode(value):
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return {
                f.name: encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
            }
        if isinstance(value, (list, tuple)):
            return [encode(v) for v in value]
        if hasattr(value, "value"):
            return value.value
        return value

    return encode(config)


def _build_policy(payload: Dict) -> CachePolicy:
    kwargs = {}
    for key, enum_cls in _ENUMS.items():
        if key in payload:
            kwargs[key] = enum_cls(payload[key])
    return CachePolicy(**kwargs)


def _build_geometry(payload: Optional[Dict]) -> Optional[CacheGeometry]:
    if payload is None:
        return None
    return CacheGeometry(**payload)


def config_from_dict(payload: Dict) -> SystemConfig:
    """Inverse of :func:`config_to_dict` (validating as it builds)."""
    try:
        l1_payload = dict(payload["l1"])
    except KeyError as exc:
        raise ConfigurationError("specification lacks an 'l1' section") from exc
    l1 = L1Spec(
        d_geometry=_build_geometry(l1_payload["d_geometry"]),
        i_geometry=_build_geometry(l1_payload.get("i_geometry")),
        unified=l1_payload.get("unified", False),
        policy=_build_policy(l1_payload.get("policy", {})),
        timing=CacheTiming(**l1_payload.get("timing", {})),
        write_buffer_depth=l1_payload.get("write_buffer_depth", 4),
    )
    levels = tuple(
        LowerLevelSpec(
            geometry=_build_geometry(level["geometry"]),
            policy=_build_policy(level.get("policy", {})),
            port=MemoryTiming(**level.get("port", {})),
            write_buffer_depth=level.get("write_buffer_depth", 4),
        )
        for level in payload.get("levels", ())
    )
    translation = (
        TranslationSpec(**payload["translation"])
        if payload.get("translation")
        else None
    )
    return SystemConfig(
        l1=l1,
        memory=MemoryTiming(**payload.get("memory", {})),
        levels=levels,
        cycle_ns=payload.get("cycle_ns", 40.0),
        translation=translation,
    )


def apply_variation(payload: Dict, variation: Dict) -> Dict:
    """Apply one variation (dotted keys) to a specification dict.

    Returns a new dict; the input is untouched.  Unknown paths raise, so
    a typo in a variation file cannot silently do nothing.
    """
    result = json.loads(json.dumps(payload))  # deep copy, JSON-safe
    for dotted, value in variation.items():
        parts = dotted.split(".")
        cursor = result
        for part in parts[:-1]:
            if isinstance(cursor, list):
                cursor = cursor[int(part)]
                continue
            if part not in cursor or not isinstance(
                cursor[part], (dict, list)
            ):
                if part not in cursor:
                    raise ConfigurationError(
                        f"variation path {dotted!r}: no section {part!r}"
                    )
                raise ConfigurationError(
                    f"variation path {dotted!r}: {part!r} is a leaf"
                )
            cursor = cursor[part]
        leaf = parts[-1]
        if isinstance(cursor, list):
            cursor[int(leaf)] = value
        else:
            if leaf not in cursor:
                raise ConfigurationError(
                    f"variation path {dotted!r}: unknown parameter {leaf!r}"
                )
            cursor[leaf] = value
    return result


def load_spec(
    spec: Union[str, Path, Dict],
    variations: Sequence[Union[str, Path, Dict]] = (),
) -> SystemConfig:
    """Load a specification (file path or dict) plus variation overlays.

    Variations apply in order, later ones winning — the paper's "two or
    three variation files".
    """
    if isinstance(spec, (str, Path)):
        payload = json.loads(Path(spec).read_text())
    else:
        payload = spec
    for variation in variations:
        if isinstance(variation, (str, Path)):
            variation = json.loads(Path(variation).read_text())
        payload = apply_variation(payload, variation)
    return config_from_dict(payload)


def save_spec(config: SystemConfig, path: Union[str, Path]) -> None:
    """Write a configuration as a specification file."""
    Path(path).write_text(json.dumps(config_to_dict(config), indent=1))
