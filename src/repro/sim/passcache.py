"""Persistent, content-addressed cache of functional-pass results.

The paper amortized its design-space exploration by compiling one
simulator per *organization* and farming the runs out to 10–20
workstations; this repository's equivalent split is the fastpath's
one-functional-pass/many-timing-replays structure
(:mod:`repro.sim.fastpath`).  Until now that amortization stopped at
process exit: every CLI invocation, experiment and campaign re-ran the
expensive functional passes from scratch.  :class:`PassCache` extends it
*across* runs — the direct analogue of a training stack's
preprocessed-shard cache.

Design:

* **Content-addressed keys.**  An entry is keyed by
  ``(trace name, trace content fingerprint, config fingerprint, seed)``
  using the same fingerprint machinery campaign run ids are built from
  (:func:`repro.sim.campaign._config_fingerprint`,
  :meth:`repro.trace.record.Trace.content_fingerprint`).  Any change to
  the trace contents, the warm boundary, any organizational *or*
  temporal configuration field, or the replacement seed produces a new
  key — invalidation is automatic and conservative (temporal parameters
  do not affect the event stream, so a cycle-time change misses where it
  could in principle hit; correctness over cleverness).
* **Compact encoding.**  The nine per-event buffers travel as
  ``array('q')`` in memory (:data:`repro.sim.fastpath.EVENT_FIELDS`)
  and are serialized as base64 of their little-endian 8-byte raw form,
  so a cached pass costs 8 bytes per event per buffer instead of a
  boxed-int list, on disk and across pickles alike.
* **Crash safety.**  Writes go through
  :func:`repro.sim.campaign.atomic_write_text` (enforced statically by
  reprolint REPRO009) and every payload carries a schema version and a
  SHA-256 checksum (:func:`repro.sim.campaign.payload_checksum`).  A
  truncated, bit-flipped or foreign file is *quarantined* and treated
  as a miss — a corrupt cache degrades to extra simulation, never to a
  crash or a silently wrong replay.  A schema-version mismatch is a
  clean miss (the entry is simply overwritten on the next put).
* **Bounded growth.**  :meth:`PassCache.gc` evicts least-recently
  modified entries down to ``max_entries``/``max_bytes`` budgets;
  :meth:`PassCache.verify` is the fsck analogue.  The CLI exposes both
  (``repro-sim cache stats|gc|verify``).

Hit/miss/byte counters accumulate on :attr:`PassCache.counters` and are
surfaced through :class:`repro.sim.telemetry.RunReport` so a sweep's
metrics show what the cache saved.
"""

from __future__ import annotations

import base64
import binascii
import dataclasses
import json
import os
import sys
from array import array
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from ..errors import CorruptResultError
from ..trace.record import Trace
from .campaign import (
    WriterFn,
    _config_fingerprint,
    _known_fields,
    atomic_write_text,
    payload_checksum,
)
from .config import SystemConfig
from .fastpath import (
    EVENT_FIELDS,
    EventStream,
    assemble_stats,
    functional_pass,
    replay,
)
from .statistics import CacheCounters, SimStats

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from .telemetry import MetricsRegistry

#: Version of the on-disk pass-cache payload.  Readers treat any other
#: version as a clean miss (never an error): old entries are simply
#: re-simulated and overwritten.  Tracked by reprolint REPRO008 via
#: ``lint/schema_fingerprints.json`` — changing the serialized field
#: set of :func:`stream_to_dict` without bumping this constant fails CI.
PASSCACHE_SCHEMA = 1

#: Subdirectory corrupt cache entries are moved into.
QUARANTINE_DIRNAME = "quarantine"

#: Staging prefix of the atomic writer; never matches the entry glob.
_TMP_PREFIX = ".tmp."

#: Scalar (non-buffer, non-counter) EventStream fields, serialized
#: verbatim.
_SCALAR_FIELDS = (
    "trace_name", "config_summary", "i_block_words", "d_block_words",
    "n_couplets", "n_couplets_measured", "n_refs_measured",
    "warm_event_index", "warm_base_offset", "end_base",
)


def _encode_array(values) -> str:
    """Base64 of the little-endian 8-byte raw form of an int sequence."""
    buf = values if isinstance(values, array) and values.typecode == "q" \
        else array("q", values)
    if sys.byteorder == "big":  # pragma: no cover — no LE host divergence
        buf = array("q", buf)
        buf.byteswap()
    return base64.b64encode(buf.tobytes()).decode("ascii")


def _decode_array(text, field: str) -> array:
    """Inverse of :func:`_encode_array`; raises on malformed input."""
    if not isinstance(text, str):
        raise CorruptResultError(
            f"event buffer {field!r} is {type(text).__name__}, "
            f"expected base64 string"
        )
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, ValueError, UnicodeEncodeError) as exc:
        raise CorruptResultError(
            f"event buffer {field!r} is not valid base64: {exc}"
        ) from exc
    if len(raw) % 8:
        raise CorruptResultError(
            f"event buffer {field!r} has {len(raw)} bytes, "
            f"not a multiple of 8"
        )
    buf = array("q")
    buf.frombytes(raw)
    if sys.byteorder == "big":  # pragma: no cover — no LE host divergence
        buf.byteswap()
    return buf


def stream_to_dict(stream: EventStream) -> Dict:
    """Serialize an :class:`EventStream` to plain JSON-able data.

    The key set of this document is the pass cache's schema surface:
    reprolint REPRO008 fingerprints it against
    :data:`PASSCACHE_SCHEMA`.
    """
    doc = {
        "trace_name": stream.trace_name,
        "config_summary": stream.config_summary,
        "i_block_words": stream.i_block_words,
        "d_block_words": stream.d_block_words,
        "n_couplets": stream.n_couplets,
        "n_couplets_measured": stream.n_couplets_measured,
        "n_refs_measured": stream.n_refs_measured,
        "warm_event_index": stream.warm_event_index,
        "warm_base_offset": stream.warm_base_offset,
        "end_base": stream.end_base,
        "n_events": stream.n_events,
        "ev_gap": _encode_array(stream.ev_gap),
        "ev_imiss": _encode_array(stream.ev_imiss),
        "ev_iaddr": _encode_array(stream.ev_iaddr),
        "ev_ipid": _encode_array(stream.ev_ipid),
        "ev_dtype": _encode_array(stream.ev_dtype),
        "ev_daddr": _encode_array(stream.ev_daddr),
        "ev_dpid": _encode_array(stream.ev_dpid),
        "ev_vaddr": _encode_array(stream.ev_vaddr),
        "ev_vpid": _encode_array(stream.ev_vpid),
        "icache": dataclasses.asdict(stream.icache),
        "dcache": dataclasses.asdict(stream.dcache),
    }
    return doc


def stream_from_dict(payload: Dict) -> EventStream:
    """Inverse of :func:`stream_to_dict`.

    Raises :exc:`~repro.errors.CorruptResultError` on any missing or
    wrongly-shaped field — callers turn that into a quarantine-and-miss,
    never a crash or a garbage replay.
    """
    if not isinstance(payload, dict):
        raise CorruptResultError(
            f"stream payload is {type(payload).__name__}, expected object"
        )
    buffers: Dict[str, array] = {}
    for field in EVENT_FIELDS:
        if field not in payload:
            raise CorruptResultError(f"stream payload missing {field!r}")
        buffers[field] = _decode_array(payload[field], field)
    n_events = payload.get("n_events")
    lengths = {field: len(buf) for field, buf in buffers.items()}
    if len(set(lengths.values())) != 1 or (
        isinstance(n_events, int) and lengths["ev_gap"] != n_events
    ):
        raise CorruptResultError(
            f"event buffers are ragged or truncated: {lengths} "
            f"vs n_events={n_events!r}"
        )
    try:
        scalars = {name: payload[name] for name in _SCALAR_FIELDS}
        icache = CacheCounters(
            **_known_fields(CacheCounters, payload["icache"])
        )
        dcache = CacheCounters(
            **_known_fields(CacheCounters, payload["dcache"])
        )
        stream = EventStream(
            icache=icache, dcache=dcache, **scalars, **buffers
        )
    except (KeyError, TypeError, AttributeError) as exc:
        raise CorruptResultError(
            f"stream payload is malformed: {exc!r}"
        ) from exc
    for name in _SCALAR_FIELDS[2:]:  # every scalar past the two labels
        if not isinstance(getattr(stream, name), int):
            raise CorruptResultError(
                f"stream field {name!r} is not an integer"
            )
    return stream


def cache_key(config: SystemConfig, trace: Trace, seed: int = 0) -> str:
    """Deterministic identifier of one functional pass.

    Mirrors :func:`repro.sim.campaign.run_id` with the replacement seed
    appended — the functional pass (unlike a timing replay) depends on
    it through the caches' replacement RNGs.
    """
    return (
        f"{trace.name}-{trace.content_fingerprint()}-"
        f"{_config_fingerprint(config)}-s{seed}"
    )


@dataclasses.dataclass
class PassCacheCounters:
    """In-process accounting of one :class:`PassCache`'s activity."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class PassCacheReport:
    """Outcome of :meth:`PassCache.verify` (the cache's fsck)."""

    ok: List[str]
    corrupt: List[Tuple[Path, str]]
    stray_tmp: List[Path]
    quarantined: List[Path] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt and not self.stray_tmp

    def render(self) -> str:
        lines = [
            f"{len(self.ok)} entr{'y' if len(self.ok) == 1 else 'ies'} "
            f"ok, {len(self.corrupt)} corrupt, "
            f"{len(self.stray_tmp)} stray temp file(s)"
        ]
        for path, reason in self.corrupt:
            lines.append(f"  corrupt: {path.name}: {reason}")
        for path in self.quarantined:
            lines.append(f"  quarantined -> {path}")
        for path in self.stray_tmp:
            lines.append(f"  stray temp: {path.name}")
        return "\n".join(lines)


class PassCache:
    """An on-disk, content-addressed store of :class:`EventStream`\\ s.

    ``cache.get_or_run(config, trace, seed)`` returns the stored stream
    when the key is on disk and validates, and runs (then persists) the
    functional pass otherwise.  Corrupt entries are quarantined and
    re-simulated; schema mismatches miss cleanly.

    ``writer`` overrides the persistence primitive (default
    :func:`~repro.sim.campaign.atomic_write_text`) so the fault harness
    can inject ENOSPC and kill-9 during saves, exactly as with
    :class:`~repro.sim.campaign.Campaign`.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        writer: Optional[WriterFn] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._writer: WriterFn = writer or atomic_write_text
        self.counters = PassCacheCounters()
        #: Optional live :class:`~repro.sim.telemetry.MetricsRegistry`
        #: mirroring every counter bump as a ``passcache.*`` metric.
        self.registry = registry

    def _note(self, name: str, delta: int = 1) -> None:
        if self.registry is not None and delta:
            self.registry.count(f"passcache.{name}", delta)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / QUARANTINE_DIRNAME

    def _entry_paths(self) -> Iterator[Path]:
        yield from sorted(self.directory.glob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def put(
        self,
        config: SystemConfig,
        trace: Trace,
        seed: int,
        stream: EventStream,
    ) -> str:
        """Persist one functional pass atomically; return its key."""
        key = cache_key(config, trace, seed)
        stream_doc = stream_to_dict(stream)
        payload = {
            "schema": PASSCACHE_SCHEMA,
            "key": key,
            "checksum": payload_checksum(stream_doc),
            "stream": stream_doc,
        }
        text = json.dumps(payload, separators=(",", ":"))
        self._writer(self._path(key), text)
        self.counters.puts += 1
        self.counters.bytes_written += len(text)
        self._note("puts")
        self._note("bytes_written", len(text))
        return key

    def get(
        self, config: SystemConfig, trace: Trace, seed: int = 0
    ) -> Optional[EventStream]:
        """The stored stream for this pass, or ``None`` on a miss.

        Corruption (truncation, checksum mismatch, malformed payload)
        quarantines the file and reports a miss; a schema-version
        mismatch is a plain miss.  This method never raises for a bad
        entry and never returns a stream that failed validation.
        """
        path = self._path(cache_key(config, trace, seed))
        if not path.exists():
            self.counters.misses += 1
            self._note("misses")
            return None
        try:
            payload, n_bytes = self._read_payload(path)
        except CorruptResultError:
            self.counters.corrupt += 1
            self.counters.misses += 1
            self._note("corrupt")
            self._note("misses")
            self._quarantine(path)
            return None
        if payload is None:  # schema mismatch: clean miss
            self.counters.misses += 1
            self._note("misses")
            return None
        try:
            stream = stream_from_dict(payload["stream"])
        except CorruptResultError:
            self.counters.corrupt += 1
            self.counters.misses += 1
            self._note("corrupt")
            self._note("misses")
            self._quarantine(path)
            return None
        self.counters.hits += 1
        self.counters.bytes_read += n_bytes
        self._note("hits")
        self._note("bytes_read", n_bytes)
        return stream

    def get_or_run(
        self,
        config: SystemConfig,
        trace: Trace,
        seed: int = 0,
        couplets=None,
    ) -> EventStream:
        """Return the cached stream, running the functional pass on a
        miss and persisting the result."""
        stream = self.get(config, trace, seed)
        if stream is not None:
            return stream
        stream = functional_pass(config, trace, couplets=couplets, seed=seed)
        self.put(config, trace, seed, stream)
        return stream

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _read_payload(self, path: Path) -> Tuple[Optional[Dict], int]:
        """(validated envelope, byte count); ``(None, n)`` on a schema
        mismatch; raises :exc:`CorruptResultError` on corruption."""
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CorruptResultError(
                f"{path.name}: unreadable: {exc}", path=path
            ) from exc
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CorruptResultError(
                f"{path.name}: malformed JSON: {exc}", path=path
            ) from exc
        if not isinstance(payload, dict) or "stream" not in payload:
            raise CorruptResultError(
                f"{path.name}: missing 'stream' payload", path=path
            )
        if payload.get("schema") != PASSCACHE_SCHEMA:
            return None, len(raw)
        expected_key = path.name[: -len(".json")]
        stored_key = payload.get("key")
        if stored_key != expected_key:
            raise CorruptResultError(
                f"{path.name}: key mismatch (stored {stored_key!r})",
                path=path,
            )
        stored = payload.get("checksum")
        actual = payload_checksum(payload["stream"])
        if stored != actual:
            raise CorruptResultError(
                f"{path.name}: checksum mismatch "
                f"(stored {str(stored)[:12]}…, computed {actual[:12]}…)",
                path=path,
            )
        return payload, len(raw)

    def _quarantine(self, path: Path) -> Path:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        serial = 0
        while target.exists():
            serial += 1
            target = self.quarantine_dir / f"{path.name}.{serial}"
        os.replace(path, target)
        return target

    def verify(self, repair: bool = False) -> PassCacheReport:
        """Validate every entry's checksum and payload shape.

        With ``repair=True`` corrupt entries are quarantined and stray
        temp files deleted; otherwise they are only reported.  A
        schema-version mismatch counts as ``ok`` — such entries are
        valid files that will miss cleanly and be overwritten.
        """
        ok: List[str] = []
        corrupt: List[Tuple[Path, str]] = []
        quarantined: List[Path] = []
        for path in list(self._entry_paths()):
            try:
                payload, _ = self._read_payload(path)
                if payload is not None:
                    stream_from_dict(payload["stream"])
                ok.append(path.stem)
            except CorruptResultError as exc:
                corrupt.append((path, str(exc)))
                if repair:
                    quarantined.append(self._quarantine(path))
        stray = sorted(self.directory.glob(f"{_TMP_PREFIX}*"))
        if repair:
            for path in stray:
                try:
                    path.unlink()
                except OSError:
                    continue  # best-effort: reported below regardless
        return PassCacheReport(
            ok=ok, corrupt=corrupt, stray_tmp=stray,
            quarantined=quarantined,
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def disk_stats(self) -> Dict[str, int]:
        """On-disk footprint: entry count, total bytes, quarantined."""
        entries = list(self._entry_paths())
        total = 0
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                continue  # raced with a concurrent gc/quarantine
        quarantined = (
            len(list(self.quarantine_dir.glob("*.json*")))
            if self.quarantine_dir.is_dir() else 0
        )
        return {
            "entries": len(entries),
            "bytes": total,
            "quarantined": quarantined,
        }

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> List[Path]:
        """Evict least-recently-modified entries to fit the budgets.

        ``None`` leaves that budget unbounded; ``gc()`` with neither is
        a no-op.  Returns the evicted paths.  Eviction order is oldest
        mtime first (name as a deterministic tie-break), so the entries
        a recent sweep just wrote or refreshed survive.
        """
        entries = []
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue  # deleted underneath us: nothing to evict
            entries.append((stat.st_mtime_ns, path.name, path, stat.st_size))
        entries.sort()
        count = len(entries)
        total = sum(size for _, _, _, size in entries)
        removed: List[Path] = []
        for _mtime, _name, path, size in entries:
            over_count = max_entries is not None and count > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not over_count and not over_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue  # already gone: budget math unaffected below
            count -= 1
            total -= size
            removed.append(path)
        return removed


def cached_fast_simulate(
    config: SystemConfig,
    trace: Trace,
    cache: Optional[PassCache] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    seed: int = 0,
    telemetry=None,
    registry=None,
) -> SimStats:
    """:func:`repro.sim.fastpath.fast_simulate` with a pass cache.

    Accepts either a live :class:`PassCache` or a ``cache_dir`` path —
    the latter keeps the callable picklable, so campaign workers can
    carry it as ``functools.partial(cached_fast_simulate,
    cache_dir=...)`` across the process boundary.  A ``registry``
    (:class:`~repro.sim.telemetry.MetricsRegistry`) captures the
    cache's hit/miss counters as live ``passcache.*`` metrics.
    """
    if cache is None:
        if cache_dir is None:
            raise ValueError(
                "cached_fast_simulate needs a cache or a cache_dir"
            )
        cache = PassCache(cache_dir, registry=registry)
    elif registry is not None and cache.registry is None:
        cache.registry = registry
    stream = cache.get_or_run(config, trace, seed=seed)
    outcome = replay(
        stream, config.memory, config.cycle_ns,
        write_buffer_depth=config.l1.write_buffer_depth,
        telemetry=telemetry,
    )
    return assemble_stats(stream, outcome, config.cycle_ns)
