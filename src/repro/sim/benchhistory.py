"""Benchmark history: the repo's continuous performance ratchet.

CI has measured this reproduction for a while — telemetry throughput,
pass-cache warm/cold speedup, replay-kernel speedup, work-queue chaos
outcomes — but every number evaporated with its workflow run.  This
module makes the trajectory durable and *enforceable*:

* :class:`BenchRecord` is the one common shape every benchmark lands
  in: suite, metric, value, unit, gating direction, the commit and host
  that produced it, and how many repetitions the value summarizes.
  Records serialize through :func:`record_to_dict` (schema-versioned
  and checksummed, ratcheted by reprolint REPRO008);

* :class:`BenchHistory` is an append-only JSONL store of those records.
  Appends rewrite the whole file through
  :func:`~repro.sim.campaign.atomic_write_text`, so a crash leaves
  either the old history or the new one — never a torn tail line
  (reprolint REPRO011 holds this module to that contract);

* :func:`ingest_raw_bench` converts the raw ``BENCH_*.json`` documents
  the CI jobs emit (``telemetry_smoke``, ``passcache_warm_vs_cold``,
  ``replay_kernel_vs_scalar``, ``workqueue_chaos``) into common
  records, with curated units and directions for the known suites and
  conservative inference for new ones;

* :func:`diff_history` is the gate.  For each (suite, metric) the
  baseline is every record from *other* commits; the noise band is
  ``max(mad_scale * MAD, rel_floor * |median|, abs_floor)`` around the
  baseline median (MAD = median absolute deviation, robust to the odd
  slow CI runner).  A candidate outside the band against its gating
  direction is a regression; a bit-identical rerun sits exactly on the
  median and always passes;

* :data:`BENCH_SUITES` are small local suites ``repro-sim bench run``
  executes with N repetitions, recording the per-metric median (the
  per-repetition MAD is reported alongside as the local noise floor).

Wall-clock reads here measure the *simulator*, never the simulation:
they land only in benchmark records, not in simulated state, which is
why the ``perf_counter`` calls carry REPRO001 waivers.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError, CorruptResultError
from .campaign import WriterFn, atomic_write_text, payload_checksum

#: Version of one serialized benchmark record (a JSONL line).
BENCH_SCHEMA = 1

#: Gating directions: ``higher`` / ``lower`` say which way is better
#: (and therefore which way a regression points); ``info`` metrics are
#: recorded for the trajectory but never gate.
DIRECTIONS = ("higher", "lower", "info")


# ----------------------------------------------------------------------
# The common record
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class BenchRecord:
    """One benchmark measurement: a point on one metric's trajectory."""

    suite: str
    metric: str
    value: float
    unit: str = ""
    direction: str = "info"
    commit: str = ""
    host: str = ""
    repetitions: int = 1

    def __post_init__(self):
        if not self.suite or not self.metric:
            raise ConfigurationError(
                f"bench record needs a suite and a metric: "
                f"suite={self.suite!r} metric={self.metric!r}"
            )
        if self.direction not in DIRECTIONS:
            raise ConfigurationError(
                f"bench direction must be one of {DIRECTIONS}: "
                f"{self.direction!r}"
            )
        if self.repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be >= 1: {self.repetitions}"
            )

    @property
    def key(self) -> Tuple[str, str]:
        return (self.suite, self.metric)


def record_to_dict(record: BenchRecord) -> Dict:
    """Serialize one record as a sealed, schema-versioned document."""
    doc = {
        "schema": BENCH_SCHEMA,
        "suite": record.suite,
        "metric": record.metric,
        "value": float(record.value),
        "unit": record.unit,
        "direction": record.direction,
        "commit": record.commit,
        "host": record.host,
        "repetitions": record.repetitions,
        "checksum": "",
    }
    doc["checksum"] = payload_checksum(
        {k: v for k, v in doc.items() if k != "checksum"}
    )
    return doc


def record_from_dict(payload: Dict) -> BenchRecord:
    """Inverse of :func:`record_to_dict`, validating as it goes.

    Unknown keys a future schema may add are ignored (the checksum
    covers whatever was sealed at write time); a wrong schema marker,
    checksum mismatch or malformed field raises
    :exc:`~repro.errors.CorruptResultError`.
    """
    if not isinstance(payload, dict):
        raise CorruptResultError(
            f"bench record is {type(payload).__name__}, expected object"
        )
    if payload.get("schema") != BENCH_SCHEMA:
        raise CorruptResultError(
            f"bench record schema {payload.get('schema')!r} is not "
            f"the supported version {BENCH_SCHEMA}"
        )
    stored = payload.get("checksum")
    expected = payload_checksum(
        {k: v for k, v in payload.items() if k != "checksum"}
    )
    if stored != expected:
        raise CorruptResultError(
            f"bench record checksum mismatch (stored "
            f"{str(stored)[:12]}…, computed {expected[:12]}…)"
        )
    value = payload.get("value")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CorruptResultError(
            f"bench record value {value!r} is not a number"
        )
    repetitions = payload.get("repetitions", 1)
    if isinstance(repetitions, bool) or not isinstance(repetitions, int):
        raise CorruptResultError(
            f"bench record repetitions {repetitions!r} is not an integer"
        )
    try:
        return BenchRecord(
            suite=str(payload.get("suite", "")),
            metric=str(payload.get("metric", "")),
            value=float(value),
            unit=str(payload.get("unit", "")),
            direction=str(payload.get("direction", "info")),
            commit=str(payload.get("commit", "")),
            host=str(payload.get("host", "")),
            repetitions=repetitions,
        )
    except ConfigurationError as exc:
        raise CorruptResultError(f"bench record is malformed: {exc}") \
            from exc


def host_fingerprint() -> str:
    """A short, stable description of the measuring host.

    Built only from platform facts (OS, architecture, interpreter,
    core count) — comparable across runs of the same runner class, and
    an honest flag when two histories came from different hardware.
    """
    return "-".join((
        platform.system().lower() or "unknown",
        platform.machine() or "unknown",
        f"py{platform.python_version()}",
        f"c{os.cpu_count() or 1}",
    ))


def current_commit(cwd: Optional[Union[str, Path]] = None) -> str:
    """The current git commit (short), or ``""`` outside a checkout.

    ``REPRO_BENCH_COMMIT`` overrides the lookup — CI sets it to the
    workflow's SHA so records gate on what triggered the run, not on
    whatever the runner happens to have checked out.
    """
    override = os.environ.get("REPRO_BENCH_COMMIT", "")
    if override:
        return override
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=str(cwd) if cwd is not None else None,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    if proc.returncode != 0:
        return ""
    return proc.stdout.strip()


# ----------------------------------------------------------------------
# The append-only store
# ----------------------------------------------------------------------
class BenchHistory:
    """An append-only JSONL store of :class:`BenchRecord` documents.

    One record per line, in append order — the file *is* the
    trajectory.  Every mutation goes through the atomic writer (the
    whole file is staged and renamed), so a crash mid-append leaves the
    previous history intact; a torn or tampered line surfaces as
    :exc:`~repro.errors.CorruptResultError` naming the line, never as a
    silently shortened baseline.
    """

    def __init__(
        self,
        path: Union[str, Path],
        writer: Optional[WriterFn] = None,
    ) -> None:
        self.path = Path(path)
        self._writer: WriterFn = writer or atomic_write_text

    def load(self) -> List[BenchRecord]:
        """Every record, in append order; raises on corruption."""
        if not self.path.exists():
            return []
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CorruptResultError(
                f"{self.path}: unreadable: {exc}", path=self.path
            ) from exc
        records = []
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorruptResultError(
                    f"{self.path.name}:{number}: malformed JSON: {exc}",
                    path=self.path,
                ) from exc
            try:
                records.append(record_from_dict(payload))
            except CorruptResultError as exc:
                raise CorruptResultError(
                    f"{self.path.name}:{number}: {exc}", path=self.path
                ) from exc
        return records

    def append(self, records: Sequence[BenchRecord]) -> int:
        """Append records atomically; returns how many were written.

        The existing file is validated first, so an append never buries
        corruption deeper into the history — it fails loudly instead.
        """
        records = list(records)
        if not records:
            return 0
        self.load()
        prefix = ""
        if self.path.exists():
            prefix = self.path.read_text(encoding="utf-8")
            if prefix and not prefix.endswith("\n"):
                prefix += "\n"
        lines = [
            json.dumps(record_to_dict(record), sort_keys=True,
                       separators=(",", ":"))
            for record in records
        ]
        self._writer(self.path, prefix + "\n".join(lines) + "\n")
        return len(lines)

    def series(self) -> Dict[Tuple[str, str], List[BenchRecord]]:
        """Records grouped per (suite, metric), each in append order."""
        grouped: Dict[Tuple[str, str], List[BenchRecord]] = {}
        for record in self.load():
            grouped.setdefault(record.key, []).append(record)
        return grouped


# ----------------------------------------------------------------------
# Ingestion of the raw CI bench documents
# ----------------------------------------------------------------------
#: Curated (unit, direction) per metric of the known raw bench shapes —
#: the ``BENCH_*.json`` documents CI has emitted since PR 2.
_BENCH_SHAPES: Dict[str, Dict[str, Tuple[str, str]]] = {
    "telemetry_smoke": {
        "runs": ("count", "info"),
        "refs_per_sec_p10": ("refs/s", "higher"),
        "refs_per_sec_p50": ("refs/s", "higher"),
        "refs_per_sec_p90": ("refs/s", "higher"),
        "total_wall_s": ("s", "lower"),
    },
    "passcache_warm_vs_cold": {
        "passes": ("count", "info"),
        "cold_s": ("s", "lower"),
        "warm_s": ("s", "lower"),
        "speedup": ("ratio", "higher"),
        "hits": ("count", "info"),
        "bytes_on_disk": ("bytes", "info"),
    },
    "replay_kernel_vs_scalar": {
        "streams": ("count", "info"),
        "replay_jobs": ("count", "info"),
        "scalar_s": ("s", "lower"),
        "batch_serial_s": ("s", "lower"),
        "batch_s": ("s", "lower"),
        "speedup_serial": ("ratio", "higher"),
        "speedup": ("ratio", "higher"),
        "vectorized_events": ("count", "info"),
        "scalar_events": ("count", "info"),
    },
    "workqueue_chaos": {
        "jobs": ("count", "info"),
        "workers_killed": ("count", "info"),
        "leases_reclaimed": ("count", "info"),
        "max_lease_epoch": ("count", "info"),
    },
    "reprolint": {
        "files": ("count", "info"),
        "lint_wall_s": ("s", "lower"),
        "graph_modules": ("count", "info"),
        "graph_functions": ("count", "info"),
        "graph_call_edges": ("count", "info"),
    },
    "sampling": {
        "refs_exact": ("count", "info"),
        "refs_sampled": ("count", "info"),
        "refs_reduction": ("ratio", "higher"),
        "cold_exact_s": ("s", "lower"),
        "cold_sampled_s": ("s", "lower"),
        "speedup": ("ratio", "higher"),
        "abs_miss_error": ("", "lower"),
        "ci_half_width": ("", "lower"),
        "deterministic": ("count", "info"),
    },
}

#: Raw-document keys that describe the measurement, not a metric.
_RAW_META_KEYS = ("bench", "python")


def _infer_metric(name: str) -> Tuple[str, str]:
    """Conservative (unit, direction) for a metric no shape curates.

    Only unmistakable naming conventions gate (`*_s` wall times lower,
    throughput/speedup higher); everything else records as ``info`` so
    an unknown metric can never fail a build by accident.
    """
    if name.endswith("_s") or name.endswith("_wall_s"):
        return ("s", "lower")
    if "per_sec" in name:
        return ("refs/s", "higher")
    if "speedup" in name:
        return ("ratio", "higher")
    return ("", "info")


def ingest_raw_bench(
    payload: Dict,
    commit: str = "",
    host: str = "",
    repetitions: int = 1,
    suite: str = "",
) -> List[BenchRecord]:
    """Convert one raw ``BENCH_*.json`` document into common records.

    The suite name comes from the document's ``bench`` key (or the
    ``suite`` override).  Numeric scalars become records — booleans as
    0/1 ``info`` flags — and non-numeric values (version strings, grid
    shapes) are skipped.  Known suites get curated units and gating
    directions; unknown suites fall back to :func:`_infer_metric`.
    """
    if not isinstance(payload, dict):
        raise CorruptResultError(
            f"raw bench document is {type(payload).__name__}, "
            f"expected object"
        )
    name = suite or str(payload.get("bench") or "")
    if not name:
        raise CorruptResultError(
            "raw bench document has no 'bench' key (and no --suite "
            "override was given)"
        )
    shape = _BENCH_SHAPES.get(name, {})
    records = []
    for key in sorted(payload):
        if key in _RAW_META_KEYS:
            continue
        value = payload[key]
        if isinstance(value, bool):
            unit, direction = ("flag", "info")
            value = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            unit, direction = shape.get(key) or _infer_metric(key)
        else:
            continue
        records.append(BenchRecord(
            suite=name, metric=key, value=float(value), unit=unit,
            direction=direction, commit=commit, host=host,
            repetitions=repetitions,
        ))
    if not records:
        raise CorruptResultError(
            f"raw bench document {name!r} holds no numeric metrics"
        )
    return records


# ----------------------------------------------------------------------
# Noise-band math and the diff gate
# ----------------------------------------------------------------------
def median(values: Sequence[float]) -> float:
    """Plain median (mean of the middle pair on even counts)."""
    ordered = sorted(values)
    if not ordered:
        raise ConfigurationError("median of an empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation — the robust spread estimator.

    Unlike a standard deviation, one CI runner having a bad day moves
    the MAD hardly at all; and for a baseline of identical reruns it is
    exactly zero, which the band floors below absorb.
    """
    center = median(values)
    return median([abs(v - center) for v in values])


@dataclasses.dataclass(frozen=True)
class DiffPolicy:
    """How wide the tolerated noise band is around the baseline median.

    ``tolerance = max(mad_scale * MAD, rel_floor * |median|,
    abs_floor)``.  The MAD term adapts to each metric's observed noise;
    the relative floor keeps a dead-quiet baseline (identical reruns,
    MAD = 0) from flagging sub-percent jitter; the absolute floor
    guards metrics whose median is zero.  Defaults flag a 10% move on a
    quiet metric (10% > rel_floor) while staying silent on reruns.
    """

    mad_scale: float = 4.0
    rel_floor: float = 0.05
    abs_floor: float = 1e-9
    #: Baselines smaller than this report ``new`` instead of gating.
    min_baseline: int = 1

    def __post_init__(self):
        if self.mad_scale <= 0 or self.rel_floor < 0 or self.abs_floor < 0:
            raise ConfigurationError(
                f"diff policy out of range: mad_scale={self.mad_scale}, "
                f"rel_floor={self.rel_floor}, abs_floor={self.abs_floor}"
            )
        if self.min_baseline < 1:
            raise ConfigurationError(
                f"min_baseline must be >= 1: {self.min_baseline}"
            )

    def tolerance(self, baseline: Sequence[float]) -> float:
        center = median(baseline)
        return max(
            self.mad_scale * mad(baseline),
            self.rel_floor * abs(center),
            self.abs_floor,
        )


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """One metric's verdict from :func:`diff_history`."""

    suite: str
    metric: str
    value: float
    unit: str
    direction: str
    status: str  # "ok" | "regression" | "improved" | "new" | "info"
    baseline_n: int = 0
    baseline_median: float = 0.0
    tolerance: float = 0.0

    def render(self) -> str:
        base = f"{self.suite}.{self.metric:<20} {self.value:>12.4g}"
        if self.unit:
            base += f" {self.unit}"
        if self.status in ("new", "info"):
            return f"  {self.status:<10} {base}"
        delta = self.value - self.baseline_median
        return (
            f"  {self.status:<10} {base}  vs median "
            f"{self.baseline_median:.4g} ± {self.tolerance:.4g} "
            f"({delta:+.4g}, n={self.baseline_n})"
        )


def diff_history(
    records: Sequence[BenchRecord],
    commit: str = "",
    policy: Optional[DiffPolicy] = None,
) -> List[MetricDelta]:
    """Gate the candidate commit's records against everyone else's.

    The candidate for each (suite, metric) is its *latest* record with
    the candidate commit (default: the commit of the last record in
    the history); the baseline is every record of the same metric from
    other commits.  ``info`` metrics and metrics with no baseline
    never gate — they report ``info`` / ``new``.
    """
    policy = policy or DiffPolicy()
    records = list(records)
    if not commit:
        if not records:
            return []
        commit = records[-1].commit
    grouped: Dict[Tuple[str, str], List[BenchRecord]] = {}
    for record in records:
        grouped.setdefault(record.key, []).append(record)
    deltas = []
    for key in sorted(grouped):
        candidates = [r for r in grouped[key] if r.commit == commit]
        if not candidates:
            continue
        candidate = candidates[-1]
        baseline = [
            r.value for r in grouped[key] if r.commit != commit
        ]
        if candidate.direction == "info":
            status, center, tolerance = "info", 0.0, 0.0
        elif len(baseline) < policy.min_baseline:
            status, center, tolerance = "new", 0.0, 0.0
        else:
            center = median(baseline)
            tolerance = policy.tolerance(baseline)
            worse = (
                candidate.value < center - tolerance
                if candidate.direction == "higher"
                else candidate.value > center + tolerance
            )
            better = (
                candidate.value > center + tolerance
                if candidate.direction == "higher"
                else candidate.value < center - tolerance
            )
            status = (
                "regression" if worse else "improved" if better else "ok"
            )
        deltas.append(MetricDelta(
            suite=candidate.suite, metric=candidate.metric,
            value=candidate.value, unit=candidate.unit,
            direction=candidate.direction, status=status,
            baseline_n=len(baseline), baseline_median=center,
            tolerance=tolerance,
        ))
    return deltas


#: Levels of the trend sparkline, lowest to highest.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Unicode trend line of a series, oldest to newest.

    Each value maps to one of eight block heights scaled between the
    series min and max; a flat series (every value equal, e.g. the
    bit-identical reruns the diff gate is built around) renders at the
    lowest level so any later movement is visible.  Only the newest
    ``width`` values are drawn — the tail is what a trend glance is
    for.
    """
    if width < 1:
        raise ConfigurationError(f"sparkline width must be >= 1: {width}")
    tail = [float(v) for v in values][-width:]
    if not tail:
        return ""
    lo, hi = min(tail), max(tail)
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(tail)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[round((v - lo) / (hi - lo) * top)] for v in tail
    )


def render_diff(deltas: Sequence[MetricDelta], commit: str = "") -> str:
    """Terminal rendering of a diff, regressions first."""
    order = {"regression": 0, "improved": 1, "ok": 2, "new": 3, "info": 4}
    tallies: Dict[str, int] = {}
    for delta in deltas:
        tallies[delta.status] = tallies.get(delta.status, 0) + 1
    header = f"bench diff{f' @ {commit}' if commit else ''}: " + (
        ", ".join(
            f"{tallies[s]} {s}" for s in order if s in tallies
        ) or "no candidate records"
    )
    lines = [header]
    for delta in sorted(
        deltas, key=lambda d: (order[d.status], d.suite, d.metric)
    ):
        lines.append(delta.render())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Local bench suites (`repro-sim bench run`)
# ----------------------------------------------------------------------
#: (unit, direction) of every metric the local suites emit.
_SUITE_METRICS: Dict[str, Dict[str, Tuple[str, str]]] = {
    "functional_pass": {
        "wall_s": ("s", "lower"),
        "refs_per_sec": ("refs/s", "higher"),
    },
    "replay_kernel": {
        "scalar_s": ("s", "lower"),
        "batch_s": ("s", "lower"),
        "speedup": ("ratio", "higher"),
    },
    "passcache": {
        "cold_s": ("s", "lower"),
        "warm_s": ("s", "lower"),
        "speedup": ("ratio", "higher"),
    },
}


def _bench_functional_pass(length: int, seed: int) -> Dict[str, float]:
    """Time one functional pass (the organization-dependent cost)."""
    from ..trace.suite import build_trace
    from ..units import KB
    from .config import baseline_config
    from .fastpath import functional_pass

    trace = build_trace("mu3", length=length, seed=seed)
    config = baseline_config(cache_size_bytes=16 * KB)
    t0 = time.perf_counter()  # reprolint: disable=REPRO001
    functional_pass(config, trace, seed=seed)
    wall = time.perf_counter() - t0  # reprolint: disable=REPRO001
    return {
        "wall_s": wall,
        "refs_per_sec": length / wall if wall > 0 else 0.0,
    }


def _bench_replay_kernel(length: int, seed: int) -> Dict[str, float]:
    """Scalar vs batch grid pricing over one warm stream."""
    from ..trace.suite import build_trace
    from ..units import KB
    from .config import baseline_config
    from .fastpath import functional_pass, replay
    from .replaykernel import BatchReplayKernel, TimingPoint

    trace = build_trace("mu3", length=length, seed=seed)
    config = baseline_config(cache_size_bytes=16 * KB)
    stream = functional_pass(config, trace, seed=seed)
    points = [
        TimingPoint(
            memory=config.memory, cycle_ns=cycle_ns,
            write_buffer_depth=config.l1.write_buffer_depth,
        )
        for cycle_ns in (20.0, 30.0, 40.0, 56.0, 80.0)
    ]
    t0 = time.perf_counter()  # reprolint: disable=REPRO001
    scalar = [
        replay(
            stream, point.memory, point.cycle_ns,
            write_buffer_depth=point.write_buffer_depth,
        )
        for point in points
    ]
    scalar_s = time.perf_counter() - t0  # reprolint: disable=REPRO001
    t0 = time.perf_counter()  # reprolint: disable=REPRO001
    batch = BatchReplayKernel(stream).replay_grid(points)
    batch_s = time.perf_counter() - t0  # reprolint: disable=REPRO001
    if [o.cycles for o in scalar] != [o.cycles for o in batch]:
        raise CorruptResultError(
            "replay_kernel bench: scalar and batch pricing diverged"
        )
    return {
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s if batch_s > 0 else 0.0,
    }


def _bench_passcache(length: int, seed: int) -> Dict[str, float]:
    """Cold-then-warm functional passes against a throwaway cache."""
    import shutil
    import tempfile

    from ..trace.suite import build_trace
    from ..units import KB
    from .config import baseline_config
    from .passcache import PassCache

    trace = build_trace("mu3", length=length, seed=seed)
    configs = [
        baseline_config(cache_size_bytes=size * KB)
        for size in (4, 8, 16)
    ]
    directory = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cold_cache = PassCache(directory)
        t0 = time.perf_counter()  # reprolint: disable=REPRO001
        for config in configs:
            cold_cache.get_or_run(config, trace, seed=seed)
        cold_s = time.perf_counter() - t0  # reprolint: disable=REPRO001
        warm_cache = PassCache(directory)
        t0 = time.perf_counter()  # reprolint: disable=REPRO001
        for config in configs:
            warm_cache.get_or_run(config, trace, seed=seed)
        warm_s = time.perf_counter() - t0  # reprolint: disable=REPRO001
        if warm_cache.counters.misses:
            raise CorruptResultError(
                f"passcache bench: warm pass missed "
                f"{warm_cache.counters.misses} time(s)"
            )
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else 0.0,
    }


#: The local suites, by name.  Each runner returns ``{metric: value}``
#: matching its :data:`_SUITE_METRICS` declaration.
BENCH_SUITES: Dict[str, Callable[[int, int], Dict[str, float]]] = {
    "functional_pass": _bench_functional_pass,
    "replay_kernel": _bench_replay_kernel,
    "passcache": _bench_passcache,
}


def run_bench_suites(
    names: Sequence[str],
    repeat: int = 3,
    length: int = 20_000,
    seed: int = 0,
    commit: str = "",
    host: str = "",
) -> Tuple[List[BenchRecord], Dict[Tuple[str, str], float]]:
    """Run local suites ``repeat`` times; median each metric.

    Returns ``(records, noise)``: one record per (suite, metric) whose
    value is the median over the repetitions, and the per-metric MAD of
    those same repetitions — the local noise floor, worth printing next
    to the medians so a wide band is visible at record time.
    """
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1: {repeat}")
    unknown = [n for n in names if n not in BENCH_SUITES]
    if unknown:
        raise ConfigurationError(
            f"unknown bench suite(s) {', '.join(unknown)}; available: "
            f"{', '.join(sorted(BENCH_SUITES))}"
        )
    samples: Dict[Tuple[str, str], List[float]] = {}
    for _ in range(repeat):
        for name in names:
            for metric, value in BENCH_SUITES[name](length, seed).items():
                samples.setdefault((name, metric), []).append(value)
    records = []
    noise = {}
    for (suite, metric), values in samples.items():
        unit, direction = _SUITE_METRICS[suite][metric]
        records.append(BenchRecord(
            suite=suite, metric=metric, value=median(values), unit=unit,
            direction=direction, commit=commit, host=host,
            repetitions=repeat,
        ))
        noise[(suite, metric)] = mad(values)
    return records, noise
