"""Two-phase simulation: one functional pass, many timing replays.

The paper amortized its exploration cost by macro-expanding parameters
into compiled simulators and farming runs to 10–20 workstations.  The
equivalent trick here exploits a structural property of the model: for a
fixed cache *organization*, the stream of memory events (read misses,
dirty write backs, bypassing write misses) is independent of every
*temporal* parameter — cycle time, memory latency, transfer rate, write
buffer depth.  So:

1. :func:`functional_pass` simulates the caches once per organization
   and records a compact event stream plus warm-start hit/miss counters;
2. :func:`replay` re-prices that event stream for any timing in
   O(events) rather than O(references), reusing the *same*
   :class:`~repro.memory.mainmemory.MainMemory` and
   :class:`~repro.cache.writebuffer.TimedWriteBuffer` classes the engine
   uses, so contention, recovery, stale-read stalls and buffer-full
   stalls are modeled identically.

``tests/sim/test_fastpath_vs_engine.py`` asserts cycle-for-cycle equality
with :class:`~repro.sim.engine.Engine` across organizations and clocks.

When one stream is priced against a whole timing *grid*,
:class:`repro.sim.replaykernel.BatchReplayKernel` vectorizes the
uncontended stretches of this replay loop and hands the contended tail
to an exact scalar state machine — bit-identical outcomes, one kernel
call per stream (see ``docs/internals.md``, "The batch replay
kernel").  Telemetry-enabled replays stay on :func:`replay`: the
kernel takes no ``telemetry`` handle.

The fastpath supports the configuration family all the paper's sweeps
use: split L1, write-back, no fetch on write miss, whole-block fetch,
blocking misses, no lower cache levels.  Everything else goes through
the engine.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Optional, Sequence

from ..cache.cache import Cache, key_block_addr, key_pid
from ..cache.writebuffer import TimedWriteBuffer
from ..core.policy import MissHandling, WriteMissPolicy, WritePolicy
from ..core.timing import MemoryTiming
from ..cpu.processor import NO_REF, CoupletStream, pair_couplets
from ..errors import ConfigurationError
from ..memory.mainmemory import MainMemory
from ..trace.record import RefKind, Trace
from .config import SystemConfig
from .statistics import BufferCounters, CacheCounters, SimStats
from .telemetry import Telemetry

_STORE = int(RefKind.STORE)

#: d-side event codes within an eventful couplet.
_D_NONE = 0
_D_WRITE_HIT = 1
_D_READ_MISS = 2
_D_WRITE_MISS = 3

#: The parallel per-event buffers of an :class:`EventStream`, in
#: serialization order.  Each is an ``array('q')`` (signed 64-bit)
#: rather than a ``List[int]``: an event costs 8 bytes instead of a
#: ~28-byte boxed int, which cuts both resident memory and the pickling
#: bill when streams cross the process-pool boundary or land in the
#: persistent pass cache (:mod:`repro.sim.passcache`).
EVENT_FIELDS = (
    "ev_gap", "ev_imiss", "ev_iaddr", "ev_ipid", "ev_dtype",
    "ev_daddr", "ev_dpid", "ev_vaddr", "ev_vpid",
)


@dataclass
class EventStream:
    """Timing-independent record of one (organization, trace) pass.

    The nine ``ev_*`` buffers are ``array('q')`` in practice (see
    :data:`EVENT_FIELDS`); any integer sequence satisfies :func:`replay`.
    """

    trace_name: str
    config_summary: str
    i_block_words: int
    d_block_words: int
    n_couplets: int
    n_couplets_measured: int
    n_refs_measured: int
    warm_event_index: int
    warm_base_offset: int
    end_base: int
    ev_gap: Sequence[int]
    ev_imiss: Sequence[int]
    ev_iaddr: Sequence[int]
    ev_ipid: Sequence[int]
    ev_dtype: Sequence[int]
    ev_daddr: Sequence[int]
    ev_dpid: Sequence[int]
    ev_vaddr: Sequence[int]
    ev_vpid: Sequence[int]
    icache: CacheCounters
    dcache: CacheCounters

    @property
    def n_events(self) -> int:
        return len(self.ev_gap)


@dataclass(frozen=True)
class ReplayOutcome:
    """Timing-dependent results of re-pricing an event stream."""

    cycles: int
    total_cycles: int
    warm_cycles: int
    memory_reads: int
    memory_writes: int
    memory_busy_cycles: int
    buffer: BufferCounters


def check_fastpath_supported(config: SystemConfig) -> None:
    """Raise :class:`ConfigurationError` if ``config`` needs the engine."""
    l1 = config.l1
    if l1.unified:
        raise ConfigurationError("fastpath requires a split L1")
    if config.levels:
        raise ConfigurationError("fastpath supports single-level systems only")
    if l1.policy.write_policy is not WritePolicy.WRITE_BACK:
        raise ConfigurationError("fastpath requires a write-back D-cache")
    if l1.policy.write_miss is not WriteMissPolicy.NO_ALLOCATE:
        raise ConfigurationError("fastpath requires no-allocate write misses")
    if l1.policy.miss_handling is not MissHandling.BLOCKING:
        raise ConfigurationError("fastpath requires blocking misses")
    assert l1.i_geometry is not None
    for geometry in (l1.i_geometry, l1.d_geometry):
        if geometry.fetch_words != geometry.block_words:
            raise ConfigurationError("fastpath requires whole-block fetch")
    if l1.timing.read_hit_cycles != 1 or l1.timing.write_hit_cycles != 2:
        raise ConfigurationError(
            "fastpath assumes 1-cycle read hits and 2-cycle write hits"
        )
    if config.translation is not None:
        raise ConfigurationError(
            "fastpath supports virtual caches only; physical-cache mode "
            "(translation) requires the engine"
        )


def functional_pass(
    config: SystemConfig,
    trace: Trace,
    couplets: Optional[CoupletStream] = None,
    seed: int = 0,
) -> EventStream:
    """Run the caches functionally once; record the event stream.

    The result depends only on the cache organizations (and replacement
    seed), never on cycle time or memory speed.
    """
    check_fastpath_supported(config)
    l1 = config.l1
    assert l1.i_geometry is not None
    if couplets is None:
        couplets = pair_couplets(trace)
    icache = Cache(l1.i_geometry, l1.policy, seed=seed + 101)
    dcache = Cache(l1.d_geometry, l1.policy, seed=seed)
    i_offset_bits = l1.i_geometry.offset_bits
    d_offset_bits = l1.d_geometry.offset_bits
    i_block = l1.i_geometry.block_words
    d_block = l1.d_geometry.block_words
    i_mask = ~(i_block - 1)
    d_mask = ~(d_block - 1)
    iread = icache.access_read
    dread = dcache.access_read
    dwrite = dcache.access_write
    ci = CacheCounters()
    cd = CacheCounters()
    ev_gap = array("q")
    ev_imiss = array("q")
    ev_iaddr = array("q")
    ev_ipid = array("q")
    ev_dtype = array("q")
    ev_daddr = array("q")
    ev_dpid = array("q")
    ev_vaddr = array("q")
    ev_vpid = array("q")
    i_addr = couplets.i_addr
    i_pid = couplets.i_pid
    d_kind = couplets.d_kind
    d_addr = couplets.d_addr
    d_pid = couplets.d_pid
    warm_k = couplets.warm_couplet
    if warm_k >= len(i_addr):
        raise ConfigurationError(
            "warm boundary leaves nothing to measure; shorten it"
        )
    snap_i = ci.snapshot()
    snap_d = cd.snapshot()
    warm_event_index = 0
    warm_base_offset = 0
    base_acc = 0
    for k in range(len(i_addr)):
        if k == warm_k:
            snap_i = ci.snapshot()
            snap_d = cd.snapshot()
            warm_event_index = len(ev_gap)
            warm_base_offset = base_acc
        imiss = False
        ia = i_addr[k]
        ip = -1
        if ia != NO_REF:
            ip = i_pid[k]
            ci.reads += 1
            ires = iread(ip, ia)
            if not ires.hit:
                imiss = True
                ci.read_misses += 1
                ci.fetched_words += ires.fetched_words
                # Split I-caches never hold dirty data, so victims are
                # clean and silently dropped.
        dtype = _D_NONE
        dk = d_kind[k]
        da = dp = -1
        vaddr = vpid = -1
        if dk != NO_REF:
            da = d_addr[k]
            dp = d_pid[k]
            if dk == _STORE:
                cd.writes += 1
                dres = dwrite(dp, da)
                if dres.hit:
                    dtype = _D_WRITE_HIT
                else:
                    dtype = _D_WRITE_MISS
                    cd.write_misses += 1
                    cd.bypass_writes += 1
            else:
                cd.reads += 1
                dres = dread(dp, da)
                if not dres.hit:
                    dtype = _D_READ_MISS
                    cd.read_misses += 1
                    cd.fetched_words += dres.fetched_words
                    if dres.victim_key is not None:
                        vpid = key_pid(dres.victim_key)
                        vaddr = key_block_addr(dres.victim_key) << d_offset_bits
                        cd.writeback_blocks += 1
                        cd.writeback_words_full += d_block
                        cd.writeback_words_dirty += dres.victim_dirty_words
        if imiss or dtype in (_D_READ_MISS, _D_WRITE_MISS):
            ev_gap.append(base_acc)
            base_acc = 0
            ev_imiss.append(1 if imiss else 0)
            ev_iaddr.append((ia & i_mask) if imiss else -1)
            ev_ipid.append(ip if imiss else -1)
            ev_dtype.append(dtype)
            ev_daddr.append((da & d_mask) if dtype == _D_READ_MISS else da)
            ev_dpid.append(dp)
            ev_vaddr.append(vaddr)
            ev_vpid.append(vpid)
        else:
            base_acc += 2 if dtype == _D_WRITE_HIT else 1
    return EventStream(
        trace_name=trace.name,
        config_summary=config.describe(),
        i_block_words=i_block,
        d_block_words=d_block,
        n_couplets=len(i_addr),
        n_couplets_measured=len(i_addr) - warm_k,
        n_refs_measured=couplets.n_warm_refs,
        warm_event_index=warm_event_index,
        warm_base_offset=warm_base_offset,
        end_base=base_acc,
        ev_gap=ev_gap,
        ev_imiss=ev_imiss,
        ev_iaddr=ev_iaddr,
        ev_ipid=ev_ipid,
        ev_dtype=ev_dtype,
        ev_daddr=ev_daddr,
        ev_dpid=ev_dpid,
        ev_vaddr=ev_vaddr,
        ev_vpid=ev_vpid,
        icache=ci.since(snap_i),
        dcache=cd.since(snap_d),
    )


def replay(
    stream: EventStream,
    memory: MemoryTiming,
    cycle_ns: float,
    write_buffer_depth: int = 4,
    telemetry: Optional[Telemetry] = None,
) -> ReplayOutcome:
    """Re-price an event stream under one temporal parameter set.

    ``telemetry`` enables the cycle-attribution ledger / event tracer.
    Gap cycles between events are pure L1 service; eventful couplets
    build the same per-half segment lists the engine does and charge
    them through the same :meth:`CycleLedger.charge_couplet
    <repro.sim.telemetry.CycleLedger.charge_couplet>`, so the two
    simulators' attributions are identical, not merely close.
    """
    mem = MainMemory(memory, cycle_ns)
    wb = TimedWriteBuffer(write_buffer_depth, mem)
    tel = telemetry
    if tel is not None and tel.ledger is None and tel.tracer is None:
        tel = None
    ledger = tel.ledger if tel is not None else None
    if tel is not None:
        mem.record_segments = True
    now = 0
    now_at_last_event = 0
    warm_now = -1
    warm_mem = (0, 0, 0)
    widx = stream.warm_event_index
    i_block = stream.i_block_words
    d_block = stream.d_block_words
    ev_gap = stream.ev_gap
    ev_imiss = stream.ev_imiss
    ev_iaddr = stream.ev_iaddr
    ev_ipid = stream.ev_ipid
    ev_dtype = stream.ev_dtype
    ev_daddr = stream.ev_daddr
    ev_dpid = stream.ev_dpid
    ev_vaddr = stream.ev_vaddr
    ev_vpid = stream.ev_vpid
    read_block = mem.read_block
    drain = wb.background_drain
    match = wb.resolve_read_match
    push = wb.push
    for e in range(len(ev_gap)):
        if e == widx:
            warm_now = now + stream.warm_base_offset
            warm_mem = (mem.reads, mem.writes, mem.busy_cycles)
            if ledger is not None:
                ledger.mark_warm(stream.warm_base_offset)
        gap = ev_gap[e]
        if gap and ledger is not None:
            # Hit service between events (1 cycle per couplet, 2 for
            # write hits) — matches the engine's per-couplet fallback.
            ledger.charge("l1_service", gap)
        now += gap
        start = now
        end = start + 1
        i_segs = d_segs = None
        if ev_imiss[e]:
            drain(start)
            t = match(ev_ipid[e], ev_iaddr[e], i_block, start)
            done, _first = read_block(ev_ipid[e], ev_iaddr[e], i_block, t, 0)
            if done > end:
                end = done
            if tel is not None:
                i_segs = [("wb_match_stall", t - start)] if t > start else []
                i_segs.extend(mem.last_read_segments)
        dt = ev_dtype[e]
        if dt == _D_WRITE_HIT:
            if start + 2 > end:
                end = start + 2
            if tel is not None:
                d_segs = [("l1_service", 2)]
        elif dt == _D_READ_MISS:
            drain(start)
            t = match(ev_dpid[e], ev_daddr[e], d_block, start)
            overlap = 0
            va = ev_vaddr[e]
            if va >= 0:
                push(ev_vpid[e], va, d_block, t)
                overlap = d_block
            done, _first = read_block(ev_dpid[e], ev_daddr[e], d_block, t, overlap)
            if done > end:
                end = done
            if tel is not None:
                d_segs = [("wb_match_stall", t - start)] if t > start else []
                d_segs.extend(mem.last_read_segments)
        elif dt == _D_WRITE_MISS:
            release = push(ev_dpid[e], ev_daddr[e], 1, start + 1)
            tail = start + 2
            if release > tail:
                tail = release
            if tail > end:
                end = tail
            if tel is not None:
                d_segs = [("l1_service", 2)]
                if tail > start + 2:
                    d_segs.append(("wb_full_stall", tail - start - 2))
        if tel is not None:
            tel.note_couplet(start, end, i_segs, d_segs)
        now = end
        now_at_last_event = now
    if warm_now < 0:
        # The warm boundary lies after the final event.
        warm_now = now_at_last_event + stream.warm_base_offset
        warm_mem = (mem.reads, mem.writes, mem.busy_cycles)
        if ledger is not None:
            ledger.mark_warm(stream.warm_base_offset)
    if stream.end_base and ledger is not None:
        ledger.charge("l1_service", stream.end_base)
    now += stream.end_base
    if ledger is not None:
        ledger.verify(now, now - warm_now)
    return ReplayOutcome(
        cycles=now - warm_now,
        total_cycles=now,
        warm_cycles=warm_now,
        memory_reads=mem.reads - warm_mem[0],
        memory_writes=mem.writes - warm_mem[1],
        memory_busy_cycles=mem.busy_cycles - warm_mem[2],
        buffer=BufferCounters(
            pushes=wb.pushes,
            full_stalls=wb.full_stalls,
            match_stalls=wb.match_stalls,
            max_occupancy=wb.max_occupancy,
        ),
    )


def assemble_stats(
    stream: EventStream,
    outcome: ReplayOutcome,
    cycle_ns: float,
) -> SimStats:
    """Combine a functional pass and one replay into :class:`SimStats`."""
    return SimStats(
        trace_name=stream.trace_name,
        config_summary=stream.config_summary,
        cycle_ns=cycle_ns,
        cycles=outcome.cycles,
        total_cycles=outcome.total_cycles,
        warm_cycles=outcome.warm_cycles,
        n_refs=stream.n_refs_measured,
        n_couplets=stream.n_couplets_measured,
        icache=stream.icache,
        dcache=stream.dcache,
        lower=None,
        buffer=outcome.buffer,
        memory_reads=outcome.memory_reads,
        memory_writes=outcome.memory_writes,
        memory_busy_cycles=outcome.memory_busy_cycles,
    )


def fast_simulate(
    config: SystemConfig,
    trace: Trace,
    couplets: Optional[CoupletStream] = None,
    seed: int = 0,
    telemetry: Optional[Telemetry] = None,
) -> SimStats:
    """Drop-in equivalent of :func:`repro.sim.engine.simulate` for
    fastpath-supported configurations."""
    stream = functional_pass(config, trace, couplets=couplets, seed=seed)
    outcome = replay(
        stream, config.memory, config.cycle_ns,
        write_buffer_depth=config.l1.write_buffer_depth,
        telemetry=telemetry,
    )
    return assemble_stats(stream, outcome, config.cycle_ns)
