"""Cycle-accounting telemetry: where do the cycles go?

The paper's bottom line — execution time — is a single number, but its
*argument* is a decomposition: miss latencies, write-buffer stalls,
recovery gaps and quantization losses each pull the total in different
directions as the design varies.  This module makes that decomposition a
first-class, always-verifiable artifact:

* :class:`CycleLedger` charges every simulated cycle to a named bucket
  (:data:`BUCKETS`).  Attribution follows the *critical path* of each
  couplet: the CPU proceeds at the latest completion among its halves,
  so the couplet's cycles are charged along the segment breakdown of the
  half that finished last.  The ledger is exact by construction —
  :meth:`CycleLedger.verify` asserts that the buckets sum to the total
  cycle count, and the engine and fastpath charge through the *same*
  :meth:`CycleLedger.charge_couplet` so their attributions cannot drift;

* :class:`EventTracer` is an opt-in bounded ring buffer of per-reference
  events (misses and stalls, the cycles worth looking at), dumpable as
  Chrome ``trace_event`` JSON (load in ``chrome://tracing`` or Perfetto;
  one trace microsecond renders one simulated cycle);

* :class:`StageTimer`, :func:`peak_rss_kb` and :class:`RunReport` are
  the host-side half: wall-clock per stage via ``perf_counter``,
  references simulated per second, peak RSS, and a JSON metrics document
  campaigns persist next to their results
  (:func:`aggregate_reports` folds a sweep's reports into one summary).

Telemetry is off by default and costs nothing but a handful of ``is not
None`` checks in the simulators' loops; every allocation in this module
happens only once a :class:`Telemetry` object is actually passed in.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import CorruptResultError, SimulationError

#: A segment is (bucket name, cycle count); each simulator half-access
#: reports its service time as an ordered list of segments.
Segment = Tuple[str, int]

#: The attribution buckets, in critical-path order.  Their sum over a
#: run equals the total simulated cycle count — exactly.
BUCKETS = (
    # CPU-side service: the base issue cycle of every couplet, read/write
    # hit service, and the data cycle completing a write-allocate miss.
    "l1_service",
    # TLB-miss page-table walks (physical-cache mode only).
    "translation",
    # Reads delayed while matching write-buffer entries drain (§2's
    # stale-data check).
    "wb_match_stall",
    # Writes delayed by a full write buffer force-draining its oldest
    # entry.
    "wb_full_stall",
    # Waiting for the level below while it is busy with a previous
    # operation (contention proper).
    "mem_busy",
    # Waiting out the DRAM recovery gap between operations.
    "mem_recovery",
    # Address + access latency of a miss fetch.
    "fetch_latency",
    # The dirty victim's transfer into the write buffer extending the
    # latency period (§2: one-word-wide data path).
    "writeback_overlap",
    # Data transfer of the fetched words.
    "fetch_transfer",
    # Time inside a lower cache level (L2/L3) fetch, not decomposed
    # further (multi-level engine configurations only).
    "lower_fetch",
)

_L1 = "l1_service"


def truncate_segments(
    segments: List[Segment], budget: int
) -> List[Segment]:
    """Clip an ordered segment list to ``budget`` total cycles.

    Non-blocking miss modes (load-forward, early continuation) release
    the CPU before the fetch completes; the cycles past the release point
    are off the critical path and must not be charged.  Clipping keeps
    the *earliest* ``budget`` cycles, so what gets dropped is the tail of
    the transfer — exactly what the CPU no longer waits for.
    """
    total = 0
    for index, (_bucket, cycles) in enumerate(segments):
        if total + cycles >= budget:
            clipped = segments[: index + 1]
            clipped[index] = (segments[index][0], budget - total)
            return [s for s in clipped if s[1] > 0]
        total += cycles
    if total < budget:
        raise SimulationError(
            f"segment total {total} is below the charge budget {budget}"
        )
    return [s for s in segments if s[1] > 0]


class CycleLedger:
    """Exact attribution of simulated cycles to named buckets.

    The ledger accumulates from cycle zero; :meth:`mark_warm` snapshots
    the buckets when the simulation crosses the trace's warm boundary so
    :meth:`measured` can report warm-start attribution.  Conservation
    holds for both views: total buckets sum to ``total_cycles`` and
    measured buckets sum to ``cycles`` (see :meth:`verify`).
    """

    def __init__(self) -> None:
        self.buckets: Dict[str, int] = {name: 0 for name in BUCKETS}
        self.warm_buckets: Optional[Dict[str, int]] = None

    # -- charging ------------------------------------------------------
    def charge(self, bucket: str, cycles: int) -> None:
        self.buckets[bucket] += cycles

    def charge_segments(self, segments: Iterable[Segment]) -> None:
        buckets = self.buckets
        for bucket, cycles in segments:
            buckets[bucket] += cycles

    def charge_couplet(
        self,
        duration: int,
        i_segments: Optional[List[Segment]],
        d_segments: Optional[List[Segment]],
    ) -> None:
        """Charge one couplet's cycles along its critical path.

        ``i_segments``/``d_segments`` are the per-half service
        breakdowns (``None`` for an absent half), each summing to that
        half's completion minus the couplet's issue cycle.  The couplet
        lasts until its *latest* half completes, so the half whose
        segment total equals ``duration`` is the critical path and gets
        charged; the shorter half ran entirely in its shadow.  Both
        simulators call this same method, which is what keeps their
        attributions identical.

        Ties break toward the instruction side: the fastpath's event
        stream cannot reconstruct data-side plain read hits inside an
        eventful couplet, so the engine must prefer the half both
        simulators can see identically.
        """
        if i_segments is not None and sum(s[1] for s in i_segments) == duration:
            self.charge_segments(i_segments)
            return
        if d_segments is not None and sum(s[1] for s in d_segments) == duration:
            self.charge_segments(d_segments)
            return
        # Neither half spans the couplet: the one-cycle issue floor
        # dominates (both halves absent or instantaneous).
        self.buckets[_L1] += duration

    # -- warm-start accounting -----------------------------------------
    def mark_warm(self, base_offset: int = 0) -> None:
        """Snapshot the buckets at the warm boundary.

        ``base_offset`` accounts for hit cycles that fall between the
        last pre-warm event and the boundary in the fastpath's
        event-gap representation; they are pure L1 service.
        """
        snapshot = dict(self.buckets)
        snapshot[_L1] += base_offset
        self.warm_buckets = snapshot

    # -- views ---------------------------------------------------------
    def total(self) -> int:
        return sum(self.buckets.values())

    def as_dict(self) -> Dict[str, int]:
        return dict(self.buckets)

    def measured(self) -> Dict[str, int]:
        """Buckets accumulated past the warm boundary."""
        if self.warm_buckets is None:
            return dict(self.buckets)
        return {
            name: self.buckets[name] - self.warm_buckets[name]
            for name in BUCKETS
        }

    def measured_total(self) -> int:
        return sum(self.measured().values())

    def verify(
        self, total_cycles: int, measured_cycles: Optional[int] = None
    ) -> None:
        """Assert cycle conservation; raise :class:`SimulationError`.

        The invariant is exact: every simulated cycle is charged to
        exactly one bucket.  A mismatch means an attribution bug in a
        simulator, never a rounding artifact.
        """
        total = self.total()
        if total != total_cycles:
            raise SimulationError(
                f"cycle ledger does not conserve: buckets sum to {total}, "
                f"simulator counted {total_cycles} cycles "
                f"(delta {total - total_cycles:+d})"
            )
        if measured_cycles is not None:
            measured = self.measured_total()
            if measured != measured_cycles:
                raise SimulationError(
                    f"warm-start ledger does not conserve: measured "
                    f"buckets sum to {measured}, simulator counted "
                    f"{measured_cycles} cycles "
                    f"(delta {measured - measured_cycles:+d})"
                )

    def render(self, total_cycles: Optional[int] = None) -> str:
        """Human-readable bucket table (measured view when marked)."""
        buckets = self.measured()
        total = sum(buckets.values())
        denominator = total if total else 1
        lines = []
        for name in BUCKETS:
            cycles = buckets[name]
            if not cycles:
                continue
            lines.append(
                f"  {name:<18} {cycles:>12}  "
                f"({100.0 * cycles / denominator:5.1f}%)"
            )
        lines.append(f"  {'total':<18} {total:>12}")
        if total_cycles is not None:
            status = "ok" if total == total_cycles else "VIOLATED"
            lines.append(
                f"  conservation: buckets {total} == cycles "
                f"{total_cycles}: {status}"
            )
        return "\n".join(lines)


class EventTracer:
    """Bounded ring buffer of simulation events.

    Each event is ``(ts_cycle, dur_cycles, name, track, segments)``.
    When the buffer fills, the oldest events are overwritten — a trace of
    a long run keeps its tail, which is where a surprising slowdown
    usually lives.  :meth:`to_chrome_trace` renders the buffer in Chrome
    ``trace_event`` format with one microsecond per simulated cycle.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise SimulationError(
                f"tracer capacity must be >= 1: {capacity}"
            )
        self.capacity = capacity
        self._events: List[tuple] = []
        self._next = 0
        self.emitted = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events overwritten because the ring was full."""
        return self.emitted - len(self._events)

    def emit(
        self,
        ts: int,
        dur: int,
        name: str,
        track: str,
        segments: Optional[Sequence[Segment]] = None,
    ) -> None:
        event = (ts, dur, name, track, tuple(segments or ()))
        if len(self._events) < self.capacity:
            self._events.append(event)
        else:
            self._events[self._next] = event
            self._next = (self._next + 1) % self.capacity
        self.emitted += 1

    def events(self) -> List[tuple]:
        """Buffered events in emission order."""
        return self._events[self._next:] + self._events[: self._next]

    def to_chrome_trace(self) -> Dict:
        """The Chrome ``trace_event`` JSON object for this buffer."""
        trace_events = [
            {
                "name": track,
                "ph": "M",  # metadata: name the tracks
                "pid": 0,
                "tid": tid,
                "cat": "meta",
                "args": {"name": track},
            }
            for tid, track in enumerate(("icache", "dcache"))
        ]
        tracks = {"icache": 0, "dcache": 1}
        for ts, dur, name, track, segments in self.events():
            trace_events.append({
                "name": name,
                "ph": "X",
                "ts": ts,
                "dur": max(dur, 1),
                "pid": 0,
                "tid": tracks.get(track, 2),
                "cat": "sim",
                "args": {bucket: cycles for bucket, cycles in segments},
            })
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "metadata": {
                "unit": "1us == 1 simulated cycle",
                "emitted": self.emitted,
                "dropped": self.dropped,
            },
        }

    def dump(self, path: Union[str, Path]) -> None:
        # A user-chosen export path, not campaign state: a torn trace
        # dump costs a re-export, never a quarantine.
        Path(path).write_text(  # reprolint: disable=REPRO003
            json.dumps(self.to_chrome_trace()), encoding="utf-8"
        )


class Telemetry:
    """The simulators' observability handle: ledger and/or tracer.

    Passing a :class:`Telemetry` to :meth:`Engine.run
    <repro.sim.engine.Engine.run>` / :func:`repro.sim.fastpath.replay`
    turns instrumentation on; both fields are optional so event tracing
    (the expensive part) stays opt-in independently of the ledger.
    """

    def __init__(
        self,
        ledger: Optional[CycleLedger] = None,
        tracer: Optional[EventTracer] = None,
    ) -> None:
        self.ledger = ledger
        self.tracer = tracer

    def note_couplet(
        self,
        now: int,
        end: int,
        i_segments: Optional[List[Segment]],
        d_segments: Optional[List[Segment]],
    ) -> None:
        """Account one couplet: charge the ledger, trace eventful halves."""
        if self.ledger is not None:
            self.ledger.charge_couplet(end - now, i_segments, d_segments)
        tracer = self.tracer
        if tracer is not None:
            for track, segments in (
                ("icache", i_segments), ("dcache", d_segments)
            ):
                if segments is None:
                    continue
                if len(segments) == 1 and segments[0][0] == _L1:
                    continue  # plain hits: not worth a trace slot
                dur = sum(s[1] for s in segments)
                name = max(segments, key=lambda s: s[1])[0]
                tracer.emit(now, dur, name, track, segments)


# ----------------------------------------------------------------------
# Host-side profiling
# ----------------------------------------------------------------------
class StageTimer:
    """Wall-clock accounting per named stage, via ``perf_counter``."""

    def __init__(self) -> None:
        self.stages: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str):
        # Host-side profiling measures the *simulator*, not the
        # simulation: wall-clock readings land only in advisory wall_s
        # metrics, never in simulated state or cycle counts.
        start = time.perf_counter()  # reprolint: disable=REPRO001
        try:
            yield
        finally:
            self.stages[name] = (
                self.stages.get(name, 0.0)
                + time.perf_counter() - start  # reprolint: disable=REPRO001
            )

    @property
    def total_s(self) -> float:
        return sum(self.stages.values())


class MetricsRegistry:
    """Named counters, gauges and wall-clock spans, in one place.

    The perf-bearing subsystems (sweep, pass cache, replay kernel,
    resilience, work queue) each keep their own counter structures; the
    registry is the thin layer that lets one run — or one bench suite —
    collect them all under dotted names (``passcache.hits``,
    ``replay.batch_outcomes``, ``fabric.leases_reclaimed``) without the
    subsystems knowing about each other.  A registry dump
    (:meth:`as_dict`) is the ``metrics`` block of RunReport schema 5,
    and ``repro-sim bench`` flattens the same dump into benchmark
    records.

    Spans measure the *simulator* on the host clock, exactly like
    :class:`StageTimer`: wall-clock readings land only in advisory
    metrics, never in simulated state or cycle counts.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        #: span name -> {"count": n, "total_s": s, "max_s": s}
        self.spans: Dict[str, Dict[str, float]] = {}

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to the named counter (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a point-in-time measurement."""
        self.gauges[name] = value

    def count_many(self, prefix: str, counts: Dict[str, int]) -> None:
        """Fold a subsystem's counter dict in under ``prefix.*``.

        Zero counts are skipped so an idle subsystem leaves no trace in
        the dump — the block stays exactly as large as the activity.
        """
        for name, delta in counts.items():
            if delta:
                self.count(f"{prefix}.{name}", delta)

    @contextmanager
    def span(self, name: str):
        """Time one named stage; nests and repeats accumulate."""
        start = time.perf_counter()  # reprolint: disable=REPRO001
        try:
            yield
        finally:
            elapsed = (
                time.perf_counter() - start  # reprolint: disable=REPRO001
            )
            entry = self.spans.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += elapsed
            entry["max_s"] = max(entry["max_s"], elapsed)

    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.spans)

    def as_dict(self) -> Dict:
        """The JSON-able dump: the RunReport schema-5 ``metrics`` block."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": {
                name: dict(entry) for name, entry in self.spans.items()
            },
        }

    def merge(self, dump: Dict) -> None:
        """Fold another registry's :meth:`as_dict` dump into this one.

        Counters and span counts/totals add; span maxima and gauges take
        the larger / latest value.  Used by aggregation, where per-run
        metrics blocks from many workers combine into one sweep view.
        """
        if not isinstance(dump, dict):
            return
        for name, delta in (dump.get("counters") or {}).items():
            if isinstance(delta, int):
                self.count(name, delta)
        for name, value in (dump.get("gauges") or {}).items():
            if isinstance(value, (int, float)):
                self.gauge(name, float(value))
        for name, entry in (dump.get("spans") or {}).items():
            if not isinstance(entry, dict):
                continue
            mine = self.spans.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            mine["count"] += int(entry.get("count", 0))
            mine["total_s"] += float(entry.get("total_s", 0.0))
            mine["max_s"] = max(mine["max_s"], float(entry.get("max_s", 0.0)))


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB, if measurable."""
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover — non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover — reported in bytes
        usage //= 1024
    return int(usage)


def quantization_info(config) -> Dict[str, float]:
    """How much the synchronous-memory quantization of §2 costs.

    Physical memory times round *up* to whole machine cycles; the waste
    per operation is the rounded-minus-physical remainder.  This is a
    derived property of the configuration, not a runtime wait, so it is
    reported alongside the ledger rather than as a bucket (the waste is
    already inside ``fetch_latency``/``mem_recovery`` cycles).
    """
    memory = config.memory
    cycle_ns = config.cycle_ns
    latency_cycles = memory.latency_cycles(cycle_ns)
    recovery_cycles = memory.recovery_cycles(cycle_ns)
    latency_quantized_ns = (
        latency_cycles - memory.address_cycles
    ) * cycle_ns
    recovery_quantized_ns = recovery_cycles * cycle_ns
    return {
        "cycle_ns": cycle_ns,
        "latency_ns": memory.latency_ns,
        "latency_cycles": latency_cycles,
        "latency_waste_ns": latency_quantized_ns - memory.latency_ns,
        "recovery_ns": memory.recovery_ns,
        "recovery_cycles": recovery_cycles,
        "recovery_waste_ns": recovery_quantized_ns - memory.recovery_ns,
    }


# ----------------------------------------------------------------------
# Run metrics document
# ----------------------------------------------------------------------
#: Version of the RunReport JSON document.  Version 2 adds the
#: ``pass_cache`` counter block (hits/misses/bytes saved by the
#: persistent functional-pass cache; empty when no cache was in play).
#: Version 3 adds the ``replay`` counter block (batch replay-kernel vs
#: scalar ``replay()`` activity, see
#: :class:`repro.sim.replaykernel.KernelStats`; empty when the run did
#: no grid repricing).  Telemetry-enabled replays always price through
#: the scalar path — the batch kernel takes no ``telemetry`` handle —
#: so a run with a ledger reports ``scalar_replays`` only.
#: Version 4 adds the ``fabric`` counter block (work-queue lease
#: activity for the run: leases issued/lost, heartbeats; see
#: :mod:`repro.sim.workqueue`; empty when the run did not execute
#: through the spool backend).
#: Version 5 adds the ``metrics`` block — a :class:`MetricsRegistry`
#: dump (named counters, gauges and wall-clock spans) collected across
#: every subsystem the run touched; empty when no registry was threaded
#: through the run.
#: Version 6 adds the ``stack_pass`` counter block (shared stack-walk
#: activity: trace walks, streams derived/reused, per-organization
#: fallback passes; see :class:`repro.sim.stackpass.StackPassStats`;
#: empty when the run used the scalar functional-pass strategy).
#: Version 7 adds the ``sampling`` block (trace-interval sampling:
#: selections, intervals/clusters/representatives, exact-vs-sampled
#: reference counts, estimate and refusal counts, and — when
#: validation ran — the worst observed true absolute miss-ratio error
#: as ``true_error_max``; see
#: :class:`repro.sim.sampling.SamplingStats`; empty when the run
#: simulated exactly).
REPORT_SCHEMA = 7


@dataclass
class RunReport:
    """Host + simulation metrics for one run, persisted as JSON.

    Campaigns write one per run under ``<campaign>/metrics/`` and a
    sweep-level aggregation as ``metrics/summary.json``; the CLI's
    ``campaign report`` renders both.
    """

    run_id: str
    trace: str
    config: str
    simulator: str  # "engine" | "fastpath"
    n_refs_total: int
    n_refs_measured: int
    cycles: int
    total_cycles: int
    warm_cycles: int
    buckets: Dict[str, int] = field(default_factory=dict)
    buckets_measured: Dict[str, int] = field(default_factory=dict)
    conserved: bool = False
    wall_s: Dict[str, float] = field(default_factory=dict)
    refs_per_sec: float = 0.0
    peak_rss_kb: Optional[int] = None
    quantization: Dict[str, float] = field(default_factory=dict)
    #: Functional-pass cache activity during this run (see
    #: :class:`repro.sim.passcache.PassCacheCounters.as_dict`); empty
    #: when the run used no pass cache.
    pass_cache: Dict[str, int] = field(default_factory=dict)
    #: Batch replay-kernel activity during this run (see
    #: :meth:`repro.sim.replaykernel.KernelStats.as_dict`); empty when
    #: the run did no grid repricing.
    replay: Dict[str, int] = field(default_factory=dict)
    #: Work-queue fabric activity for this run (lease epochs, losses,
    #: heartbeats; see :mod:`repro.sim.workqueue`); empty when the run
    #: executed outside the spool backend.
    fabric: Dict[str, int] = field(default_factory=dict)
    #: Shared stack-walk activity (see
    #: :meth:`repro.sim.stackpass.StackPassStats.as_dict`); empty when
    #: the run used the scalar functional-pass strategy.
    stack_pass: Dict[str, int] = field(default_factory=dict)
    #: Trace-interval sampling activity (see
    #: :meth:`repro.sim.sampling.SamplingStats.as_dict`, plus
    #: estimate-level keys such as ``ci_half_width`` for single-run
    #: reports); empty when the run simulated exactly.
    sampling: Dict = field(default_factory=dict)
    #: Unified metrics block: a :class:`MetricsRegistry` dump
    #: (``{"counters": ..., "gauges": ..., "spans": ...}``); empty when
    #: no registry was threaded through the run.
    metrics: Dict = field(default_factory=dict)

    @property
    def total_wall_s(self) -> float:
        return sum(self.wall_s.values())

    @property
    def stall_fraction(self) -> float:
        """Measured cycles not spent in L1 service, as a fraction."""
        total = sum(self.buckets_measured.values())
        if not total:
            return 0.0
        return 1.0 - self.buckets_measured.get(_L1, 0) / total

    def to_dict(self) -> Dict:
        return {
            "schema": REPORT_SCHEMA,
            "run_id": self.run_id,
            "trace": self.trace,
            "config": self.config,
            "simulator": self.simulator,
            "n_refs_total": self.n_refs_total,
            "n_refs_measured": self.n_refs_measured,
            "cycles": self.cycles,
            "total_cycles": self.total_cycles,
            "warm_cycles": self.warm_cycles,
            "buckets": dict(self.buckets),
            "buckets_measured": dict(self.buckets_measured),
            "conserved": self.conserved,
            "wall_s": dict(self.wall_s),
            "refs_per_sec": self.refs_per_sec,
            "peak_rss_kb": self.peak_rss_kb,
            "quantization": dict(self.quantization),
            "pass_cache": dict(self.pass_cache),
            "replay": dict(self.replay),
            "fabric": dict(self.fabric),
            "stack_pass": dict(self.stack_pass),
            "sampling": dict(self.sampling),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(
        cls, payload: Dict, unknown: Optional[List[str]] = None
    ) -> "RunReport":
        """Rebuild a report from a stored document, tolerating drift.

        Older schema versions upgrade cleanly: blocks they predate
        (``pass_cache``, ``replay``, ``fabric``, ``metrics``,
        ``stack_pass``, ``sampling``) default to empty.  Fields a *newer* schema may have added are dropped, but
        never silently — pass a list as ``unknown`` to collect their
        names, the same reporting contract as
        :func:`repro.sim.campaign.stats_from_dict`.  A payload that is
        not an object, or whose schema marker is not a positive integer,
        is rejected with :exc:`~repro.errors.CorruptResultError` rather
        than surfacing as a :exc:`TypeError` deep in aggregation.
        """
        if not isinstance(payload, dict):
            raise CorruptResultError(
                f"run report payload is {type(payload).__name__}, "
                f"expected object"
            )
        schema = payload.get("schema", 1)
        if isinstance(schema, bool) or not isinstance(schema, int) \
                or schema < 1:
            raise CorruptResultError(
                f"run report schema marker {schema!r} is not a "
                f"positive integer"
            )
        names = {
            "run_id", "trace", "config", "simulator", "n_refs_total",
            "n_refs_measured", "cycles", "total_cycles", "warm_cycles",
            "buckets", "buckets_measured", "conserved", "wall_s",
            "refs_per_sec", "peak_rss_kb", "quantization", "pass_cache",
            "replay", "fabric", "stack_pass", "sampling", "metrics",
        }
        if unknown is not None:
            unknown.extend(
                k for k in sorted(payload)
                if k not in names and k != "schema"
            )
        return cls(**{k: v for k, v in payload.items() if k in names})


def build_run_report(
    stats,
    ledger: Optional[CycleLedger],
    timer: StageTimer,
    run_identifier: str = "",
    simulator: str = "fastpath",
    n_refs_total: int = 0,
    config=None,
    pass_cache: Optional[Dict[str, int]] = None,
    replay: Optional[Dict[str, int]] = None,
    fabric: Optional[Dict[str, int]] = None,
    registry: Optional[MetricsRegistry] = None,
    stack_pass: Optional[Dict[str, int]] = None,
    sampling: Optional[Dict] = None,
) -> RunReport:
    """Assemble the metrics document for one completed run.

    ``stats`` is the run's :class:`~repro.sim.statistics.SimStats`;
    ``ledger`` may be ``None`` when only host metrics were collected.
    ``pass_cache`` is the counter dict of the functional-pass cache the
    run used, if any; ``replay`` the batch replay-kernel counters, if
    the run repriced timing grids; ``fabric`` the work-queue lease
    counters, if the run executed through the spool backend;
    ``registry`` the run's :class:`MetricsRegistry`, dumped into the
    schema-5 ``metrics`` block when it collected anything;
    ``stack_pass`` the shared stack-walk counters, if the run used the
    stack functional-pass strategy; ``sampling`` the trace-interval
    sampling counters (with estimate-level keys where applicable), if
    the run produced a sampled estimate.
    Conservation is *checked* here (never trusted): ``conserved`` is
    the outcome of :meth:`CycleLedger.verify`.
    """
    buckets: Dict[str, int] = {}
    buckets_measured: Dict[str, int] = {}
    conserved = False
    if ledger is not None:
        buckets = ledger.as_dict()
        buckets_measured = ledger.measured()
        try:
            ledger.verify(stats.total_cycles, stats.cycles)
            conserved = True
        except SimulationError:
            conserved = False
    total_wall = timer.total_s
    refs = n_refs_total or stats.n_refs
    return RunReport(
        run_id=run_identifier,
        trace=stats.trace_name,
        config=stats.config_summary,
        simulator=simulator,
        n_refs_total=refs,
        n_refs_measured=stats.n_refs,
        cycles=stats.cycles,
        total_cycles=stats.total_cycles,
        warm_cycles=stats.warm_cycles,
        buckets=buckets,
        buckets_measured=buckets_measured,
        conserved=conserved,
        wall_s=dict(timer.stages),
        refs_per_sec=refs / total_wall if total_wall > 0 else 0.0,
        peak_rss_kb=peak_rss_kb(),
        quantization=quantization_info(config) if config is not None else {},
        pass_cache=dict(pass_cache) if pass_cache else {},
        replay=dict(replay) if replay else {},
        fabric=dict(fabric) if fabric else {},
        stack_pass=dict(stack_pass) if stack_pass else {},
        sampling=dict(sampling) if sampling else {},
        metrics=(
            registry.as_dict()
            if registry is not None and not registry.empty() else {}
        ),
    )


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1,
        max(0, int(round(fraction * (len(sorted_values) - 1)))),
    )
    return sorted_values[index]


def aggregate_reports(
    reports: Sequence[RunReport],
    slowest: int = 5,
    fabric: Optional[Dict[str, int]] = None,
) -> Dict:
    """Fold a sweep's per-run reports into one summary document.

    The summary answers the questions a campaign post-mortem starts
    with: how fast was the sweep (throughput percentiles), which runs
    dominated it (slowest list), where did the simulated cycles go
    (aggregate bucket breakdown), and did every run conserve.
    ``fabric`` overlays sweep-level work-queue counters (worker count
    and lifetimes, leases expired/reclaimed) over the per-run lease
    sums — the sweep-level view wins where both exist, because it also
    counts leases whose jobs never produced a report (crashed owners).
    """
    throughputs = sorted(r.refs_per_sec for r in reports)
    walls = sorted(r.total_wall_s for r in reports)
    bucket_totals: Dict[str, int] = {name: 0 for name in BUCKETS}
    cache_totals: Dict[str, int] = {}
    replay_totals: Dict[str, int] = {}
    fabric_totals: Dict[str, int] = {}
    stack_totals: Dict[str, int] = {}
    sampling_totals: Dict[str, float] = {}
    metrics_totals = MetricsRegistry()
    for report in reports:
        for name, cycles in report.buckets_measured.items():
            bucket_totals[name] = bucket_totals.get(name, 0) + cycles
        for name, count in report.pass_cache.items():
            cache_totals[name] = cache_totals.get(name, 0) + count
        for name, count in report.replay.items():
            replay_totals[name] = replay_totals.get(name, 0) + count
        for name, count in report.fabric.items():
            fabric_totals[name] = fabric_totals.get(name, 0) + count
        for name, count in report.stack_pass.items():
            stack_totals[name] = stack_totals.get(name, 0) + count
        for name, value in report.sampling.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            if name.endswith("_max"):
                sampling_totals[name] = max(
                    sampling_totals.get(name, 0), value
                )
            else:
                sampling_totals[name] = (
                    sampling_totals.get(name, 0) + value
                )
        metrics_totals.merge(report.metrics)
    fabric_totals.update(fabric or {})
    ranked = sorted(
        reports, key=lambda r: r.total_wall_s, reverse=True
    )[:slowest]
    return {
        "schema": REPORT_SCHEMA,
        "runs": len(reports),
        "all_conserved": all(r.conserved for r in reports),
        "violations": [r.run_id for r in reports if not r.conserved],
        "total_wall_s": sum(walls),
        "wall_s_p50": _percentile(walls, 0.50),
        "wall_s_p90": _percentile(walls, 0.90),
        "refs_per_sec_p10": _percentile(throughputs, 0.10),
        "refs_per_sec_p50": _percentile(throughputs, 0.50),
        "refs_per_sec_p90": _percentile(throughputs, 0.90),
        "buckets_measured": bucket_totals,
        "pass_cache": cache_totals,
        "replay": replay_totals,
        "fabric": fabric_totals,
        "stack_pass": stack_totals,
        "sampling": sampling_totals,
        "metrics": (
            {} if metrics_totals.empty() else metrics_totals.as_dict()
        ),
        "slowest": [
            {
                "run_id": r.run_id,
                "wall_s": r.total_wall_s,
                "refs_per_sec": r.refs_per_sec,
                "stall_fraction": r.stall_fraction,
            }
            for r in ranked
        ],
    }


def render_summary(summary: Dict) -> str:
    """Terminal rendering of an :func:`aggregate_reports` document."""
    lines = [
        f"{summary['runs']} run(s), "
        f"{summary['total_wall_s']:.2f}s total wall clock; "
        f"cycle conservation: "
        + ("ok" if summary["all_conserved"] else
           f"VIOLATED ({len(summary['violations'])} run(s))"),
        f"throughput refs/s: p10 {summary['refs_per_sec_p10']:,.0f}  "
        f"p50 {summary['refs_per_sec_p50']:,.0f}  "
        f"p90 {summary['refs_per_sec_p90']:,.0f}",
    ]
    buckets = summary.get("buckets_measured", {})
    total = sum(buckets.values())
    if total:
        lines.append("measured cycle attribution across the sweep:")
        for name in BUCKETS:
            cycles = buckets.get(name, 0)
            if cycles:
                lines.append(
                    f"  {name:<18} {cycles:>14}  "
                    f"({100.0 * cycles / total:5.1f}%)"
                )
    cache = summary.get("pass_cache") or {}
    if any(cache.values()):
        lines.append(
            f"pass cache: {cache.get('hits', 0)} hit(s), "
            f"{cache.get('misses', 0)} miss(es), "
            f"{cache.get('corrupt', 0)} corrupt, "
            f"{cache.get('bytes_read', 0):,} B read, "
            f"{cache.get('bytes_written', 0):,} B written"
        )
    fabric = summary.get("fabric") or {}
    if any(fabric.values()):
        lines.append(
            f"work-queue fabric: {fabric.get('workers', 0)} worker(s), "
            f"{fabric.get('leases_issued', 0)} lease(s) issued, "
            f"{fabric.get('leases_expired', 0)} expired, "
            f"{fabric.get('leases_reclaimed', 0)} reclaimed, "
            f"{fabric.get('jobs_poisoned', 0)} poisoned, "
            f"{fabric.get('duplicate_publishes', 0)} duplicate "
            f"publish(es) dropped"
        )
    replay = summary.get("replay") or {}
    if any(replay.values()):
        lines.append(
            f"replay kernel: {replay.get('batch_outcomes', 0)} batch "
            f"outcome(s), {replay.get('scalar_replays', 0)} scalar "
            f"replay(s), {replay.get('vectorized_events', 0):,} "
            f"vectorized / {replay.get('scalar_events', 0):,} scalar "
            f"event(s)"
        )
    stack = summary.get("stack_pass") or {}
    if any(stack.values()):
        lines.append(
            f"stack pass: {stack.get('walks', 0)} shared walk(s), "
            f"{stack.get('derived_streams', 0)} stream(s) derived, "
            f"{stack.get('reused_streams', 0)} reused, "
            f"{stack.get('fallback_passes', 0)} fallback pass(es)"
        )
    sampling = summary.get("sampling") or {}
    if any(sampling.values()):
        line = (
            f"sampling: {int(sampling.get('selections', 0))} "
            f"selection(s), "
            f"{int(sampling.get('representatives', 0))} "
            f"representative(s), "
            f"{int(sampling.get('refs_sampled', 0)):,} / "
            f"{int(sampling.get('refs_full', 0)):,} refs simulated, "
            f"{int(sampling.get('refusals', 0))} refusal(s)"
        )
        if sampling.get("validations"):
            line += (
                f", max true error "
                f"{float(sampling.get('true_error_max', 0.0)):.4f}"
            )
        lines.append(line)
    spans = (summary.get("metrics") or {}).get("spans") or {}
    if spans:
        lines.append("stage spans across the sweep:")
        for name in sorted(spans):
            entry = spans[name]
            lines.append(
                f"  {name:<24} {entry.get('count', 0):>6} x  "
                f"{entry.get('total_s', 0.0):9.3f}s total  "
                f"(max {entry.get('max_s', 0.0):7.3f}s)"
            )
    if summary.get("slowest"):
        lines.append("slowest runs:")
        for entry in summary["slowest"]:
            lines.append(
                f"  {entry['wall_s']:8.3f}s  "
                f"{entry['refs_per_sec']:>12,.0f} refs/s  "
                f"stall {100.0 * entry['stall_fraction']:5.1f}%  "
                f"{entry['run_id']}"
            )
    return "\n".join(lines)
