"""Simulation campaigns: persist and reload run results.

The paper's workflow stored an "18KB raw data file" of up to ~400
statistics per simulation, from which "a custom program reads in the raw
data files and generates the graphs and tables".  A
:class:`Campaign` reproduces that separation here: simulation results
land on disk as JSON, keyed by a deterministic run id derived from the
configuration and trace, so analysis can be re-run — or extended —
without re-simulating, and interrupted sweeps resume where they stopped.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Callable, Dict, Iterator, Union

from ..errors import ConfigurationError
from ..trace.record import Trace
from .config import SystemConfig
from .statistics import BufferCounters, CacheCounters, SimStats


def _config_fingerprint(config: SystemConfig) -> str:
    """Stable hash of every parameter in a system configuration."""

    def encode(value):
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return {
                f.name: encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
            }
        if isinstance(value, (list, tuple)):
            return [encode(v) for v in value]
        if hasattr(value, "value"):  # enums
            return value.value
        return value

    payload = json.dumps(encode(config), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _trace_fingerprint(trace: Trace) -> str:
    digest = hashlib.sha256()
    digest.update(trace.kinds.tobytes())
    digest.update(trace.addrs.tobytes())
    digest.update(trace.pids.tobytes())
    digest.update(str(trace.warm_boundary).encode())
    return digest.hexdigest()[:16]


def run_id(config: SystemConfig, trace: Trace) -> str:
    """Deterministic identifier of one (configuration, trace) run."""
    return f"{trace.name}-{_trace_fingerprint(trace)}-" \
           f"{_config_fingerprint(config)}"


def stats_to_dict(stats: SimStats) -> Dict:
    """Serialize a :class:`SimStats` to plain JSON-able data."""
    return dataclasses.asdict(stats)


def stats_from_dict(payload: Dict) -> SimStats:
    """Inverse of :func:`stats_to_dict`."""
    payload = dict(payload)
    payload["icache"] = CacheCounters(**payload["icache"])
    payload["dcache"] = CacheCounters(**payload["dcache"])
    payload["lower"] = (
        CacheCounters(**payload["lower"]) if payload.get("lower") else None
    )
    payload["buffer"] = BufferCounters(**payload["buffer"])
    return SimStats(**payload)


class Campaign:
    """A directory of persisted simulation results.

    ``campaign.run(config, trace, simulate_fn)`` returns the cached
    result when the run id is already on disk and simulates (then
    persists) otherwise.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, identifier: str) -> Path:
        return self.directory / f"{identifier}.json"

    def __contains__(self, identifier: str) -> bool:
        return self._path(identifier).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def save(self, identifier: str, stats: SimStats) -> None:
        payload = {"run_id": identifier, "stats": stats_to_dict(stats)}
        self._path(identifier).write_text(json.dumps(payload, indent=1))

    def load(self, identifier: str) -> SimStats:
        path = self._path(identifier)
        if not path.exists():
            raise ConfigurationError(f"no stored run {identifier!r}")
        payload = json.loads(path.read_text())
        return stats_from_dict(payload["stats"])

    def run(
        self,
        config: SystemConfig,
        trace: Trace,
        simulate_fn: Callable[[SystemConfig, Trace], SimStats],
    ) -> SimStats:
        """Return the stored result for this run, simulating on a miss."""
        identifier = run_id(config, trace)
        if identifier in self:
            return self.load(identifier)
        stats = simulate_fn(config, trace)
        self.save(identifier, stats)
        return stats

    def results(self) -> Iterator[SimStats]:
        """Iterate every stored result (arbitrary order)."""
        for path in sorted(self.directory.glob("*.json")):
            yield stats_from_dict(json.loads(path.read_text())["stats"])
