"""Simulation campaigns: persist and reload run results, crash-safely.

The paper's workflow stored an "18KB raw data file" of up to ~400
statistics per simulation, from which "a custom program reads in the raw
data files and generates the graphs and tables".  A
:class:`Campaign` reproduces that separation here: simulation results
land on disk as JSON, keyed by a deterministic run id derived from the
configuration and trace, so analysis can be re-run — or extended —
without re-simulating, and interrupted sweeps resume where they stopped.

Long sweeps fail in ways short ones never show, so persistence is
defensive throughout:

* every write goes through :func:`atomic_write_text` — write to a
  temporary file in the same directory, fsync, then ``os.replace`` — so
  a crash mid-save never leaves a partial ``*.json`` visible;
* payloads carry a schema version and a SHA-256 checksum of the
  canonicalized statistics, so bitrot, truncation and foreign files are
  detected on load (:exc:`~repro.errors.CorruptResultError`) rather than
  surfacing as :exc:`json.JSONDecodeError` or :exc:`KeyError`;
* corrupt files are *quarantined* (moved to ``<dir>/quarantine/``) and
  re-simulated instead of poisoning or aborting the campaign
  (:meth:`Campaign.run`, :meth:`Campaign.results`, :meth:`Campaign.fsck`).

The orchestration side — worker isolation, timeouts, retries, the
campaign manifest — lives in :mod:`repro.sim.resilience`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import ConfigurationError, CorruptResultError
from ..trace.record import Trace
from .config import SystemConfig
from .statistics import BufferCounters, CacheCounters, SimStats

#: Version of the on-disk result payload.  Version 1 (the original
#: ``{"run_id", "stats"}`` shape) is still readable; version 2 adds the
#: ``schema`` and ``checksum`` fields.  Readers tolerate *newer*
#: versions as long as the checksum validates and the known statistics
#: fields are present.
SCHEMA_VERSION = 2

#: Name of the per-campaign status journal (see
#: :class:`repro.sim.resilience.CampaignManifest`).  Excluded from the
#: result-file namespace.
MANIFEST_NAME = "manifest.json"

#: Subdirectory corrupt result files are moved into.
QUARANTINE_DIRNAME = "quarantine"

#: Subdirectory per-run :class:`~repro.sim.telemetry.RunReport` metrics
#: documents are stored in, next to (not mixed with) the result files.
METRICS_DIRNAME = "metrics"

#: File name of the sweep-level aggregation inside ``metrics/``.
SUMMARY_NAME = "summary.json"

#: Subdirectory holding the durable work-queue spool (jobs, leases,
#: done and poison records; see :mod:`repro.sim.workqueue`).
SPOOL_DIRNAME = "spool"

#: Prefix of the temporary files :func:`atomic_write_text` stages writes
#: in.  They never match the ``*.json`` result glob; ``fsck`` sweeps any
#: that a hard crash left behind.
_TMP_PREFIX = ".tmp."


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    The temporary file lives in the target directory so the final
    ``os.replace`` is a same-filesystem rename — the file either exists
    with its complete contents or not at all, even across a crash or
    power loss mid-write.  Data is fsynced before the rename; the
    directory entry is fsynced best-effort after it.
    """
    path = Path(path)
    tmp = path.parent / f"{_TMP_PREFIX}{path.name}.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


#: Signature of the writer hook :class:`Campaign` persists through.
#: Injectable so the fault harness can simulate ENOSPC and kill-9.
WriterFn = Callable[[Path, str], None]


def _config_fingerprint(config: SystemConfig) -> str:
    """Stable hash of every parameter in a system configuration."""

    def encode(value):
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return {
                f.name: encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
            }
        if isinstance(value, (list, tuple)):
            return [encode(v) for v in value]
        if hasattr(value, "value"):  # enums
            return value.value
        return value

    payload = json.dumps(encode(config), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _trace_fingerprint(trace: Trace) -> str:
    return trace.content_fingerprint()


def run_id(config: SystemConfig, trace: Trace) -> str:
    """Deterministic identifier of one (configuration, trace) run."""
    return f"{trace.name}-{_trace_fingerprint(trace)}-" \
           f"{_config_fingerprint(config)}"


def stats_to_dict(stats: SimStats) -> Dict:
    """Serialize a :class:`SimStats` to plain JSON-able data."""
    return dataclasses.asdict(stats)


def _known_fields(
    cls,
    payload: Dict,
    unknown: Optional[List[str]] = None,
    context: str = "",
) -> Dict:
    """Drop keys a newer schema may have added before rebuilding ``cls``.

    Dropped keys are *recorded*, not swallowed: when ``unknown`` is a
    list, each dropped key is appended to it as ``"context.key"`` (or
    bare ``"key"`` without a context) so callers — most importantly
    :meth:`Campaign.fsck` — can report schema drift instead of masking
    it.
    """
    names = {f.name for f in dataclasses.fields(cls)}
    if unknown is not None:
        prefix = f"{context}." if context else ""
        unknown.extend(
            f"{prefix}{k}" for k in sorted(payload) if k not in names
        )
    return {k: v for k, v in payload.items() if k in names}


def stats_from_dict(
    payload: Dict, unknown: Optional[List[str]] = None
) -> SimStats:
    """Inverse of :func:`stats_to_dict`.

    Tolerates unknown keys written by newer schema versions; pass a list
    as ``unknown`` to collect their dotted names (``"icache.foo"``) for
    reporting.  A payload missing required fields or with wrongly-shaped
    values raises :exc:`~repro.errors.CorruptResultError` rather than a
    bare :exc:`KeyError`/:exc:`TypeError`.
    """
    if not isinstance(payload, dict):
        raise CorruptResultError(
            f"stats payload is {type(payload).__name__}, expected object"
        )
    try:
        payload = dict(payload)
        payload["icache"] = CacheCounters(
            **_known_fields(
                CacheCounters, payload["icache"], unknown, "icache"
            )
        )
        payload["dcache"] = CacheCounters(
            **_known_fields(
                CacheCounters, payload["dcache"], unknown, "dcache"
            )
        )
        payload["lower"] = (
            CacheCounters(
                **_known_fields(
                    CacheCounters, payload["lower"], unknown, "lower"
                )
            )
            if payload.get("lower")
            else None
        )
        payload["buffer"] = BufferCounters(
            **_known_fields(
                BufferCounters, payload["buffer"], unknown, "buffer"
            )
        )
        return SimStats(**_known_fields(SimStats, payload, unknown))
    except (KeyError, TypeError, AttributeError) as exc:
        raise CorruptResultError(
            f"stats payload is malformed: {exc!r}"
        ) from exc


def payload_checksum(stats_payload: Dict) -> str:
    """SHA-256 over the canonical JSON encoding of a stats payload."""
    canonical = json.dumps(
        stats_payload, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclasses.dataclass
class FsckReport:
    """Outcome of :meth:`Campaign.fsck`."""

    ok: List[str]
    corrupt: List[Tuple[Path, str]]
    quarantined: List[Path]
    stray_tmp: List[Path]
    #: ``(file name, dotted field name)`` pairs for every payload key a
    #: stored result carried that the current schema does not know.
    #: Schema drift, not corruption: the file still validates and loads,
    #: but silently dropping the keys would mask a version skew between
    #: writer and reader.
    unknown_fields: List[Tuple[str, str]] = dataclasses.field(
        default_factory=list
    )
    #: Spool lease files whose owner is provably dead, whose job is
    #: already done/poisoned, or that fail validation — debris a killed
    #: worker left behind (cleaned by ``fsck --repair``; a pending
    #: job's stale lease is archived as a loss so epochs stay
    #: monotonic).
    stale_leases: List[Path] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            not self.corrupt
            and not self.stray_tmp
            and not self.stale_leases
        )

    def render(self) -> str:
        lines = [
            f"{len(self.ok)} result(s) ok, {len(self.corrupt)} corrupt, "
            f"{len(self.stray_tmp)} stray temp file(s), "
            f"{len(self.stale_leases)} stale lease(s)"
        ]
        for path, reason in self.corrupt:
            lines.append(f"  corrupt: {path.name}: {reason}")
        for path in self.quarantined:
            lines.append(f"  quarantined -> {path}")
        for path in self.stray_tmp:
            lines.append(f"  stray temp: {path.name}")
        for path in self.stale_leases:
            lines.append(f"  stale lease: {path.name}")
        if self.unknown_fields:
            lines.append(
                f"{len(self.unknown_fields)} unknown field(s) from a "
                f"newer or foreign schema:"
            )
            for name, field in self.unknown_fields:
                lines.append(f"  unknown field: {name}: {field}")
        return "\n".join(lines)


class Campaign:
    """A directory of persisted simulation results.

    ``campaign.run(config, trace, simulate_fn)`` returns the cached
    result when the run id is already on disk — after validating it —
    and simulates (then persists) otherwise.  A stored file that fails
    validation is quarantined and transparently re-simulated.

    ``writer`` overrides the persistence primitive (default
    :func:`atomic_write_text`); the fault-injection harness uses this to
    simulate ENOSPC and kill-9 during saves.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        writer: Optional[WriterFn] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._writer: WriterFn = writer or atomic_write_text

    def _path(self, identifier: str) -> Path:
        return self.directory / f"{identifier}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / QUARANTINE_DIRNAME

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def metrics_dir(self) -> Path:
        return self.directory / METRICS_DIRNAME

    @property
    def summary_path(self) -> Path:
        return self.metrics_dir / SUMMARY_NAME

    @property
    def spool_dir(self) -> Path:
        return self.directory / SPOOL_DIRNAME

    def _result_paths(self) -> Iterator[Path]:
        for path in sorted(self.directory.glob("*.json")):
            if path.name != MANIFEST_NAME:
                yield path

    def __contains__(self, identifier: str) -> bool:
        return self._path(identifier).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._result_paths())

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, identifier: str, stats: SimStats) -> None:
        """Persist one result atomically, with schema and checksum."""
        stats_payload = stats_to_dict(stats)
        payload = {
            "schema": SCHEMA_VERSION,
            "run_id": identifier,
            "checksum": payload_checksum(stats_payload),
            "stats": stats_payload,
        }
        self._writer(self._path(identifier), json.dumps(payload, indent=1))

    # ------------------------------------------------------------------
    # Run metrics (telemetry RunReports; see repro.sim.telemetry)
    # ------------------------------------------------------------------
    def save_report(self, report_payload: Dict) -> None:
        """Persist one run's :class:`RunReport` document under
        ``metrics/``.  Metrics are advisory — they share the atomic
        writer but not the checksum machinery of result files."""
        identifier = report_payload.get("run_id") or "unknown"
        self.metrics_dir.mkdir(parents=True, exist_ok=True)
        self._writer(
            self.metrics_dir / f"{identifier}.json",
            json.dumps(report_payload, indent=1),
        )

    def save_summary(self, summary: Dict) -> None:
        """Persist the sweep-level aggregation as ``metrics/summary.json``."""
        self.metrics_dir.mkdir(parents=True, exist_ok=True)
        self._writer(self.summary_path, json.dumps(summary, indent=1))

    def load_reports(self) -> List[Dict]:
        """Every stored per-run metrics document, sorted by run id.

        Unreadable metrics files are skipped — a sweep post-mortem must
        not be blocked by one bad advisory document."""
        if not self.metrics_dir.is_dir():
            return []
        reports = []
        for path in sorted(self.metrics_dir.glob("*.json")):
            if path.name == SUMMARY_NAME:
                continue
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict):
                reports.append(payload)
        return reports

    def _read_payload(self, path: Path) -> Dict:
        """Read and validate one result file; raise on any corruption."""
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CorruptResultError(
                f"{path.name}: unreadable: {exc}", path=path
            ) from exc
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CorruptResultError(
                f"{path.name}: malformed JSON: {exc}", path=path
            ) from exc
        if not isinstance(payload, dict) or "stats" not in payload:
            raise CorruptResultError(
                f"{path.name}: missing 'stats' payload", path=path
            )
        schema = payload.get("schema", 1)
        if not isinstance(schema, int) or schema < 1:
            raise CorruptResultError(
                f"{path.name}: bad schema marker {schema!r}", path=path
            )
        if schema >= 2 or "checksum" in payload:
            stored = payload.get("checksum")
            actual = payload_checksum(payload["stats"])
            if stored != actual:
                raise CorruptResultError(
                    f"{path.name}: checksum mismatch "
                    f"(stored {str(stored)[:12]}…, computed {actual[:12]}…)",
                    path=path,
                )
        return payload

    def load(self, identifier: str) -> SimStats:
        """Load one stored result, validating checksum and shape."""
        path = self._path(identifier)
        if not path.exists():
            raise ConfigurationError(f"no stored run {identifier!r}")
        payload = self._read_payload(path)
        stored_id = payload.get("run_id")
        if stored_id is not None and stored_id != identifier:
            raise CorruptResultError(
                f"{path.name}: run id mismatch "
                f"(stored {stored_id!r}, expected {identifier!r})",
                path=path,
            )
        try:
            return stats_from_dict(payload["stats"])
        except CorruptResultError as exc:
            raise CorruptResultError(
                f"{path.name}: {exc}", path=path
            ) from exc

    def verify(self, identifier: str) -> None:
        """Validate one stored result without returning it.

        Raises :exc:`~repro.errors.CorruptResultError` on corruption and
        :exc:`~repro.errors.ConfigurationError` when the run is absent.
        """
        self.load(identifier)

    def quarantine(self, identifier_or_path: Union[str, Path]) -> Path:
        """Move a corrupt file into ``quarantine/``; return its new home."""
        path = (
            identifier_or_path
            if isinstance(identifier_or_path, Path)
            else self._path(identifier_or_path)
        )
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        serial = 0
        while target.exists():
            serial += 1
            target = self.quarantine_dir / f"{path.name}.{serial}"
        os.replace(path, target)
        return target

    def run(
        self,
        config: SystemConfig,
        trace: Trace,
        simulate_fn: Callable[[SystemConfig, Trace], SimStats],
    ) -> SimStats:
        """Return the stored result for this run, simulating on a miss.

        A stored file that fails validation is quarantined and the run
        re-simulated — a corrupt archive degrades to extra work, never to
        a crash or a silently wrong result.
        """
        identifier = run_id(config, trace)
        if identifier in self:
            try:
                return self.load(identifier)
            except CorruptResultError:
                self.quarantine(identifier)
        stats = simulate_fn(config, trace)
        self.save(identifier, stats)
        return stats

    def results(self, on_corrupt: str = "quarantine") -> Iterator[SimStats]:
        """Iterate every stored result (sorted by run id).

        ``on_corrupt`` selects the degradation policy for bad files:
        ``"quarantine"`` (default) moves them aside and continues,
        ``"skip"`` leaves them in place and continues, ``"raise"``
        propagates :exc:`~repro.errors.CorruptResultError`.
        """
        if on_corrupt not in ("quarantine", "skip", "raise"):
            raise ConfigurationError(
                f"on_corrupt must be quarantine|skip|raise, "
                f"got {on_corrupt!r}"
            )
        for path in list(self._result_paths()):
            try:
                yield stats_from_dict(self._read_payload(path)["stats"])
            except CorruptResultError:
                if on_corrupt == "raise":
                    raise
                if on_corrupt == "quarantine":
                    self.quarantine(path)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def fsck(self, repair: bool = False) -> FsckReport:
        """Validate every stored result's checksum and payload shape.

        With ``repair=True``, corrupt files are quarantined, stray temp
        files (left by a crash between write and rename) deleted, and
        stale spool leases (left by killed workers) cleaned; otherwise
        they are only reported.  When the campaign has a work-queue
        spool, its state is checked too: orphaned ``.tmp.*`` staging
        files anywhere under the spool, plus lease files whose owner is
        dead or whose job already finished.
        """
        ok: List[str] = []
        corrupt: List[Tuple[Path, str]] = []
        quarantined: List[Path] = []
        unknown_fields: List[Tuple[str, str]] = []
        for path in list(self._result_paths()):
            try:
                payload = self._read_payload(path)
                dropped: List[str] = []
                stats_from_dict(payload["stats"], unknown=dropped)
                unknown_fields.extend((path.name, f) for f in dropped)
                stored_id = payload.get("run_id")
                if stored_id is not None and f"{stored_id}.json" != path.name:
                    raise CorruptResultError(
                        f"{path.name}: run id {stored_id!r} does not match "
                        f"file name",
                        path=path,
                    )
                ok.append(path.stem)
            except CorruptResultError as exc:
                corrupt.append((path, str(exc)))
                if repair:
                    quarantined.append(self.quarantine(path))
        stray = sorted(self.directory.glob(f"{_TMP_PREFIX}*"))
        if repair:
            for path in stray:
                with contextlib.suppress(OSError):
                    path.unlink()
        stale_leases: List[Path] = []
        if self.spool_dir.is_dir():
            # Imported lazily: workqueue builds on this module.
            from .workqueue import WorkQueue

            spool_stray, stale_leases = WorkQueue(self.spool_dir).fsck(
                repair=repair
            )
            stray = stray + spool_stray
        return FsckReport(
            ok=ok, corrupt=corrupt, quarantined=quarantined,
            stray_tmp=stray, unknown_fields=unknown_fields,
            stale_leases=stale_leases,
        )
