"""Single-pass multi-configuration functional simulation.

:func:`repro.sim.fastpath.functional_pass` walks the whole trace once
per cache *organization*, which makes the cold half of an N-organization
sweep cost N trace walks.  This module collapses those walks into one
using the classic stack-algorithm observation (Mattson et al. 1970):
under LRU, the set of blocks resident in an A-way set is exactly the A
most recently touched distinct blocks that map to it — the *inclusion
property*.  Walking the trace once while maintaining, for every distinct
``(block size, set count)`` pair in the grid, per-set LRU lists capped
at the largest swept associativity lets us record each reference's
position from the MRU end.  An organization with associativity ``A``
hits exactly when that recorded position is ``< A``, so every
organization sharing the pair is priced from the same walk.

Three structural facts shape the implementation:

* **I-side sharing is exact.**  The I-cache sees only reads, so LRU
  inclusion holds and one position column per ``(block, sets)`` pair
  serves every associativity (the *set-refinement forest*: the same
  walk refines into every geometry in the grid).
* **D-side state is re-derived per geometry.**  Under write-back with
  no-allocate write misses, a store that hits in a *larger* cache but
  misses in a smaller one updates recency/dirty state only in the
  larger — inclusion breaks, so sharing one superset structure across
  associativities would be wrong.  Instead each distinct D-geometry
  replays an exact in-line LRU model (per-set key lists plus a dirty
  word mask) during stream derivation.  Derivation reads the in-memory
  couplet arrays, not the trace, so it is much cheaper than a scalar
  :func:`~repro.sim.fastpath.functional_pass`; organizations differing
  only in temporal parameters (cycle time, memory timing, write-buffer
  depth) share one derived stream outright.
* **Fallback is explicit.**  Only LRU caches obey inclusion; FIFO and
  RANDOM organizations with associativity > 1 take a per-organization
  scalar pass, counted in :attr:`StackPassStats.fallback_passes`.
  Direct-mapped caches are eligible under *any* replacement policy —
  with one way there is never a choice of victim, so the policies
  coincide (and the RANDOM seed cannot influence the outcome).

The produced :class:`~repro.sim.fastpath.EventStream` objects are
bit-identical to what :func:`functional_pass` emits for the same
organization (the replication below mirrors its loop line for line), so
:func:`~repro.sim.fastpath.replay`,
:mod:`~repro.sim.replaykernel`, and :mod:`~repro.sim.passcache`
consume them unchanged.  ``tests/sim/test_stackpass.py`` pins that
bit-equality across randomized grids and every degenerate corner.
"""

from __future__ import annotations

import dataclasses
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from ..cache.cache import _PID_SHIFT
from ..core.policy import ReplacementKind
from ..cpu.processor import NO_REF, CoupletStream, pair_couplets
from ..errors import ConfigurationError
from ..trace.record import RefKind, Trace
from .config import SystemConfig
from .fastpath import (
    EventStream,
    assemble_stats,
    check_fastpath_supported,
    functional_pass,
    replay,
)
from .statistics import CacheCounters, SimStats

_STORE = int(RefKind.STORE)

# d-side event codes, mirroring fastpath.
_D_NONE = 0
_D_WRITE_HIT = 1
_D_READ_MISS = 2
_D_WRITE_MISS = 3

#: Stack-position sentinel for "not resident at any tracked depth".
#: Larger than any real associativity, small enough for ``array('i')``.
_COLD = 1 << 30

_ADDR_MASK = (1 << _PID_SHIFT) - 1


@dataclasses.dataclass
class StackPassStats:
    """Counters describing what a stack-strategy pass actually did.

    Published to a :class:`~repro.sim.telemetry.MetricsRegistry` under
    ``stackpass.*`` and surfaced in the RunReport ``stack_pass`` block.
    """

    walks: int = 0              #: shared stack walks over a trace
    derived_streams: int = 0    #: streams derived from a walk's columns
    reused_streams: int = 0     #: streams cloned from a same-geometry sibling
    fallback_passes: int = 0    #: per-organization scalar walks (ineligible)

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def merge(self, other: "StackPassStats") -> None:
        self.walks += other.walks
        self.derived_streams += other.derived_streams
        self.reused_streams += other.reused_streams
        self.fallback_passes += other.fallback_passes

    def publish(self, registry) -> None:
        """Mirror the counters into a metrics registry."""
        for name, value in self.as_dict().items():
            registry.count(f"stackpass.{name}", value)


def stack_supported(config: SystemConfig) -> bool:
    """True when ``config`` can be derived from a shared stack walk.

    Requires fastpath support plus the inclusion property: LRU
    replacement, or associativity 1 on both sides (where the
    replacement policy never gets a choice of victim).
    """
    try:
        check_fastpath_supported(config)
    except ConfigurationError:
        return False
    l1 = config.l1
    if l1.policy.replacement is ReplacementKind.LRU:
        return True
    assert l1.i_geometry is not None
    return l1.i_geometry.assoc == 1 and l1.d_geometry.assoc == 1


def _walk_istacks(
    couplets: CoupletStream,
    plans: Dict[int, Dict[int, int]],
) -> Dict[Tuple[int, int], "array[int]"]:
    """One trace walk; returns a position column per (offset_bits, sets).

    ``plans`` maps I-side ``offset_bits`` to ``{n_sets: max_assoc}``.
    For every tracked pair the returned ``array('i')`` holds, at each
    couplet index carrying an I-ref, the referenced block's distance
    from the MRU end of its set's LRU list just before the access
    (:data:`_COLD` when absent).  An A-way organization hits exactly
    when that position is ``< A``.
    """
    n = len(couplets.i_addr)
    i_addr = couplets.i_addr
    i_pid = couplets.i_pid
    columns: Dict[Tuple[int, int], "array[int]"] = {}
    # One tracker group per distinct block size so the block key is
    # computed once per group, not once per (block, sets) pair.
    groups = []
    for ob, by_sets in plans.items():
        trackers = []
        for n_sets, cap in by_sets.items():
            col = array("i", bytes(4 * n))
            columns[(ob, n_sets)] = col
            trackers.append((n_sets - 1, cap, [[] for _ in range(n_sets)], col))
        groups.append((ob, trackers))
    shift = _PID_SHIFT
    for k in range(n):
        ia = i_addr[k]
        if ia == NO_REF:
            continue
        ip = i_pid[k]
        for ob, trackers in groups:
            key = (ip << shift) | (ia >> ob)
            for index_mask, cap, sets, col in trackers:
                lst = sets[key & index_mask]
                if key in lst:
                    idx = lst.index(key)
                    last = len(lst) - 1
                    col[k] = last - idx
                    if idx != last:
                        del lst[idx]
                        lst.append(key)
                else:
                    col[k] = _COLD
                    lst.append(key)
                    if len(lst) > cap:
                        del lst[0]
    return columns


def _derive_stream(
    config: SystemConfig,
    trace: Trace,
    couplets: CoupletStream,
    icol: Sequence[int],
) -> EventStream:
    """Materialize one organization's EventStream from a walk's column.

    This mirrors :func:`~repro.sim.fastpath.functional_pass` statement
    for statement — same warm snapshotting, same event emission, same
    address masking — with the I-cache replaced by the precomputed
    position column and the D-cache by an in-line exact LRU model.
    """
    l1 = config.l1
    assert l1.i_geometry is not None
    i_block = l1.i_geometry.block_words
    d_geometry = l1.d_geometry
    d_block = d_geometry.block_words
    d_offset_bits = d_geometry.offset_bits
    d_index_mask = d_geometry.n_sets - 1
    d_word_mask = d_block - 1
    d_assoc = d_geometry.assoc
    i_assoc = l1.i_geometry.assoc
    i_mask = ~(i_block - 1)
    d_mask = ~(d_block - 1)
    shift = _PID_SHIFT
    i_addr = couplets.i_addr
    i_pid = couplets.i_pid
    d_kind = couplets.d_kind
    d_addr = couplets.d_addr
    d_pid = couplets.d_pid
    warm_k = couplets.warm_couplet
    if warm_k >= len(i_addr):
        raise ConfigurationError(
            "warm boundary leaves nothing to measure; shorten it"
        )
    # Whole-block fetch means a resident tag implies every word is
    # valid, so D-state is one LRU key list per set plus a dirty word
    # mask per resident block (write-back dirties words; no-allocate
    # write misses bypass the cache entirely).
    d_sets: List[List[int]] = [[] for _ in range(d_geometry.n_sets)]
    d_dirty: Dict[int, int] = {}
    ev_gap = array("q")
    ev_imiss = array("q")
    ev_iaddr = array("q")
    ev_ipid = array("q")
    ev_dtype = array("q")
    ev_daddr = array("q")
    ev_dpid = array("q")
    ev_vaddr = array("q")
    ev_vpid = array("q")
    # Counters are tracked as locals (attribute stores per couplet would
    # dominate derivation cost) and folded into CacheCounters at the end.
    i_reads = i_read_misses = 0
    d_reads = d_read_misses = d_writes = d_write_misses = 0
    d_wb_blocks = d_wb_words_dirty = 0
    warm = (0,) * 8
    warm_event_index = 0
    warm_base_offset = 0
    base_acc = 0
    for k in range(len(i_addr)):
        if k == warm_k:
            warm = (
                i_reads, i_read_misses, d_reads, d_read_misses,
                d_writes, d_write_misses, d_wb_blocks, d_wb_words_dirty,
            )
            warm_event_index = len(ev_gap)
            warm_base_offset = base_acc
        imiss = False
        ia = i_addr[k]
        ip = -1
        if ia != NO_REF:
            ip = i_pid[k]
            i_reads += 1
            if icol[k] >= i_assoc:
                imiss = True
                i_read_misses += 1
        dtype = _D_NONE
        dk = d_kind[k]
        da = dp = -1
        vaddr = vpid = -1
        if dk != NO_REF:
            da = d_addr[k]
            dp = d_pid[k]
            key = (dp << shift) | (da >> d_offset_bits)
            lst = d_sets[key & d_index_mask]
            if dk == _STORE:
                d_writes += 1
                if key in lst:
                    dtype = _D_WRITE_HIT
                    if lst[-1] != key:
                        lst.remove(key)
                        lst.append(key)
                    d_dirty[key] = d_dirty.get(key, 0) | (1 << (da & d_word_mask))
                else:
                    dtype = _D_WRITE_MISS
                    d_write_misses += 1
            else:
                d_reads += 1
                if key in lst:
                    if lst[-1] != key:
                        lst.remove(key)
                        lst.append(key)
                else:
                    dtype = _D_READ_MISS
                    d_read_misses += 1
                    if len(lst) == d_assoc:
                        victim = lst.pop(0)
                        vmask = d_dirty.pop(victim, 0)
                        if vmask:
                            vpid = victim >> shift
                            vaddr = (victim & _ADDR_MASK) << d_offset_bits
                            d_wb_blocks += 1
                            d_wb_words_dirty += bin(vmask).count("1")
                    lst.append(key)
        if imiss or dtype == _D_READ_MISS or dtype == _D_WRITE_MISS:
            ev_gap.append(base_acc)
            base_acc = 0
            ev_imiss.append(1 if imiss else 0)
            ev_iaddr.append((ia & i_mask) if imiss else -1)
            ev_ipid.append(ip if imiss else -1)
            ev_dtype.append(dtype)
            ev_daddr.append((da & d_mask) if dtype == _D_READ_MISS else da)
            ev_dpid.append(dp)
            ev_vaddr.append(vaddr)
            ev_vpid.append(vpid)
        else:
            base_acc += 2 if dtype == _D_WRITE_HIT else 1
    ci = CacheCounters(
        reads=i_reads - warm[0],
        read_misses=i_read_misses - warm[1],
        fetched_words=(i_read_misses - warm[1]) * i_block,
    )
    wb_blocks = d_wb_blocks - warm[6]
    cd = CacheCounters(
        reads=d_reads - warm[2],
        read_misses=d_read_misses - warm[3],
        writes=d_writes - warm[4],
        write_misses=d_write_misses - warm[5],
        bypass_writes=d_write_misses - warm[5],
        fetched_words=(d_read_misses - warm[3]) * d_block,
        writeback_blocks=wb_blocks,
        writeback_words_full=wb_blocks * d_block,
        writeback_words_dirty=d_wb_words_dirty - warm[7],
    )
    return EventStream(
        trace_name=trace.name,
        config_summary=config.describe(),
        i_block_words=i_block,
        d_block_words=d_block,
        n_couplets=len(i_addr),
        n_couplets_measured=len(i_addr) - warm_k,
        n_refs_measured=couplets.n_warm_refs,
        warm_event_index=warm_event_index,
        warm_base_offset=warm_base_offset,
        end_base=base_acc,
        ev_gap=ev_gap,
        ev_imiss=ev_imiss,
        ev_iaddr=ev_iaddr,
        ev_ipid=ev_ipid,
        ev_dtype=ev_dtype,
        ev_daddr=ev_daddr,
        ev_dpid=ev_dpid,
        ev_vaddr=ev_vaddr,
        ev_vpid=ev_vpid,
        icache=ci,
        dcache=cd,
    )


def _geometry_key(config: SystemConfig) -> Tuple[int, ...]:
    l1 = config.l1
    i = l1.i_geometry
    d = l1.d_geometry
    assert i is not None
    return (
        i.size_bytes, i.block_words, i.assoc,
        d.size_bytes, d.block_words, d.assoc,
    )


def stack_functional_passes(
    jobs: Sequence[Tuple[SystemConfig, Trace, int]],
    couplets: Optional[CoupletStream] = None,
    stats: Optional[StackPassStats] = None,
) -> List[EventStream]:
    """Derive one EventStream per job from a single shared trace walk.

    Every job is a ``(config, trace, seed)`` triple; all traces must
    carry identical contents (one walk covers the group) and every
    config must satisfy :func:`stack_supported` — callers route
    ineligible organizations through
    :func:`~repro.sim.fastpath.functional_pass` themselves.  The seed
    is accepted for signature parity with the scalar path but cannot
    influence an eligible organization's outcome (LRU is
    deterministic; with one way RANDOM never gets a choice), so
    streams for the same organization at different seeds are identical
    — exactly as they are from the scalar pass.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    trace = jobs[0][1]
    for config, job_trace, _seed in jobs:
        if not stack_supported(config):
            raise ConfigurationError(
                f"organization is not stack-eligible: {config.describe()}"
            )
        if job_trace is not trace and (
            job_trace.content_fingerprint() != trace.content_fingerprint()
        ):
            raise ConfigurationError(
                "stack pass jobs must share one trace; group by "
                "content fingerprint first"
            )
    if couplets is None:
        couplets = pair_couplets(trace)
    if couplets.warm_couplet >= len(couplets.i_addr):
        raise ConfigurationError(
            "warm boundary leaves nothing to measure; shorten it"
        )
    # Refinement plan: one capped tracker per distinct (block, sets)
    # pair, capped at the deepest associativity that shares it.
    plans: Dict[int, Dict[int, int]] = {}
    for config, _job_trace, _seed in jobs:
        geometry = config.l1.i_geometry
        assert geometry is not None
        by_sets = plans.setdefault(geometry.offset_bits, {})
        n_sets = geometry.n_sets
        by_sets[n_sets] = max(by_sets.get(n_sets, 0), geometry.assoc)
    columns = _walk_istacks(couplets, plans)
    if stats is not None:
        stats.walks += 1
    results: List[EventStream] = []
    memo: Dict[Tuple[int, ...], EventStream] = {}
    for config, job_trace, _seed in jobs:
        geometry_key = _geometry_key(config)
        cached = memo.get(geometry_key)
        if cached is None:
            i_geometry = config.l1.i_geometry
            assert i_geometry is not None
            icol = columns[(i_geometry.offset_bits, i_geometry.n_sets)]
            stream = _derive_stream(config, job_trace, couplets, icol)
            memo[geometry_key] = stream
            if stats is not None:
                stats.derived_streams += 1
        else:
            # Same geometry, different temporal parameters (or trace
            # name): the event stream is identical, only the labels
            # and counter identities differ.
            stream = dataclasses.replace(
                cached,
                trace_name=job_trace.name,
                config_summary=config.describe(),
                icache=cached.icache.snapshot(),
                dcache=cached.dcache.snapshot(),
            )
            if stats is not None:
                stats.reused_streams += 1
        results.append(stream)
    return results


def stack_fast_simulate(
    config: SystemConfig,
    trace: Trace,
    couplets: Optional[CoupletStream] = None,
    seed: int = 0,
    cache=None,
    stats: Optional[StackPassStats] = None,
    telemetry=None,
) -> SimStats:
    """Drop-in :func:`~repro.sim.fastpath.fast_simulate` that derives
    the functional pass via the stack walk.

    For a single organization the walk saves nothing over the scalar
    pass — this entry point exists so ``simulate --stack-pass`` runs
    the exact code path the sweeps share, consults the same
    :class:`~repro.sim.passcache.PassCache`, and reports fallbacks the
    same way.  Ineligible organizations take the scalar pass and bump
    :attr:`StackPassStats.fallback_passes`.
    """
    stream = cache.get(config, trace, seed) if cache is not None else None
    if stream is None:
        if stack_supported(config):
            stream = stack_functional_passes(
                [(config, trace, seed)], couplets=couplets, stats=stats,
            )[0]
        else:
            stream = functional_pass(config, trace, couplets=couplets, seed=seed)
            if stats is not None:
                stats.fallback_passes += 1
        if cache is not None:
            cache.put(config, trace, seed, stream)
    outcome = replay(
        stream, config.memory, config.cycle_ns,
        write_buffer_depth=config.l1.write_buffer_depth,
        telemetry=telemetry,
    )
    return assemble_stats(stream, outcome, config.cycle_ns)
