"""Full system specification.

The paper's simulator needed "about 130 parameters ... to fully specify a
two level cache system".  :class:`SystemConfig` is the equivalent here:
a frozen, validated description of the whole machine — CPU/cache cycle
time, one or two CPU-facing caches, optional lower cache levels, and the
main memory — from which both simulators are constructed.

A fresh config equal to the paper's base system (§2) comes from
:func:`baseline_config`: split 64 KB I and D caches, 4-word blocks,
direct mapped, write-back D-cache with no fetch on write miss, a 4-entry
write buffer, 40 ns cycle, and the aggressive 180/100/120 ns memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..core.geometry import CacheGeometry
from ..core.policy import CachePolicy, ReplacementKind, WriteMissPolicy, WritePolicy
from ..core.timing import (
    DEFAULT_CYCLE_NS,
    CacheTiming,
    MemoryTiming,
)
from ..errors import ConfigurationError
from ..units import KB


@dataclass(frozen=True)
class L1Spec:
    """The CPU-facing cache level.

    ``i_geometry``/``d_geometry`` describe the split Harvard pair; set
    ``unified`` and ``d_geometry`` alone for a joint cache (the I side is
    then ignored).
    """

    d_geometry: CacheGeometry
    i_geometry: Optional[CacheGeometry] = None
    unified: bool = False
    policy: CachePolicy = field(default_factory=CachePolicy)
    timing: CacheTiming = field(default_factory=CacheTiming)
    write_buffer_depth: int = 4

    def __post_init__(self) -> None:
        if not self.unified and self.i_geometry is None:
            raise ConfigurationError(
                "a split L1 needs an instruction-cache geometry"
            )
        if self.unified and self.i_geometry is not None:
            raise ConfigurationError("a unified L1 must not set i_geometry")
        if self.write_buffer_depth < 1:
            raise ConfigurationError(
                f"write buffer depth must be >= 1: {self.write_buffer_depth}"
            )

    @property
    def total_size_bytes(self) -> int:
        """Paper's 'Total L1 Size': sum of the data portions."""
        if self.unified:
            return self.d_geometry.size_bytes
        assert self.i_geometry is not None
        return self.d_geometry.size_bytes + self.i_geometry.size_bytes


@dataclass(frozen=True)
class LowerLevelSpec:
    """One cache level between L1 and main memory (an L2, L3, ...).

    ``port`` is the timing of accessing *this* level from above — its
    latency plays the role memory latency plays for L1.  SRAM cache
    arrays have no DRAM-style recovery, so the port defaults to zero
    write-op and recovery times.
    """

    geometry: CacheGeometry
    policy: CachePolicy = field(
        default_factory=lambda: CachePolicy(
            write_miss=WriteMissPolicy.FETCH_ON_WRITE
        )
    )
    port: MemoryTiming = field(
        default_factory=lambda: MemoryTiming(
            latency_ns=40.0, transfer_rate=1.0, write_op_ns=0.0,
            recovery_ns=0.0, address_cycles=1,
        )
    )
    write_buffer_depth: int = 4

    def __post_init__(self) -> None:
        if self.write_buffer_depth < 1:
            raise ConfigurationError(
                f"write buffer depth must be >= 1: {self.write_buffer_depth}"
            )


@dataclass(frozen=True)
class TranslationSpec:
    """Physical-cache mode: translate before the cache access.

    The paper's simulations use virtual caches (translation anywhere
    below), but the simulator supports the physical alternative: every
    CPU reference consults a TLB, and a TLB miss performs
    ``walk_memory_reads`` page-table reads through the main-memory port
    before the cache access proceeds.  With translation enabled, cache
    tags hold physical addresses and the PID no longer disambiguates.
    """

    page_words: int = 1024
    tlb_entries: int = 64
    tlb_assoc: int = 0  # 0 means fully associative
    walk_memory_reads: int = 1
    memory_frames: int = 1 << 14

    def __post_init__(self) -> None:
        if self.page_words < 1 or self.page_words & (self.page_words - 1):
            raise ConfigurationError(
                f"page size must be a positive power of two (words): "
                f"{self.page_words}"
            )
        if self.tlb_entries < 1:
            raise ConfigurationError(
                f"TLB must have at least one entry: {self.tlb_entries}"
            )
        if self.tlb_assoc < 0 or self.tlb_assoc > self.tlb_entries:
            raise ConfigurationError(
                f"TLB associativity must be in [0, {self.tlb_entries}] "
                f"(0 = fully associative): {self.tlb_assoc}"
            )
        if self.tlb_assoc and self.tlb_entries % self.tlb_assoc:
            raise ConfigurationError(
                f"TLB entries ({self.tlb_entries}) must divide evenly "
                f"into {self.tlb_assoc}-way sets"
            )
        if self.walk_memory_reads < 0:
            raise ConfigurationError(
                f"walk reads must be >= 0: {self.walk_memory_reads}"
            )
        if self.memory_frames < 1:
            raise ConfigurationError(
                f"memory must have at least one frame: "
                f"{self.memory_frames}"
            )


@dataclass(frozen=True)
class SystemConfig:
    """Complete machine description consumed by the simulators."""

    l1: L1Spec
    memory: MemoryTiming = field(default_factory=MemoryTiming)
    levels: Tuple[LowerLevelSpec, ...] = ()
    cycle_ns: float = DEFAULT_CYCLE_NS
    translation: Optional[TranslationSpec] = None

    def __post_init__(self) -> None:
        if self.cycle_ns <= 0:
            raise ConfigurationError(f"cycle time must be positive: {self.cycle_ns}")
        # Each level's block must be able to hold the block of the level
        # above — the engine fetches an upper-level block with a single
        # lower-level access.
        upper_block = self.l1.d_geometry.block_words
        if self.l1.i_geometry is not None:
            upper_block = max(upper_block, self.l1.i_geometry.block_words)
        for level in self.levels:
            if level.geometry.block_words < upper_block:
                raise ConfigurationError(
                    f"lower-level block ({level.geometry.block_words}W) is "
                    f"smaller than the level above ({upper_block}W)"
                )
            upper_block = level.geometry.block_words

    # ------------------------------------------------------------------
    # Convenient variants for sweeps
    # ------------------------------------------------------------------
    def with_cycle_ns(self, cycle_ns: float) -> "SystemConfig":
        return replace(self, cycle_ns=cycle_ns)

    def with_cache_sizes(self, size_bytes: int) -> "SystemConfig":
        """Set both split caches to ``size_bytes`` each (the paper varies
        the two caches together)."""
        l1 = self.l1
        d_geometry = l1.d_geometry.with_size(size_bytes)
        i_geometry = (
            l1.i_geometry.with_size(size_bytes)
            if l1.i_geometry is not None
            else None
        )
        return replace(
            self, l1=replace(l1, d_geometry=d_geometry, i_geometry=i_geometry)
        )

    def with_assoc(self, assoc: int) -> "SystemConfig":
        """Set the associativity of both L1 caches, keeping size constant
        (the number of sets halves as ways double, as in Figure 4-1)."""
        l1 = self.l1
        d_geometry = l1.d_geometry.with_assoc(assoc)
        i_geometry = (
            l1.i_geometry.with_assoc(assoc) if l1.i_geometry is not None else None
        )
        return replace(
            self, l1=replace(l1, d_geometry=d_geometry, i_geometry=i_geometry)
        )

    def with_block_words(self, block_words: int) -> "SystemConfig":
        """Set the block size of both L1 caches (whole-block fetch)."""
        l1 = self.l1
        d_geometry = l1.d_geometry.with_block_words(block_words)
        i_geometry = (
            l1.i_geometry.with_block_words(block_words)
            if l1.i_geometry is not None
            else None
        )
        return replace(
            self, l1=replace(l1, d_geometry=d_geometry, i_geometry=i_geometry)
        )

    def with_memory(self, memory: MemoryTiming) -> "SystemConfig":
        return replace(self, memory=memory)

    def with_levels(self, levels: Tuple[LowerLevelSpec, ...]) -> "SystemConfig":
        return replace(self, levels=levels)

    def with_policy(self, policy: CachePolicy) -> "SystemConfig":
        return replace(self, l1=replace(self.l1, policy=policy))

    def with_translation(
        self, translation: Optional[TranslationSpec]
    ) -> "SystemConfig":
        """Enable (or disable, with ``None``) physical-cache mode."""
        return replace(self, translation=translation)

    def describe(self) -> str:
        """One-line summary for reports."""
        l1 = self.l1
        if l1.unified:
            caches = f"unified {l1.d_geometry.describe()}"
        else:
            assert l1.i_geometry is not None
            caches = (
                f"I {l1.i_geometry.describe()} + D {l1.d_geometry.describe()}"
            )
        extra = f" + {len(self.levels)} lower level(s)" if self.levels else ""
        return f"{caches}{extra} @ {self.cycle_ns:g}ns"


def baseline_config(
    cache_size_bytes: int = 64 * KB,
    block_words: int = 4,
    assoc: int = 1,
    cycle_ns: float = DEFAULT_CYCLE_NS,
    replacement: ReplacementKind = ReplacementKind.RANDOM,
    write_buffer_depth: int = 4,
    memory: Optional[MemoryTiming] = None,
) -> SystemConfig:
    """The paper's base system (§2), parameterized along its sweep axes.

    ``cache_size_bytes`` is the size of *each* of the split caches: the
    default 64 KB pair gives the paper's 128 KB total L1.
    """
    policy = CachePolicy(
        write_policy=WritePolicy.WRITE_BACK,
        write_miss=WriteMissPolicy.NO_ALLOCATE,
        replacement=replacement,
    )
    geometry = CacheGeometry(
        size_bytes=cache_size_bytes, block_words=block_words, assoc=assoc
    )
    return SystemConfig(
        l1=L1Spec(
            d_geometry=geometry,
            i_geometry=geometry,
            policy=policy,
            write_buffer_depth=write_buffer_depth,
        ),
        memory=memory or MemoryTiming(),
        cycle_ns=cycle_ns,
    )
