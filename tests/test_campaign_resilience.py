"""Fault-tolerant campaign execution, end to end.

Every failure mode the resilience layer claims to survive is injected
deterministically here — worker crashes, hangs, transient errors,
ENOSPC, corrupted and truncated result files, kill-9 mid-save — with no
real clocks or sleeps in the loop (backoff goes through a recording
``sleep_fn``; "hangs" are virtual except for one real terminate-a-worker
check).  The flagship test is the 30-run sweep: >20% of runs are
sabotaged and the sweep must still complete, quarantine every corrupt
file, account for every run in the manifest, and leave all ``ok``
results byte-identical to a fault-free sweep.
"""

import json

import pytest

from repro.errors import (
    CampaignError,
    ConfigurationError,
    CorruptResultError,
    RunTimeoutError,
)
from repro.sim import faults
from repro.sim.campaign import (
    Campaign,
    payload_checksum,
    run_id,
    stats_from_dict,
    stats_to_dict,
)
from repro.sim.config import baseline_config
from repro.sim.engine import simulate
from repro.sim.fastpath import fast_simulate
from repro.sim.resilience import (
    CampaignExecutor,
    CampaignManifest,
    RetryPolicy,
    RunRecord,
    make_deadline_check,
    sweep_jobs,
)
from repro.trace.suite import build_trace
from repro.units import KB


@pytest.fixture(scope="module")
def trace():
    return build_trace("mu3", length=2_000, seed=1)


@pytest.fixture(scope="module")
def trace_b():
    return build_trace("rd2n4", length=2_000, seed=1)


@pytest.fixture(scope="module")
def trace_c():
    return build_trace("savec", length=2_000, seed=1)


@pytest.fixture()
def config():
    return baseline_config(cache_size_bytes=4 * KB)


@pytest.fixture()
def stats(config, trace):
    return fast_simulate(config, trace)


def make_executor(campaign, **kwargs):
    """An executor whose backoff sleeps are recorded, never slept."""
    sleeps = []
    kwargs.setdefault("sleep_fn", sleeps.append)
    kwargs.setdefault("retry", RetryPolicy(max_attempts=3))
    return CampaignExecutor(campaign, **kwargs), sleeps


# ----------------------------------------------------------------------
# Corruption detection on load (satellite: no bare JSONDecodeError/KeyError)
# ----------------------------------------------------------------------
class TestLoadValidation:
    def test_malformed_json_raises_corrupt(self, tmp_path, config, trace,
                                           stats):
        campaign = Campaign(tmp_path)
        identifier = run_id(config, trace)
        campaign.save(identifier, stats)
        campaign._path(identifier).write_text("{ not json")
        with pytest.raises(CorruptResultError):
            campaign.load(identifier)

    def test_missing_keys_raise_corrupt(self, tmp_path, config, trace):
        campaign = Campaign(tmp_path)
        identifier = run_id(config, trace)
        campaign._path(identifier).write_text(json.dumps({"run_id": identifier}))
        with pytest.raises(CorruptResultError):
            campaign.load(identifier)

    def test_missing_stats_fields_raise_corrupt(self, tmp_path, config,
                                                trace, stats):
        campaign = Campaign(tmp_path)
        identifier = run_id(config, trace)
        campaign.save(identifier, stats)
        payload = json.loads(campaign._path(identifier).read_text())
        del payload["stats"]["icache"]
        payload["checksum"] = payload_checksum(payload["stats"])
        campaign._path(identifier).write_text(json.dumps(payload))
        with pytest.raises(CorruptResultError):
            campaign.load(identifier)

    def test_checksum_mismatch_detected(self, tmp_path, config, trace,
                                        stats):
        campaign = Campaign(tmp_path)
        identifier = run_id(config, trace)
        campaign.save(identifier, stats)
        payload = json.loads(campaign._path(identifier).read_text())
        payload["stats"]["cycles"] += 1  # silent bitflip in the data
        campaign._path(identifier).write_text(json.dumps(payload))
        with pytest.raises(CorruptResultError, match="checksum"):
            campaign.load(identifier)

    def test_run_id_mismatch_detected(self, tmp_path, config, trace, stats):
        campaign = Campaign(tmp_path)
        identifier = run_id(config, trace)
        campaign.save("some-other-id", stats)
        campaign._path("some-other-id").rename(campaign._path(identifier))
        with pytest.raises(CorruptResultError, match="run id"):
            campaign.load(identifier)

    def test_legacy_schema1_still_loads(self, tmp_path, config, trace,
                                        stats):
        campaign = Campaign(tmp_path)
        identifier = run_id(config, trace)
        # The original on-disk shape: no schema, no checksum.
        campaign._path(identifier).write_text(json.dumps(
            {"run_id": identifier, "stats": stats_to_dict(stats)}
        ))
        assert campaign.load(identifier) == stats

    def test_missing_run_still_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Campaign(tmp_path).load("nope")

    def test_stats_from_dict_tolerates_unknown_keys(self, stats):
        payload = stats_to_dict(stats)
        payload["from_the_future"] = {"v": 3}
        payload["icache"]["novel_counter"] = 7
        payload["buffer"]["novel_counter"] = 7
        assert stats_from_dict(payload) == stats

    def test_stats_from_dict_rejects_non_dict(self):
        with pytest.raises(CorruptResultError):
            stats_from_dict([1, 2, 3])


# ----------------------------------------------------------------------
# Atomic persistence (acceptance: kill -9 never leaves a partial *.json)
# ----------------------------------------------------------------------
class TestAtomicSave:
    def test_kill9_mid_write_leaves_no_partial_result(self, tmp_path,
                                                      config, trace, stats):
        campaign = Campaign(tmp_path, writer=faults.kill9_writer("mid-write"))
        identifier = run_id(config, trace)
        with pytest.raises(faults.InjectedCrash):
            campaign.save(identifier, stats)
        assert identifier not in campaign
        assert len(campaign) == 0
        assert list(campaign.results()) == []

    def test_kill9_before_rename_leaves_no_partial_result(self, tmp_path,
                                                          config, trace,
                                                          stats):
        campaign = Campaign(
            tmp_path, writer=faults.kill9_writer("pre-replace")
        )
        identifier = run_id(config, trace)
        with pytest.raises(faults.InjectedCrash):
            campaign.save(identifier, stats)
        assert len(campaign) == 0
        # The fully-written-but-unrenamed temp file is invisible to
        # results() and swept by fsck --repair.
        report = Campaign(tmp_path).fsck(repair=True)
        assert report.stray_tmp
        assert not list(tmp_path.glob(".tmp.*"))

    def test_save_recovers_after_transient_enospc(self, tmp_path, config,
                                                  trace, stats):
        campaign = Campaign(tmp_path, writer=faults.flaky_writer(fail_first=1))
        identifier = run_id(config, trace)
        with pytest.raises(OSError):
            campaign.save(identifier, stats)
        assert len(campaign) == 0  # failed write left nothing behind
        campaign.save(identifier, stats)  # second call heals
        assert campaign.load(identifier) == stats

    def test_saved_bytes_are_deterministic(self, tmp_path, config, trace,
                                           stats):
        a, b = Campaign(tmp_path / "a"), Campaign(tmp_path / "b")
        identifier = run_id(config, trace)
        a.save(identifier, stats)
        b.save(identifier, stats)
        assert (a._path(identifier).read_bytes()
                == b._path(identifier).read_bytes())


# ----------------------------------------------------------------------
# Quarantine and re-simulation
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_run_resimulates_corrupt_file(self, tmp_path, config, trace):
        campaign = Campaign(tmp_path)
        identifier = run_id(config, trace)
        campaign.run(config, trace, fast_simulate)
        clean = campaign._path(identifier).read_bytes()
        faults.truncate_file(campaign._path(identifier))
        calls = []

        def counting(cfg, tr):
            calls.append(1)
            return fast_simulate(cfg, tr)

        stats = campaign.run(config, trace, counting)
        assert calls, "corrupt cache entry must be re-simulated"
        assert stats == fast_simulate(config, trace)
        assert campaign._path(identifier).read_bytes() == clean
        assert len(list(campaign.quarantine_dir.glob("*.json"))) == 1

    def test_results_quarantines_and_continues(self, tmp_path, trace):
        campaign = Campaign(tmp_path)
        for size in (2 * KB, 4 * KB, 8 * KB):
            campaign.run(
                baseline_config(cache_size_bytes=size), trace, fast_simulate
            )
        victim = next(iter(campaign._result_paths()))
        faults.corrupt_file(victim)
        assert len(list(campaign.results())) == 2  # default: quarantine
        assert len(campaign) == 2
        assert len(list(campaign.quarantine_dir.glob("*"))) == 1

    def test_results_raise_mode(self, tmp_path, config, trace):
        campaign = Campaign(tmp_path)
        campaign.run(config, trace, fast_simulate)
        faults.corrupt_file(next(iter(campaign._result_paths())))
        with pytest.raises(CorruptResultError):
            list(campaign.results(on_corrupt="raise"))

    def test_quarantine_names_never_collide(self, tmp_path, config, trace,
                                            stats):
        campaign = Campaign(tmp_path)
        identifier = run_id(config, trace)
        homes = []
        for _ in range(3):
            campaign.save(identifier, stats)
            homes.append(campaign.quarantine(identifier))
        assert len({h.name for h in homes}) == 3

    def test_fsck_reports_then_repairs(self, tmp_path, trace):
        campaign = Campaign(tmp_path)
        for size in (2 * KB, 4 * KB):
            campaign.run(
                baseline_config(cache_size_bytes=size), trace, fast_simulate
            )
        faults.corrupt_file(next(iter(campaign._result_paths())))
        report = campaign.fsck()
        assert len(report.ok) == 1 and len(report.corrupt) == 1
        assert not report.clean
        assert len(campaign) == 2  # report-only mode touches nothing
        repaired = campaign.fsck(repair=True)
        assert len(repaired.quarantined) == 1
        assert campaign.fsck().clean


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=100.0,
                             jitter=0.0)
        delays = [policy.delay_s("r", a) for a in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.4, 0.8]

    def test_backoff_caps(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=2.0,
                             jitter=0.0)
        assert policy.delay_s("r", 10) == 2.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_s=1.0, jitter=0.5)
        once = policy.delay_s("some-run", 1)
        assert once == policy.delay_s("some-run", 1)
        assert 1.0 <= once <= 1.5
        assert once != policy.delay_s("other-run", 1)


# ----------------------------------------------------------------------
# Executor: isolation, timeout, retries
# ----------------------------------------------------------------------
class TestExecutor:
    def test_transient_crash_is_retried_to_success(self, tmp_path, config,
                                                   trace):
        campaign = Campaign(tmp_path)
        plan = faults.FaultPlan({0: faults.FaultSpec(faults.CRASH)})
        executor, sleeps = make_executor(campaign, fault_plan=plan)
        report = executor.run_sweep(sweep_jobs([config], [trace]))
        (record,) = report.records
        assert record.status == "ok"
        assert record.attempts == 2
        assert len(sleeps) == 1
        assert sleeps[0] == executor.retry.delay_s(record.run_id, 1)
        assert campaign.load(record.run_id) == fast_simulate(config, trace)

    def test_permanent_crash_contained_as_failed(self, tmp_path, trace):
        configs = [baseline_config(cache_size_bytes=s)
                   for s in (2 * KB, 4 * KB)]
        campaign = Campaign(tmp_path)
        plan = faults.FaultPlan({0: faults.always(faults.CRASH)})
        executor, _ = make_executor(campaign, fault_plan=plan)
        report = executor.run_sweep(sweep_jobs(configs, [trace]))
        assert [r.status for r in report.records] == ["failed", "ok"]
        assert "exit code" in report.records[0].error
        assert report.records[0].attempts == 3

    def test_transient_worker_error_is_retried(self, tmp_path, config,
                                               trace):
        campaign = Campaign(tmp_path)
        plan = faults.FaultPlan({0: faults.FaultSpec(faults.ERROR)})
        executor, _ = make_executor(campaign, fault_plan=plan)
        report = executor.run_sweep(sweep_jobs([config], [trace]))
        assert report.records[0].status == "ok"
        assert report.records[0].attempts == 2

    def test_simulated_hang_exhausts_to_timeout(self, tmp_path, config,
                                                trace):
        campaign = Campaign(tmp_path)
        plan = faults.FaultPlan({0: faults.always(faults.HANG)})
        executor, sleeps = make_executor(
            campaign, fault_plan=plan, timeout_s=30.0
        )
        report = executor.run_sweep(sweep_jobs([config], [trace]))
        (record,) = report.records
        assert record.status == "timeout"
        assert record.attempts == 3
        assert len(sleeps) == 2  # backoff between the three attempts

    def test_real_hang_is_terminated(self, tmp_path, config, trace):
        # The one test that spends real wall time: a worker sleeping far
        # past the deadline is terminated by the parent (~0.3 s total).
        campaign = Campaign(tmp_path)
        plan = faults.FaultPlan({0: faults.always(faults.SLEEP)})
        executor, _ = make_executor(
            campaign, fault_plan=plan, timeout_s=0.3, grace_s=0.0,
            retry=RetryPolicy(max_attempts=1),
        )
        report = executor.run_sweep(sweep_jobs([config], [trace]))
        assert report.records[0].status == "timeout"
        assert "terminated" in report.records[0].error

    def test_enospc_on_save_is_retried(self, tmp_path, config, trace):
        campaign = Campaign(tmp_path)
        plan = faults.FaultPlan({0: faults.FaultSpec(faults.ENOSPC)})
        executor, _ = make_executor(campaign, fault_plan=plan)
        report = executor.run_sweep(sweep_jobs([config], [trace]))
        assert report.records[0].status == "ok"
        assert report.records[0].attempts == 2
        assert len(campaign) == 1

    def test_corrupted_save_is_quarantined_and_retried(self, tmp_path,
                                                       config, trace):
        campaign = Campaign(tmp_path)
        plan = faults.FaultPlan({0: faults.FaultSpec(faults.CORRUPT)})
        executor, _ = make_executor(campaign, fault_plan=plan)
        report = executor.run_sweep(sweep_jobs([config], [trace]))
        (record,) = report.records
        assert record.status == "ok"
        assert record.quarantines == 1
        assert len(list(campaign.quarantine_dir.glob("*.json"))) == 1
        assert campaign.load(record.run_id) == fast_simulate(config, trace)

    def test_corrupt_cached_result_revalidated(self, tmp_path, config,
                                               trace):
        campaign = Campaign(tmp_path)
        campaign.run(config, trace, fast_simulate)
        identifier = run_id(config, trace)
        faults.truncate_file(campaign._path(identifier))
        executor, _ = make_executor(campaign)
        report = executor.run_sweep(sweep_jobs([config], [trace]))
        (record,) = report.records
        assert record.status == "ok" and not record.cached
        assert record.quarantines == 1
        assert campaign.load(identifier) == fast_simulate(config, trace)

    def test_valid_cached_result_short_circuits(self, tmp_path, config,
                                                trace):
        campaign = Campaign(tmp_path)
        campaign.run(config, trace, fast_simulate)
        executor, _ = make_executor(campaign)
        report = executor.run_sweep(sweep_jobs([config], [trace]))
        assert report.records[0].cached
        assert report.records[0].status == "ok"

    def test_keep_going_false_raises_and_stops_scheduling(self, tmp_path,
                                                          trace):
        configs = [baseline_config(cache_size_bytes=2 * KB * 2**k)
                   for k in range(4)]
        campaign = Campaign(tmp_path)
        plan = faults.FaultPlan({0: faults.always(faults.ERROR)})
        executor, _ = make_executor(
            campaign, fault_plan=plan, keep_going=False
        )
        with pytest.raises(CampaignError):
            executor.run_sweep(sweep_jobs(configs, [trace]))
        counts = executor.manifest.counts()
        assert counts["failed"] == 1
        assert counts["ok"] + counts["failed"] < len(configs)

    def test_engine_worker_honors_cooperative_timeout(self, tmp_path,
                                                      trace):
        # The reference engine supports cancel_check, so an over-budget
        # engine run reports a *cooperative* timeout (the worker itself
        # raises RunTimeoutError) rather than being terminated.
        campaign = Campaign(tmp_path)
        executor, _ = make_executor(
            campaign, timeout_s=1e-9, retry=RetryPolicy(max_attempts=1)
        )
        config = baseline_config(cache_size_bytes=2 * KB)
        report = executor.run_sweep(
            sweep_jobs([config], [trace], simulate_fn=simulate)
        )
        assert report.records[0].status == "timeout"
        assert "cooperative" in report.records[0].error


# ----------------------------------------------------------------------
# Cooperative cancellation hook (engine.py)
# ----------------------------------------------------------------------
class TestCancelHook:
    def test_cancel_check_aborts_run(self, config, trace):
        calls = []

        def tripwire():
            calls.append(1)
            raise RunTimeoutError("cancelled by test")

        with pytest.raises(RunTimeoutError):
            simulate(config, trace, cancel_check=tripwire)
        assert len(calls) == 1

    def test_expired_deadline_cancels(self, config, trace):
        fake_now = iter([0.0, 10.0]).__next__
        check = make_deadline_check(1.0, clock=fake_now)
        with pytest.raises(RunTimeoutError):
            simulate(config, trace, cancel_check=check)

    def test_no_hook_no_behaviour_change(self, config, trace):
        assert simulate(config, trace) == simulate(
            config, trace, cancel_check=lambda: None
        )


# ----------------------------------------------------------------------
# Monotonic deadline discipline (satellite: no wall-clock comparisons)
# ----------------------------------------------------------------------
class TestMonotonicDeadlines:
    def test_default_clock_is_monotonic(self):
        """The deadline hook must default to time.monotonic — an NTP
        step, DST change or operator clock-set cannot move a deadline
        that never reads the wall clock."""
        import time

        assert time.monotonic in make_deadline_check.__defaults__

    def test_deadline_driven_by_injected_clock_only(self, monkeypatch):
        """Chaos on the wall clock is invisible: the check consults only
        the clock it was built with."""
        import time

        mono = faults.SteppedClock(start=100.0)
        check = make_deadline_check(5.0, clock=mono)
        # The wall clock goes haywire; a correct check never reads it.
        monkeypatch.setattr(time, "time", lambda: 1e18)
        check()                      # fresh: well within budget
        mono.advance(4.9)
        check()                      # still inside the 5 s budget
        mono.advance(0.2)
        with pytest.raises(RunTimeoutError):
            check()                  # genuine elapsed time expires it

    def test_retry_backoff_takes_no_clock_at_all(self):
        """Backoff delays are pure functions of (id, attempt) — there
        is no clock to step, which is the strongest immunity there is."""
        policy = RetryPolicy()
        assert policy.delay_s("r", 2) == policy.delay_s("r", 2)


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_journal_survives_reload(self, tmp_path):
        manifest = CampaignManifest(tmp_path / "manifest.json")
        manifest.record(RunRecord(run_id="a", status="ok", attempts=1))
        manifest.record(RunRecord(run_id="b", status="timeout", attempts=3,
                                  error="hung"))
        back = CampaignManifest.load(tmp_path / "manifest.json")
        assert back.counts()["ok"] == 1
        assert back.counts()["timeout"] == 1
        assert back.runs["b"].error == "hung"

    def test_corrupt_manifest_recovered(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{ broken")
        manifest = CampaignManifest.load(path)
        assert manifest.runs == {}
        assert (tmp_path / "manifest.json.corrupt").exists()
        manifest.record(RunRecord(run_id="a", status="ok"))
        assert CampaignManifest.load(path).counts()["ok"] == 1

    def test_manifest_excluded_from_results(self, tmp_path, config, trace):
        campaign = Campaign(tmp_path)
        executor, _ = make_executor(campaign)
        executor.run_sweep(sweep_jobs([config], [trace]))
        assert campaign.manifest_path.exists()
        assert len(campaign) == 1
        assert len(list(campaign.results())) == 1

    def test_incomplete_lists_missing_points(self, tmp_path):
        manifest = CampaignManifest(tmp_path / "manifest.json")
        manifest.record(RunRecord(run_id="a", status="ok"))
        manifest.record(RunRecord(run_id="b", status="failed", error="x"))
        assert [r.run_id for r in manifest.incomplete()] == ["b"]
        assert "failed" in manifest.render()


# ----------------------------------------------------------------------
# The acceptance sweep: 30 runs, >=20% sabotaged
# ----------------------------------------------------------------------
class TestFaultySweepAcceptance:
    @pytest.fixture(scope="class")
    def sweep(self, trace, trace_b, trace_c):
        configs = [
            baseline_config(cache_size_bytes=2 * KB * (2 ** k),
                            cycle_ns=cycle_ns)
            for k in range(5)
            for cycle_ns in (20.0, 40.0)
        ]
        return sweep_jobs(configs, [trace, trace_b, trace_c])

    @pytest.fixture(scope="class")
    def baseline(self, sweep, tmp_path_factory):
        """A fault-free sweep's files, keyed by run id."""
        campaign = Campaign(tmp_path_factory.mktemp("baseline"))
        for job in sweep:
            campaign.run(job.config, job.trace, job.simulate_fn)
        return {
            path.stem: path.read_bytes()
            for path in campaign._result_paths()
        }

    def test_faulty_sweep_completes_and_matches_baseline(
        self, sweep, baseline, tmp_path_factory
    ):
        assert len(sweep) == 30
        plan = faults.FaultPlan({
            1: faults.FaultSpec(faults.CRASH),          # dies, retried
            4: faults.FaultSpec(faults.ERROR),          # raises, retried
            7: faults.always(faults.HANG),              # every attempt hangs
            10: faults.FaultSpec(faults.HANG),          # hangs once
            13: faults.FaultSpec(faults.CORRUPT),       # file damaged once
            16: faults.FaultSpec(faults.TRUNCATE),      # file torn once
            19: faults.FaultSpec(faults.ENOSPC),        # disk full once
            22: faults.always(faults.CRASH),            # dies every time
        })
        assert len(plan.faulty_indices) / len(sweep) >= 0.20
        campaign = Campaign(tmp_path_factory.mktemp("faulty"))
        sleeps = []
        executor = CampaignExecutor(
            campaign,
            jobs=4,
            timeout_s=60.0,
            retry=RetryPolicy(max_attempts=3),
            keep_going=True,
            fault_plan=plan,
            sleep_fn=sleeps.append,
        )
        report = executor.run_sweep(sweep)

        # The sweep completed: every run is accounted for, exactly once.
        assert len(report.records) == 30
        counts = report.counts()
        assert counts["ok"] + counts["failed"] + counts["timeout"] == 30
        assert counts == {"ok": 28, "failed": 1, "timeout": 1,
                          "quarantined": 0}

        # Transient faults were retried to success...
        by_index = {record.run_id: record for record in report.records}
        ids = [run_id(job.config, job.trace) for job in sweep]
        for index in (1, 4, 10, 19):
            assert by_index[ids[index]].status == "ok"
            assert by_index[ids[index]].attempts == 2
        # ...corruption was quarantined, every damaged file preserved...
        for index in (13, 16):
            assert by_index[ids[index]].status == "ok"
            assert by_index[ids[index]].quarantines == 1
        assert len(list(campaign.quarantine_dir.glob("*"))) == 2
        # ...and permanent faults were contained, not fatal.
        assert by_index[ids[7]].status == "timeout"
        assert by_index[ids[22]].status == "failed"

        # The manifest journals the same accounting, durably.
        manifest = CampaignManifest.for_campaign(campaign)
        assert len(manifest.runs) == 30
        assert manifest.counts() == counts

        # Backoff went through the injected sleeper only — and was
        # consulted once per retry (4 transient x1 + 2 corrupt x1 +
        # permanent hang x2 + permanent crash x2).
        assert len(sleeps) == 10

        # Every ok result is byte-identical to the fault-free sweep.
        stored = {path.stem: path.read_bytes()
                  for path in campaign._result_paths()}
        ok_ids = {record.run_id for record in report.records
                  if record.status == "ok"}
        assert set(stored) == ok_ids
        for identifier in ok_ids:
            assert stored[identifier] == baseline[identifier]

        # And the degraded archive still renders: results() yields every
        # ok point, fsck finds nothing left to complain about.
        assert len(list(campaign.results())) == 28
        assert campaign.fsck().clean


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_campaign_run_status_fsck(self, tmp_path, capsys):
        from repro.cli import main

        directory = str(tmp_path / "camp")
        code = main([
            "campaign", "run", directory,
            "--sizes-kb", "2,4", "--cycles-ns", "40",
            "--traces", "mu3", "--length", "2000",
            "--jobs", "2", "--retries", "1", "--keep-going",
        ])
        assert code == 0
        assert "2 ok" in capsys.readouterr().out

        assert main(["campaign", "status", directory]) == 0
        assert "2 run(s)" in capsys.readouterr().out

        assert main(["campaign", "fsck", directory]) == 0
        assert "2 result(s) ok" in capsys.readouterr().out

        # Damage a file: fsck reports (exit 1), then repairs (exit 0).
        campaign = Campaign(directory)
        faults.corrupt_file(next(iter(campaign._result_paths())))
        assert main(["campaign", "fsck", directory]) == 1
        assert "1 corrupt" in capsys.readouterr().out
        assert main(["campaign", "fsck", directory, "--repair"]) == 0
        assert main(["campaign", "fsck", directory]) == 0
        assert main(["campaign", "status", directory]) == 0

    def test_experiment_keep_going_renders_failure(self, capsys,
                                                   monkeypatch):
        from repro.cli import main
        from repro.errors import AnalysisError
        from repro.experiments import registry

        def boom(settings=None):
            raise AnalysisError("injected experiment failure")

        monkeypatch.setitem(registry.EXPERIMENTS, "table2", boom)
        code = main([
            "experiment", "table2", "--length", "2000", "--keep-going",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out and "injected experiment failure" in out

    def test_experiment_without_keep_going_aborts(self, monkeypatch):
        from repro.cli import main
        from repro.errors import AnalysisError
        from repro.experiments import registry

        def boom(settings=None):
            raise AnalysisError("injected experiment failure")

        monkeypatch.setitem(registry.EXPERIMENTS, "table2", boom)
        with pytest.raises(AnalysisError):
            main(["experiment", "table2", "--length", "2000"])


class TestRegistryDegradation:
    def test_run_all_keep_going_flags_failures(self, monkeypatch):
        from repro.errors import AnalysisError
        from repro.experiments import registry
        from repro.experiments.common import ExperimentResult

        calls = []

        def good(settings=None):
            calls.append(1)
            return ExperimentResult("x", "ok", "text", {})

        def boom(settings=None):
            raise AnalysisError("injected")

        monkeypatch.setattr(
            registry, "EXPERIMENTS", {"good": good, "bad": boom,
                                      "good2": good}
        )
        results = registry.run_all(keep_going=True)
        assert [r.ok for r in results] == [True, False, True]
        assert len(calls) == 2  # experiments after the failure still ran
        assert "FAILED" in results[1].text

    def test_run_all_strict_propagates(self, monkeypatch):
        from repro.errors import AnalysisError
        from repro.experiments import registry

        def boom(settings=None):
            raise AnalysisError("injected")

        monkeypatch.setattr(registry, "EXPERIMENTS", {"bad": boom})
        with pytest.raises(AnalysisError):
            registry.run_all()
