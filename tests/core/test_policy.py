"""Policy bundle validation."""

import pytest

from repro.core.policy import (
    CachePolicy,
    MissHandling,
    ReplacementKind,
    WriteMissPolicy,
    WritePolicy,
)
from repro.errors import ConfigurationError


class TestCachePolicy:
    def test_defaults_match_paper_base_system(self):
        policy = CachePolicy()
        assert policy.write_policy is WritePolicy.WRITE_BACK
        assert policy.write_miss is WriteMissPolicy.NO_ALLOCATE
        assert policy.replacement is ReplacementKind.RANDOM
        assert policy.miss_handling is MissHandling.BLOCKING

    def test_write_through_with_allocate_rejected(self):
        with pytest.raises(ConfigurationError):
            CachePolicy(
                write_policy=WritePolicy.WRITE_THROUGH,
                write_miss=WriteMissPolicy.FETCH_ON_WRITE,
            )

    def test_frozen(self):
        policy = CachePolicy()
        with pytest.raises(Exception):
            policy.write_policy = WritePolicy.WRITE_THROUGH
